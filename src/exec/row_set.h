#ifndef CQP_EXEC_ROW_SET_H_
#define CQP_EXEC_ROW_SET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/tuple.h"

namespace cqp::exec {

/// A materialized intermediate or final result: qualified column names plus
/// rows. Column names are "alias.attribute".
class RowSet {
 public:
  RowSet() = default;
  RowSet(std::vector<std::string> column_names,
         std::vector<storage::Tuple> rows)
      : column_names_(std::move(column_names)), rows_(std::move(rows)) {}

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  const std::vector<storage::Tuple>& rows() const { return rows_; }
  std::vector<storage::Tuple>& mutable_rows() { return rows_; }
  size_t row_count() const { return rows_.size(); }
  size_t arity() const { return column_names_.size(); }

  void AddColumnName(std::string name) {
    column_names_.push_back(std::move(name));
  }
  void AddRow(storage::Tuple row) { rows_.push_back(std::move(row)); }

  /// Resolves a column reference against the qualified column names.
  /// Qualified refs match "qualifier.attribute" exactly (case-insensitive);
  /// unqualified refs must match exactly one column's attribute part.
  StatusOr<int> ResolveColumn(const sql::ColumnRef& ref) const;

  /// Pretty-prints up to `max_rows` rows with a header (for examples).
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<std::string> column_names_;
  std::vector<storage::Tuple> rows_;
};

}  // namespace cqp::exec

#endif  // CQP_EXEC_ROW_SET_H_
