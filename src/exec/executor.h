#ifndef CQP_EXEC_EXECUTOR_H_
#define CQP_EXEC_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "exec/exec_stats.h"
#include "exec/row_set.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace cqp::exec {

/// Executes SPJ queries against an in-memory Database.
///
/// Physical strategy (deliberately simple, mirroring the paper's cost-model
/// assumptions in §7.1): every referenced relation is sequentially scanned
/// exactly once (no indexes), joins are in-memory hash joins (or filtered
/// nested-loop products when no equality join predicate applies), and all
/// intermediates stay memory resident. Every scan charges the table's block
/// count to ExecStats; every materialized row charges one tuple.
class Executor {
 public:
  /// `db` must outlive the executor.
  explicit Executor(const storage::Database* db,
                    CostModelParams params = CostModelParams());

  const CostModelParams& cost_params() const { return params_; }

  /// Runs `query`, accumulating counters into `stats` (may be nullptr).
  StatusOr<RowSet> Execute(const sql::SelectQuery& query,
                           ExecStats* stats) const;

  /// Runs a §4.2-shaped UNION ALL / GROUP BY / HAVING COUNT(*) statement
  /// (the SQL printed by construct::PersonalizedQuery::ToSql). Standard SQL
  /// semantics: rows appearing in `having_count` branches survive; branch
  /// DISTINCT flags are honored, so the printed personalized query (whose
  /// branches are DISTINCT) executes with exact intersection semantics.
  StatusOr<RowSet> ExecuteUnionGroup(const sql::UnionGroupQuery& query,
                                     ExecStats* stats) const;

 private:
  const storage::Database* db_;
  CostModelParams params_;
};

}  // namespace cqp::exec

#endif  // CQP_EXEC_EXECUTOR_H_
