#ifndef CQP_EXEC_PERSONALIZED_EXEC_H_
#define CQP_EXEC_PERSONALIZED_EXEC_H_

#include <vector>

#include "common/index_set.h"
#include "common/status.h"
#include "exec/executor.h"
#include "exec/row_set.h"

namespace cqp::exec {

/// How the union of sub-query results is combined into the final answer.
enum class CombineMode {
  /// The paper's construction (§4.2): GROUP BY the projected row,
  /// HAVING COUNT(*) = L — a row qualifies only if *every* integrated
  /// preference is satisfied.
  kIntersection,
  /// Extension: keep every row produced by at least one sub-query and rank
  /// by the doi of the set of preferences it satisfies (the ranking the
  /// paper prescribes for result presentation).
  kRankedUnion,
};

/// One output row of a personalized query.
struct PersonalizedRow {
  storage::Tuple row;
  /// Positions (into the sub-query list) of the preferences this row
  /// satisfies.
  IndexSet satisfied;
  /// doi of `satisfied` under r(d1..dm) = 1 - prod(1 - di).
  double doi = 0.0;
};

/// Result of executing a personalized query: header plus doi-ranked rows.
struct PersonalizedResultSet {
  std::vector<std::string> column_names;
  std::vector<PersonalizedRow> rows;  ///< sorted by doi desc, then row asc
};

/// Executes the personalized query "base ∧ {p_i}" materialized as the union
/// of `subqueries` (each integrating exactly one preference, all projecting
/// the same select list).
///
/// Each sub-query's output is deduplicated before counting, so the
/// HAVING COUNT(*) = L grouping has exact intersection semantics even when
/// a sub-query's join fans out (e.g. a movie with two genre rows). `dois`
/// must parallel `subqueries`.
StatusOr<PersonalizedResultSet> ExecutePersonalized(
    const Executor& executor, const std::vector<sql::SelectQuery>& subqueries,
    const std::vector<double>& dois, CombineMode mode, ExecStats* stats);

}  // namespace cqp::exec

#endif  // CQP_EXEC_PERSONALIZED_EXEC_H_
