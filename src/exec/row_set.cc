#include "exec/row_set.h"

#include "common/str_util.h"

namespace cqp::exec {

StatusOr<int> RowSet::ResolveColumn(const sql::ColumnRef& ref) const {
  if (!ref.qualifier.empty()) {
    std::string wanted = ref.qualifier + "." + ref.attribute;
    for (size_t i = 0; i < column_names_.size(); ++i) {
      if (EqualsIgnoreCase(column_names_[i], wanted)) {
        return static_cast<int>(i);
      }
    }
    return NotFound("column " + wanted);
  }
  int found = -1;
  for (size_t i = 0; i < column_names_.size(); ++i) {
    std::string_view name = column_names_[i];
    size_t dot = name.rfind('.');
    std::string_view attr = dot == std::string_view::npos
                                ? name
                                : name.substr(dot + 1);
    if (EqualsIgnoreCase(attr, ref.attribute)) {
      if (found >= 0) {
        return InvalidArgument("ambiguous column " + ref.attribute);
      }
      found = static_cast<int>(i);
    }
  }
  if (found < 0) return NotFound("column " + ref.attribute);
  return found;
}

std::string RowSet::ToString(size_t max_rows) const {
  std::string out = Join(column_names_, " | ");
  out += "\n";
  size_t shown = 0;
  for (const storage::Tuple& row : rows_) {
    if (shown++ >= max_rows) {
      out += StrFormat("... (%zu more rows)\n", rows_.size() - max_rows);
      break;
    }
    std::vector<std::string> cells;
    cells.reserve(row.arity());
    for (size_t i = 0; i < row.arity(); ++i) {
      cells.push_back(row.at(i).ToString());
    }
    out += Join(cells, " | ");
    out += "\n";
  }
  return out;
}

}  // namespace cqp::exec
