#ifndef CQP_STORAGE_TABLE_H_
#define CQP_STORAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/tuple.h"

namespace cqp::storage {

/// Fixed block size of the storage model, matching typical DBMS pages.
inline constexpr uint64_t kBlockSizeBytes = 8192;

/// A heap table: rows packed into fixed-size blocks.
///
/// The engine is memory resident, but every table keeps an exact block
/// layout (rows are assigned to 8 KiB blocks in insertion order, never
/// splitting a row across blocks). Sequential scans report the number of
/// blocks touched, which drives the simulated I/O clock — the paper's cost
/// unit is "blocks read × b" with b = 1 ms (§7.1).
class Table {
 public:
  explicit Table(catalog::RelationDef schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const catalog::RelationDef& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  /// Appends a row; arity and column types must match the schema.
  Status Insert(Tuple row);

  uint64_t row_count() const { return rows_.size(); }

  /// Number of 8 KiB blocks occupied by the table (>= 1 once non-empty).
  uint64_t blocks() const { return blocks_; }

  /// Total payload bytes (row data only; no per-block header modeled).
  uint64_t data_bytes() const { return data_bytes_; }

  const std::vector<Tuple>& rows() const { return rows_; }

 private:
  catalog::RelationDef schema_;
  std::vector<Tuple> rows_;
  uint64_t data_bytes_ = 0;
  uint64_t blocks_ = 0;
  uint64_t current_block_fill_ = 0;  // bytes used in the last block
};

}  // namespace cqp::storage

#endif  // CQP_STORAGE_TABLE_H_
