#include "storage/constraints.h"

#include <map>
#include <optional>
#include <vector>

#include "common/str_util.h"

namespace cqp::storage {

namespace {

using catalog::CompareOp;
using catalog::ConstraintSet;
using catalog::DomainConstraint;
using catalog::ImplicationConstraint;
using catalog::KeyConstraint;
using catalog::Value;
using catalog::ValueType;

bool IsNumeric(const Value& v) { return v.type() != ValueType::kString; }

/// Type-tolerant comparison: ints and doubles compare numerically, strings
/// lexicographically; a numeric/string mix never holds (and never crashes —
/// catalog::EvalCompare checks type equality, so it cannot be used on a
/// constraint whose literal type differs from the column's).
bool HoldsCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  if (IsNumeric(lhs) != IsNumeric(rhs)) return false;
  if (IsNumeric(lhs)) {
    double a = lhs.AsNumeric();
    double b = rhs.AsNumeric();
    switch (op) {
      case CompareOp::kEq: return a == b;
      case CompareOp::kNe: return a != b;
      case CompareOp::kLt: return a < b;
      case CompareOp::kLe: return a <= b;
      case CompareOp::kGt: return a > b;
      case CompareOp::kGe: return a >= b;
    }
    return false;
  }
  return catalog::EvalCompare(lhs, op, rhs);
}

/// Exact per-attribute min/max over a table's rows (nullopt when empty).
struct MinMax {
  std::optional<Value> min;
  std::optional<Value> max;

  void Update(const Value& v) {
    if (!min.has_value() || v < *min) min = v;
    if (!max.has_value() || *max < v) max = v;
  }
};

std::vector<MinMax> ScanMinMax(const Table& table) {
  std::vector<MinMax> out(table.schema().arity());
  for (const Tuple& row : table.rows()) {
    for (size_t i = 0; i < out.size(); ++i) out[i].Update(row.at(i));
  }
  return out;
}

/// True when the attribute's values may appear in derived range constraints
/// (all numerics; strings only when low-cardinality).
bool RangeEligible(const catalog::AttributeDef& attr,
                   const catalog::AttributeStats& stats,
                   const DeriveOptions& options) {
  if (attr.type != ValueType::kString) return true;
  return stats.ndv() <= options.max_string_domain_ndv;
}

void DeriveImplicationsFor(const Table& table,
                           const catalog::RelationStats& stats,
                           const std::vector<MinMax>& overall,
                           const DeriveOptions& options, ConstraintSet* out) {
  const catalog::RelationDef& schema = table.schema();
  const size_t n = schema.arity();
  size_t emitted = 0;
  for (size_t a = 0; a < n && emitted < options.max_implications_per_relation;
       ++a) {
    const catalog::AttributeStats& astats = stats.attributes[a];
    if (astats.ndv() == 0 || astats.ndv() > options.max_antecedent_ndv) {
      continue;
    }
    // Per-value bounds of every other attribute, keyed by the antecedent
    // value (std::map keeps the emission order deterministic).
    std::map<Value, std::vector<MinMax>> groups;
    for (const Tuple& row : table.rows()) {
      std::vector<MinMax>& bounds = groups[row.at(a)];
      if (bounds.empty()) bounds.resize(n);
      for (size_t b = 0; b < n; ++b) bounds[b].Update(row.at(b));
    }
    for (const auto& [value, bounds] : groups) {
      for (size_t b = 0; b < n; ++b) {
        if (b == a) continue;
        if (!RangeEligible(schema.attribute(b), stats.attributes[b],
                           options)) {
          continue;
        }
        if (emitted >= options.max_implications_per_relation) return;
        const MinMax& local = bounds[b];
        const MinMax& global = overall[b];
        if (!local.min.has_value()) continue;
        ImplicationConstraint imp;
        imp.relation = schema.name();
        imp.if_attribute = schema.attribute(a).name;
        imp.if_value = value;
        imp.then_attribute = schema.attribute(b).name;
        if (*local.min == *local.max) {
          // The antecedent pins the consequent to one value exactly.
          imp.then_op = CompareOp::kEq;
          imp.then_value = *local.min;
          out->AddImplication(imp);
          ++emitted;
          continue;
        }
        // Emit each side only when strictly tighter than the whole-relation
        // domain (otherwise the domain constraint already carries the fact).
        if (global.min.has_value() && *global.min < *local.min) {
          imp.then_op = CompareOp::kGe;
          imp.then_value = *local.min;
          out->AddImplication(imp);
          ++emitted;
          if (emitted >= options.max_implications_per_relation) return;
        }
        if (global.max.has_value() && *local.max < *global.max) {
          imp.then_op = CompareOp::kLe;
          imp.then_value = *local.max;
          out->AddImplication(imp);
          ++emitted;
        }
      }
    }
  }
}

}  // namespace

StatusOr<ConstraintSet> DeriveConstraints(const Database& db,
                                          const DeriveOptions& options) {
  ConstraintSet out;
  for (const std::string& name : db.TableNames()) {
    CQP_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    CQP_ASSIGN_OR_RETURN(const catalog::RelationStats* stats,
                         db.GetStats(name));
    const catalog::RelationDef& schema = table->schema();
    if (table->row_count() == 0) continue;
    const std::vector<MinMax> overall = ScanMinMax(*table);
    if (options.derive_keys) {
      for (size_t i = 0; i < schema.arity(); ++i) {
        if (stats->attributes[i].ndv() == table->row_count()) {
          out.AddKey(KeyConstraint{schema.name(), {schema.attribute(i).name}});
        }
      }
    }
    if (options.derive_domains) {
      for (size_t i = 0; i < schema.arity(); ++i) {
        if (!RangeEligible(schema.attribute(i), stats->attributes[i],
                           options)) {
          continue;
        }
        DomainConstraint domain;
        domain.relation = schema.name();
        domain.attribute = schema.attribute(i).name;
        domain.min = overall[i].min;
        domain.max = overall[i].max;
        out.AddDomain(std::move(domain));
      }
    }
    if (options.derive_implications) {
      DeriveImplicationsFor(*table, *stats, overall, options, &out);
    }
  }
  return out;
}

Status CheckConstraints(const Database& db, const ConstraintSet& set) {
  for (const KeyConstraint& key : set.keys()) {
    CQP_ASSIGN_OR_RETURN(const Table* table, db.GetTable(key.relation));
    std::vector<int> positions;
    for (const std::string& attr : key.attributes) {
      CQP_ASSIGN_OR_RETURN(int pos, table->schema().AttributeIndex(attr));
      positions.push_back(pos);
    }
    std::map<std::vector<Value>, int> seen;
    for (const Tuple& row : table->rows()) {
      std::vector<Value> projected;
      projected.reserve(positions.size());
      for (int pos : positions) {
        projected.push_back(row.at(static_cast<size_t>(pos)));
      }
      if (++seen[std::move(projected)] > 1) {
        return FailedPrecondition("key violated: " + key.ToText());
      }
    }
  }
  for (const DomainConstraint& domain : set.domains()) {
    CQP_ASSIGN_OR_RETURN(const Table* table, db.GetTable(domain.relation));
    CQP_ASSIGN_OR_RETURN(int pos,
                         table->schema().AttributeIndex(domain.attribute));
    for (const Tuple& row : table->rows()) {
      const Value& v = row.at(static_cast<size_t>(pos));
      if (domain.min.has_value() &&
          !HoldsCompare(v, CompareOp::kGe, *domain.min)) {
        return FailedPrecondition("domain violated by " + v.ToString() + ": " +
                                  domain.ToText());
      }
      if (domain.max.has_value() &&
          !HoldsCompare(v, CompareOp::kLe, *domain.max)) {
        return FailedPrecondition("domain violated by " + v.ToString() + ": " +
                                  domain.ToText());
      }
    }
  }
  for (const ImplicationConstraint& imp : set.implications()) {
    CQP_ASSIGN_OR_RETURN(const Table* table, db.GetTable(imp.relation));
    CQP_ASSIGN_OR_RETURN(int if_pos,
                         table->schema().AttributeIndex(imp.if_attribute));
    CQP_ASSIGN_OR_RETURN(int then_pos,
                         table->schema().AttributeIndex(imp.then_attribute));
    for (const Tuple& row : table->rows()) {
      if (!HoldsCompare(row.at(static_cast<size_t>(if_pos)), CompareOp::kEq,
                        imp.if_value)) {
        continue;
      }
      if (!HoldsCompare(row.at(static_cast<size_t>(then_pos)), imp.then_op,
                        imp.then_value)) {
        return FailedPrecondition(
            "implication violated by " +
            row.at(static_cast<size_t>(then_pos)).ToString() + ": " +
            imp.ToText());
      }
    }
  }
  return Status::OK();
}

}  // namespace cqp::storage
