#ifndef CQP_STORAGE_CONSTRAINTS_H_
#define CQP_STORAGE_CONSTRAINTS_H_

#include <cstdint>
#include <string>

#include "catalog/constraints.h"
#include "common/status.h"
#include "storage/database.h"

namespace cqp::storage {

/// Knobs of DeriveConstraints().
struct DeriveOptions {
  /// Emit "key REL(attr)" for single attributes whose exact NDV equals the
  /// table's row count.
  bool derive_keys = true;
  /// Emit "domain REL.attr in [min, max]" per attribute (exact, from the
  /// data). String attributes participate when their NDV is at most
  /// `max_string_domain_ndv` (lexicographic bounds on free-text columns are
  /// true but useless to the optimizer).
  bool derive_domains = true;
  uint64_t max_string_domain_ndv = 64;
  /// Mine "imply REL.a = v => REL.b >= lo / <= hi" implications: for every
  /// categorical attribute a (NDV <= max_antecedent_ndv) and every other
  /// attribute b, the per-value min/max of b. Only implications strictly
  /// tighter than b's whole-relation domain are kept.
  bool derive_implications = true;
  uint64_t max_antecedent_ndv = 32;
  /// Hard cap on mined implications per relation (tightest-first would need
  /// a quality metric; the cap simply stops pathological catalogs).
  size_t max_implications_per_relation = 256;
};

/// Derives a ConstraintSet that provably holds on `db`'s current contents:
/// exact domains, single-attribute keys, and mined per-value implications.
/// Requires a prior Analyze() (NDV comes from stats); scans the rows for
/// the per-value bounds. Deterministic in the database contents.
StatusOr<catalog::ConstraintSet> DeriveConstraints(
    const Database& db, const DeriveOptions& options = DeriveOptions());

/// Validates that every constraint in `set` holds on `db`'s current
/// contents; the first violation (or a reference to a missing
/// relation/attribute) is returned as an error. The semantic rewrite layer
/// assumes constraint-valid data, so fuzz harnesses check derived (and
/// hand-written) sets with this before trusting the optimizer.
Status CheckConstraints(const Database& db, const catalog::ConstraintSet& set);

}  // namespace cqp::storage

#endif  // CQP_STORAGE_CONSTRAINTS_H_
