#include "storage/table.h"

#include "common/str_util.h"

namespace cqp::storage {

Table::Table(catalog::RelationDef schema) : schema_(std::move(schema)) {}

Status Table::Insert(Tuple row) {
  if (row.arity() != schema_.arity()) {
    return InvalidArgument(
        StrFormat("row arity %zu does not match schema arity %zu of %s",
                  row.arity(), schema_.arity(), schema_.name().c_str()));
  }
  for (size_t i = 0; i < row.arity(); ++i) {
    if (row.at(i).type() != schema_.attribute(i).type) {
      return InvalidArgument(StrFormat(
          "column %s.%s expects %s", schema_.name().c_str(),
          schema_.attribute(i).name.c_str(),
          catalog::ValueTypeName(schema_.attribute(i).type)));
    }
  }

  uint64_t bytes = row.ByteSize();
  // A row never spans blocks; oversized rows get a block of their own.
  if (blocks_ == 0 || current_block_fill_ + bytes > kBlockSizeBytes) {
    ++blocks_;
    current_block_fill_ = 0;
  }
  current_block_fill_ += bytes;
  if (current_block_fill_ > kBlockSizeBytes) {
    // Row larger than one block: account the overflow as full blocks.
    uint64_t extra = (current_block_fill_ - 1) / kBlockSizeBytes;
    blocks_ += extra;
    current_block_fill_ = current_block_fill_ % kBlockSizeBytes;
    if (current_block_fill_ == 0) current_block_fill_ = kBlockSizeBytes;
  }
  data_bytes_ += bytes;
  rows_.push_back(std::move(row));
  return Status::OK();
}

}  // namespace cqp::storage
