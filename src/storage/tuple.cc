#include "storage/tuple.h"

namespace cqp::storage {

Tuple Tuple::Concat(const Tuple& a, const Tuple& b) {
  std::vector<catalog::Value> values;
  values.reserve(a.arity() + b.arity());
  values.insert(values.end(), a.values_.begin(), a.values_.end());
  values.insert(values.end(), b.values_.begin(), b.values_.end());
  return Tuple(std::move(values));
}

Tuple Tuple::Project(const std::vector<int>& positions) const {
  std::vector<catalog::Value> values;
  values.reserve(positions.size());
  for (int p : positions) values.push_back(values_[static_cast<size_t>(p)]);
  return Tuple(std::move(values));
}

size_t Tuple::Hash() const {
  size_t h = 1469598103934665603ull;
  for (const catalog::Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

size_t Tuple::ByteSize() const {
  size_t bytes = 0;
  for (const catalog::Value& v : values_) bytes += v.ByteSize();
  return bytes;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace cqp::storage
