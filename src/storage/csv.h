#ifndef CQP_STORAGE_CSV_H_
#define CQP_STORAGE_CSV_H_

#include <string>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/database.h"

namespace cqp::storage {

/// CSV interchange for tables, so users can load their own data instead of
/// the synthetic generators.
///
/// Dialect: comma separator, double-quote quoting with "" escaping, first
/// line is the header. Types come from the supplied schema; INT and DOUBLE
/// cells are parsed strictly (the whole field must be numeric).

/// Serializes `table` (header + all rows).
std::string TableToCsv(const Table& table);

/// Parses `csv` and appends the rows to a fresh table created in `db` with
/// `schema`. The header must match the schema's attribute names
/// (case-insensitive, same order).
StatusOr<Table*> LoadCsvTable(Database* db, const catalog::RelationDef& schema,
                              const std::string& csv);

/// Writes `table` to `path` (truncating). Convenience over TableToCsv.
Status WriteCsvFile(const Table& table, const std::string& path);

/// Reads `path` and loads it via LoadCsvTable.
StatusOr<Table*> LoadCsvFile(Database* db, const catalog::RelationDef& schema,
                             const std::string& path);

}  // namespace cqp::storage

#endif  // CQP_STORAGE_CSV_H_
