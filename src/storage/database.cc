#include "storage/database.h"

#include <algorithm>
#include <unordered_map>

#include "common/str_util.h"

namespace cqp::storage {

std::string Database::Key(const std::string& name) { return ToUpper(name); }

StatusOr<Table*> Database::CreateTable(catalog::RelationDef schema) {
  std::string key = Key(schema.name());
  if (tables_.count(key) > 0) {
    return AlreadyExists("table " + schema.name());
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return raw;
}

StatusOr<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) return NotFound("table " + name);
  return const_cast<const Table*>(it->second.get());
}

StatusOr<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) return NotFound("table " + name);
  return it->second.get();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(Key(name)) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  std::sort(names.begin(), names.end());
  return names;
}

void Database::Analyze(size_t mcv_limit) {
  stats_.clear();
  for (const auto& [key, table] : tables_) {
    stats_.emplace(key, ComputeStats(*table, mcv_limit));
  }
}

StatusOr<const catalog::RelationStats*> Database::GetStats(
    const std::string& name) const {
  auto it = stats_.find(Key(name));
  if (it == stats_.end()) {
    return NotFound("statistics for table " + name + " (run Analyze first)");
  }
  return &it->second;
}

catalog::RelationStats ComputeStats(const Table& table, size_t mcv_limit) {
  catalog::RelationStats stats;
  stats.row_count = table.row_count();
  stats.blocks = table.blocks();
  stats.attributes.reserve(table.schema().arity());

  for (size_t col = 0; col < table.schema().arity(); ++col) {
    std::unordered_map<catalog::Value, uint64_t, catalog::ValueHash> counts;
    std::optional<double> min_numeric;
    std::optional<double> max_numeric;
    bool numeric = table.schema().attribute(col).type != catalog::ValueType::kString;
    for (const Tuple& row : table.rows()) {
      const catalog::Value& v = row.at(col);
      ++counts[v];
      if (numeric) {
        double x = v.AsNumeric();
        if (!min_numeric || x < *min_numeric) min_numeric = x;
        if (!max_numeric || x > *max_numeric) max_numeric = x;
      }
    }
    std::vector<catalog::McvEntry> mcvs;
    mcvs.reserve(counts.size());
    for (const auto& [value, count] : counts) {
      mcvs.push_back({value, count});
    }
    // Deterministic MCV selection: by count descending, then value ascending
    // (values within a column share a type, so Value::operator< is safe).
    std::sort(mcvs.begin(), mcvs.end(),
              [](const catalog::McvEntry& a, const catalog::McvEntry& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.value < b.value;
              });
    if (mcvs.size() > mcv_limit) mcvs.resize(mcv_limit);
    stats.attributes.emplace_back(stats.row_count, counts.size(), min_numeric,
                                  max_numeric, std::move(mcvs));
  }
  return stats;
}

}  // namespace cqp::storage
