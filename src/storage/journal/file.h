#ifndef CQP_STORAGE_JOURNAL_FILE_H_
#define CQP_STORAGE_JOURNAL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace cqp::storage {

/// An open append-only file handle. All durable state (the profile journal
/// and its snapshots) is written through this interface so that fault
/// injection can sit between the caller and the kernel — FaultyFile wraps
/// any File and simulates short writes, ENOSPC, fsync failure and
/// crash-at-offset without touching the callers.
///
/// Thread safety: Append() calls must be externally serialized, but one
/// thread may Append() while another calls Sync() (the group-commit
/// flusher does exactly that).
class File {
 public:
  virtual ~File() = default;

  /// Appends `data` at the end of the file. Handles EINTR and short
  /// writes internally: returns OK only when every byte was accepted by
  /// the kernel. On error some prefix of `data` may have been written —
  /// the caller must treat the file tail as torn.
  virtual Status Append(std::string_view data) = 0;

  /// fsync(): on OK every previously Append()ed byte is durable. A sync
  /// failure poisons the handle (dirty pages may have been dropped — the
  /// kernel gives no way to retry), so callers must stop writing and
  /// recover by reopening.
  virtual Status Sync() = 0;

  virtual Status Close() = 0;

  /// Logical end offset: bytes in the file after all Append()s so far.
  virtual uint64_t offset() const = 0;
};

/// Minimal filesystem surface for the durability layer. One process-wide
/// Posix implementation exists (PosixFileSystem()); tests and the crash
/// fuzzer wrap it in a FaultyFileSystem.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending, creating it when missing; the returned
  /// File's offset() starts at the existing size (0 when `truncate`).
  virtual StatusOr<std::unique_ptr<File>> OpenAppend(const std::string& path,
                                                     bool truncate) = 0;

  /// Whole-file read. NotFound when the file does not exist.
  virtual StatusOr<std::string> ReadFile(const std::string& path) = 0;

  /// Positional read: exactly `length` bytes starting at `offset`
  /// (pread(2)). kOutOfRange when the file ends before offset+length —
  /// the demand-paging path reads values whose extent it recorded at
  /// write time, so a short read means the ref and the file diverged.
  virtual StatusOr<std::string> ReadAt(const std::string& path,
                                       uint64_t offset, size_t length) = 0;

  /// rename(2): atomic replacement of `to` — the commit point of snapshot
  /// compaction.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// truncate(2) to `size` bytes — how recovery drops a torn journal tail.
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;

  /// fsync() on the directory itself, making renames/creates durable.
  virtual Status SyncDir(const std::string& path) = 0;

  /// mkdir -p.
  virtual Status CreateDirs(const std::string& path) = 0;
};

/// The process-wide Posix filesystem.
FileSystem& PosixFileSystem();

/// Atomically replaces `path` with `contents`: write `path`.tmp, fsync it,
/// rename over `path`, fsync the parent directory. After OK the file holds
/// exactly `contents`; after an error the previous `path` (if any) is
/// intact — a crash can never leave a half-written `path`.
Status AtomicWriteFile(FileSystem& fs, const std::string& path,
                       std::string_view contents);

}  // namespace cqp::storage

#endif  // CQP_STORAGE_JOURNAL_FILE_H_
