#include "storage/journal/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace cqp::storage {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  std::string msg = what + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) return ResourceExhausted(std::move(msg));
  if (err == ENOENT) return NotFound(std::move(msg));
  return Internal(std::move(msg));
}

class PosixFile : public File {
 public:
  PosixFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), offset_(size) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return FailedPrecondition("append to closed file " + path_);
    size_t written = 0;
    while (written < data.size()) {
      ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;  // signal mid-write: retry
        // A prefix may already be on disk; account for it so offset()
        // keeps matching the physical end of the file.
        offset_.fetch_add(written, std::memory_order_relaxed);
        return ErrnoStatus("write(" + path_ + ")", errno);
      }
      written += static_cast<size_t>(n);  // short write: loop
    }
    offset_.fetch_add(written, std::memory_order_relaxed);
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return FailedPrecondition("sync of closed file " + path_);
    while (::fsync(fd_) != 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("fsync(" + path_ + ")", errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close(" + path_ + ")", errno);
    return Status::OK();
  }

  uint64_t offset() const override {
    return offset_.load(std::memory_order_relaxed);
  }

 private:
  int fd_;
  const std::string path_;
  std::atomic<uint64_t> offset_;
};

class PosixFileSystemImpl : public FileSystem {
 public:
  StatusOr<std::unique_ptr<File>> OpenAppend(const std::string& path,
                                             bool truncate) override {
    int flags = O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC;
    if (truncate) flags |= O_TRUNC;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open(" + path + ")", errno);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      Status status = ErrnoStatus("fstat(" + path + ")", errno);
      ::close(fd);
      return status;
    }
    return std::unique_ptr<File>(
        new PosixFile(fd, path, static_cast<uint64_t>(st.st_size)));
  }

  StatusOr<std::string> ReadFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open(" + path + ")", errno);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status = ErrnoStatus("read(" + path + ")", errno);
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  StatusOr<std::string> ReadAt(const std::string& path, uint64_t offset,
                               size_t length) override {
    // Open-per-call is deliberate: ReadAt serves the cold page-in path,
    // where one extra open() is noise next to parsing + graph build, and
    // a cached fd would dangle across journal truncation/compaction.
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open(" + path + ")", errno);
    std::string out(length, '\0');
    size_t done = 0;
    while (done < length) {
      ssize_t n = ::pread(fd, out.data() + done, length - done,
                          static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status = ErrnoStatus("pread(" + path + ")", errno);
        ::close(fd);
        return status;
      }
      if (n == 0) {
        ::close(fd);
        return OutOfRange("pread(" + path + "): file ends at " +
                          std::to_string(offset + done) + ", wanted " +
                          std::to_string(offset + length));
      }
      done += static_cast<size_t>(n);
    }
    ::close(fd);
    return out;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename(" + from + " -> " + to + ")", errno);
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink(" + path + ")", errno);
    }
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    while (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("truncate(" + path + ")", errno);
    }
    return Status::OK();
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat(" + path + ")", errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool Exists(const std::string& path) override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open dir(" + path + ")", errno);
    Status status = Status::OK();
    while (::fsync(fd) != 0) {
      if (errno == EINTR) continue;
      // Some filesystems refuse fsync on directories (EINVAL); treat that
      // as best-effort rather than failing the commit.
      if (errno == EINVAL) break;
      status = ErrnoStatus("fsync dir(" + path + ")", errno);
      break;
    }
    ::close(fd);
    return status;
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      return Internal("mkdir -p " + path + ": " + ec.message());
    }
    return Status::OK();
  }
};

std::string ParentDir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

}  // namespace

FileSystem& PosixFileSystem() {
  static PosixFileSystemImpl* fs = new PosixFileSystemImpl();
  return *fs;
}

Status AtomicWriteFile(FileSystem& fs, const std::string& path,
                       std::string_view contents) {
  const std::string tmp = path + ".tmp";
  CQP_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       fs.OpenAppend(tmp, /*truncate=*/true));
  Status status = file->Append(contents);
  if (status.ok()) status = file->Sync();
  Status closed = file->Close();
  if (status.ok()) status = closed;
  if (!status.ok()) {
    fs.Remove(tmp);  // best effort; a stale .tmp is ignored by readers
    return status;
  }
  CQP_RETURN_IF_ERROR(fs.Rename(tmp, path));
  return fs.SyncDir(ParentDir(path));
}

}  // namespace cqp::storage
