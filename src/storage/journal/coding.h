#ifndef CQP_STORAGE_JOURNAL_CODING_H_
#define CQP_STORAGE_JOURNAL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace cqp::storage {

/// Little-endian fixed-width encoding shared by the journal record framing,
/// the snapshot file format and the profile mutation records. Explicit
/// byte-by-byte encoding keeps the on-disk format independent of host
/// endianness.

inline void PutFixed32(std::string* out, uint32_t v) {
  char buf[4] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(buf, 4);
}

inline void PutFixed64(std::string* out, uint64_t v) {
  PutFixed32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

inline uint64_t GetFixed64(const char* p) {
  return static_cast<uint64_t>(GetFixed32(p)) |
         (static_cast<uint64_t>(GetFixed32(p + 4)) << 32);
}

inline void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Reads a length-prefixed string at *pos; advances *pos past it. Returns
/// false when the buffer is too short.
inline bool GetLengthPrefixed(std::string_view buf, size_t* pos,
                              std::string_view* out) {
  if (buf.size() - *pos < 4) return false;
  uint32_t n = GetFixed32(buf.data() + *pos);
  *pos += 4;
  if (buf.size() - *pos < n) return false;
  *out = buf.substr(*pos, n);
  *pos += n;
  return true;
}

}  // namespace cqp::storage

#endif  // CQP_STORAGE_JOURNAL_CODING_H_
