#ifndef CQP_STORAGE_JOURNAL_SNAPSHOT_H_
#define CQP_STORAGE_JOURNAL_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/journal/file.h"

namespace cqp::storage::journal {

/// Compaction snapshot: the full versioned key→value state of a durable
/// store at one instant, written atomically (AtomicWriteFile: tmp + fsync
/// + rename + dir fsync) so a crash during compaction can never be seen —
/// readers find either the old snapshot or the new one, both intact.
///
/// On-disk format (little-endian):
///
///   "CQPSNAP1"                              8-byte magic + format version
///   next_version : u64                      the store's version counter
///   count : u64
///   count × { key : lpstring, version : u64, value : lpstring }
///   masked crc32c(everything above) : u32
///
/// where lpstring = [len : u32][bytes]. The trailing whole-file checksum
/// makes any external corruption (or a non-atomic writer) detectable:
/// ReadSnapshot fails loudly instead of loading half a state.

struct SnapshotEntry {
  std::string key;
  uint64_t version = 0;
  std::string value;
  /// Byte offset of the value (past its length prefix) within the
  /// snapshot file. Filled by ReadSnapshot and by the offset-returning
  /// WriteSnapshot overload; ignored by the encoder. Demand paging uses
  /// it to pread a single profile back without loading the whole file.
  uint64_t value_offset = 0;
};

struct SnapshotData {
  /// The store's next mutation version at snapshot time. Journal records
  /// with version < next_version are already reflected in the entries —
  /// replay skips them. Persisting this also keeps version numbering
  /// monotonic across restarts, which is what snapshot-version-keyed
  /// caches (EvalCacheRegistry, PlanCache) assume.
  uint64_t next_version = 1;
  std::vector<SnapshotEntry> entries;
};

/// Serializes `data` (for tests; WriteSnapshot uses this internally).
/// When `value_offsets` is non-null it receives, per entry, the byte
/// offset of the entry's value within the encoded file.
std::string EncodeSnapshot(const SnapshotData& data,
                           std::vector<uint64_t>* value_offsets = nullptr);

/// Atomically replaces the snapshot at `path`. The optional
/// `value_offsets` out-parameter mirrors EncodeSnapshot's: shard
/// compaction uses it to refresh its paged entries' disk refs without
/// re-reading the file it just wrote.
Status WriteSnapshot(FileSystem& fs, const std::string& path,
                     const SnapshotData& data,
                     std::vector<uint64_t>* value_offsets = nullptr);

/// Loads and verifies the snapshot. NotFound when `path` does not exist
/// (an empty store); kInternal with a precise message on bad magic,
/// truncation or checksum mismatch — a snapshot is only ever produced by
/// an atomic rename, so corruption here is NOT a normal crash artifact
/// and refusing to guess is the safe behavior.
StatusOr<SnapshotData> ReadSnapshot(FileSystem& fs, const std::string& path);

}  // namespace cqp::storage::journal

#endif  // CQP_STORAGE_JOURNAL_SNAPSHOT_H_
