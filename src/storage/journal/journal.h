#ifndef CQP_STORAGE_JOURNAL_JOURNAL_H_
#define CQP_STORAGE_JOURNAL_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/journal/file.h"

namespace cqp::storage::journal {

/// Write-ahead log of opaque byte records with per-record CRC32C.
///
/// On-disk record framing (little-endian):
///
///   [payload length : u32][masked crc32c(length || payload) : u32][payload]
///
/// The checksum covers the length field too, so a corrupted length cannot
/// send the reader off into garbage that happens to checksum clean; the
/// mask (crc32c.h) keeps a journal that embeds other checksums honest.
///
/// Torn-tail policy: a crash (or ENOSPC) can leave a partial record at the
/// end of the journal — a truncated header, a truncated payload, or a
/// checksum mismatch. Replay() treats the first such record as the end of
/// the log: everything before it is applied, everything from it on is
/// reported as droppable, and recovery truncates the file there. A record
/// that was never acknowledged as fsynced is allowed to vanish; a record
/// in the clean prefix is never lost.

/// Per-record framing overhead.
inline constexpr size_t kRecordHeaderBytes = 8;

/// Sanity cap on a single record (a length field above this is treated as
/// corruption, not as a 4 GiB allocation request).
inline constexpr uint32_t kMaxRecordBytes = 64u << 20;

/// Frames one payload as a journal record.
std::string FrameRecord(std::string_view payload);

/// What Replay() found.
struct ReplayResult {
  uint64_t records = 0;       ///< intact records applied
  uint64_t valid_bytes = 0;   ///< length of the clean prefix
  uint64_t dropped_bytes = 0; ///< torn/corrupt bytes past the clean prefix
  bool torn_tail = false;     ///< true when dropped_bytes > 0
};

/// Replays the journal at `path`, calling `apply` on every intact record
/// payload in order. A missing file is an empty journal. Stops (without
/// error) at the first torn or checksum-corrupt record. An error from
/// `apply` aborts the replay and is returned as-is.
StatusOr<ReplayResult> Replay(
    FileSystem& fs, const std::string& path,
    const std::function<Status(std::string_view payload)>& apply);

/// Same record scan as Replay, over an in-memory buffer (for tests and
/// corpus replay).
StatusOr<ReplayResult> ReplayBuffer(
    std::string_view buffer,
    const std::function<Status(std::string_view payload)>& apply);

/// Truncates `path` to `result.valid_bytes` — the recovery step that drops
/// a torn tail so the journal can be appended to again. No-op when the
/// tail was clean.
Status DropTornTail(FileSystem& fs, const std::string& path,
                    const ReplayResult& result);

/// Append side of the log. Appends are buffered by the OS; Sync() is the
/// durability point. Not thread-safe for concurrent Append(), but Append()
/// and Sync() may race (the group-commit flusher syncs while writers
/// append; fsync simply covers whatever has reached the file).
class Writer {
 public:
  /// Opens `path` for appending (creating it if missing). Run Replay() +
  /// DropTornTail() first — appending after a torn tail would bury valid
  /// records behind garbage.
  static StatusOr<std::unique_ptr<Writer>> Open(FileSystem& fs,
                                                const std::string& path);

  /// Appends one framed record. On error the journal tail must be assumed
  /// torn: the caller must stop appending (wedge) and recover by reopening.
  Status Append(std::string_view payload);

  Status Sync();
  Status Close();

  /// File size after all appends so far — the commit token for group
  /// commit (a record is durable once a successful Sync() happened at or
  /// past its end offset).
  uint64_t end_offset() const { return file_->offset(); }

 private:
  explicit Writer(std::unique_ptr<File> file) : file_(std::move(file)) {}

  std::unique_ptr<File> file_;
};

}  // namespace cqp::storage::journal

#endif  // CQP_STORAGE_JOURNAL_JOURNAL_H_
