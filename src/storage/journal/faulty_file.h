#ifndef CQP_STORAGE_JOURNAL_FAULTY_FILE_H_
#define CQP_STORAGE_JOURNAL_FAULTY_FILE_H_

#include <memory>
#include <mutex>
#include <string>

#include "storage/journal/file.h"

namespace cqp::storage {

/// Fault-injecting FileSystem decorator. All writes pass through a shared
/// fault state, which supports two kinds of injection:
///
/// 1. Failpoint sites (armed via CQP_FAILPOINTS or failpoint::Configure,
///    same deterministic seeded machinery as the search failpoints):
///
///      storage.file.append.torn    persist ~half the bytes, fail Internal
///      storage.file.append.enospc  persist ~half, fail ResourceExhausted
///      storage.file.append.split   split the append into two underlying
///                                  writes (success; exercises the callers'
///                                  short-write/EINTR loops)
///      storage.file.sync.fail      fsync fails Internal (fsyncgate: the
///                                  handle must be treated as poisoned)
///      storage.file.rename.fail    rename fails Internal
///
/// 2. Crash-at-offset (CrashAfterBytes): a byte budget across all writes
///    through this filesystem. The write that crosses the budget persists
///    only up to the budget (a torn write, as when power fails mid-write),
///    and every subsequent operation fails with "simulated crash". The
///    crash fuzzer uses this to kill the store at arbitrary points and
///    check recovery against an oracle.
///
/// Thread-safe. Used by tools/cqp_crashfuzz and tests; production code
/// always talks to PosixFileSystem() directly.
class FaultyFileSystem : public FileSystem {
 public:
  /// `base` must outlive this filesystem and all files opened through it.
  explicit FaultyFileSystem(FileSystem& base);
  ~FaultyFileSystem() override;

  /// Arms the crash: after `budget` more persisted bytes, tear the
  /// in-flight write and fail everything from then on.
  void CrashAfterBytes(uint64_t budget);

  /// True once the armed crash has fired.
  bool crashed() const;

  /// Disarms the crash and clears the crashed flag (the byte counter is
  /// untouched).
  void ClearCrash();

  /// Total bytes actually persisted through this filesystem so far.
  uint64_t bytes_written() const;

  StatusOr<std::unique_ptr<File>> OpenAppend(const std::string& path,
                                             bool truncate) override;
  StatusOr<std::string> ReadFile(const std::string& path) override;
  StatusOr<std::string> ReadAt(const std::string& path, uint64_t offset,
                               size_t length) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;

  struct FaultState;  ///< shared between the filesystem and its open files

 private:
  FileSystem& base_;
  std::shared_ptr<FaultState> state_;
};

}  // namespace cqp::storage

#endif  // CQP_STORAGE_JOURNAL_FAULTY_FILE_H_
