#include "storage/journal/faulty_file.h"

#include <algorithm>

#include "common/failpoint.h"

namespace cqp::storage {

struct FaultyFileSystem::FaultState {
  mutable std::mutex mu;
  bool crash_armed = false;
  uint64_t crash_budget = 0;  ///< persisted bytes until the crash fires
  bool crashed = false;
  uint64_t total_written = 0;

  Status CrashStatus() const {
    return Internal("simulated crash (fault injection)");
  }
};

/// One fault-injecting file. Shares the filesystem's fault state so the
/// crash budget spans every open file (journal + snapshot together, as a
/// real power loss would).
class FaultyFile : public File {
 public:
  FaultyFile(std::unique_ptr<File> base,
             std::shared_ptr<FaultyFileSystem::FaultState> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();

    // Failpoint-driven partial failures (deterministic, seeded).
    if (failpoint::Maybe("storage.file.append.torn")) {
      Persist(data.substr(0, data.size() / 2));
      return Internal("injected torn append");
    }
    if (failpoint::Maybe("storage.file.append.enospc")) {
      Persist(data.substr(0, data.size() / 2));
      return ResourceExhausted("injected ENOSPC");
    }

    // Crash-at-offset: tear the write that crosses the budget.
    if (state_->crash_armed && state_->crash_budget < data.size()) {
      Persist(data.substr(0, state_->crash_budget));
      state_->crashed = true;
      return state_->CrashStatus();
    }

    if (failpoint::Maybe("storage.file.append.split") && data.size() > 1) {
      // Two underlying writes: proves callers survive short writes.
      Status first = Persist(data.substr(0, data.size() / 2));
      if (!first.ok()) return first;
      return Persist(data.substr(data.size() / 2));
    }
    return Persist(data);
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();
    if (failpoint::Maybe("storage.file.sync.fail")) {
      return Internal("injected fsync failure");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

  uint64_t offset() const override { return base_->offset(); }

 private:
  /// Writes through to the base file and charges the crash budget.
  /// Caller holds state_->mu.
  Status Persist(std::string_view data) {
    if (data.empty()) return Status::OK();
    Status status = base_->Append(data);
    if (status.ok()) {
      state_->total_written += data.size();
      if (state_->crash_armed) {
        state_->crash_budget -= std::min<uint64_t>(state_->crash_budget,
                                                   data.size());
      }
    }
    return status;
  }

  std::unique_ptr<File> base_;
  std::shared_ptr<FaultyFileSystem::FaultState> state_;
};

FaultyFileSystem::FaultyFileSystem(FileSystem& base)
    : base_(base), state_(std::make_shared<FaultState>()) {}

FaultyFileSystem::~FaultyFileSystem() = default;

void FaultyFileSystem::CrashAfterBytes(uint64_t budget) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->crash_armed = true;
  state_->crash_budget = budget;
  state_->crashed = false;
}

bool FaultyFileSystem::crashed() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->crashed;
}

void FaultyFileSystem::ClearCrash() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->crash_armed = false;
  state_->crashed = false;
}

uint64_t FaultyFileSystem::bytes_written() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->total_written;
}

StatusOr<std::unique_ptr<File>> FaultyFileSystem::OpenAppend(
    const std::string& path, bool truncate) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();
  }
  CQP_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       base_.OpenAppend(path, truncate));
  return std::unique_ptr<File>(new FaultyFile(std::move(file), state_));
}

StatusOr<std::string> FaultyFileSystem::ReadFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();
  }
  return base_.ReadFile(path);
}

StatusOr<std::string> FaultyFileSystem::ReadAt(const std::string& path,
                                               uint64_t offset, size_t length) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();
  }
  return base_.ReadAt(path, offset, length);
}

Status FaultyFileSystem::Rename(const std::string& from,
                                const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();
  }
  if (failpoint::Maybe("storage.file.rename.fail")) {
    return Internal("injected rename failure");
  }
  return base_.Rename(from, to);
}

Status FaultyFileSystem::Remove(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();
  }
  return base_.Remove(path);
}

Status FaultyFileSystem::Truncate(const std::string& path, uint64_t size) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();
  }
  return base_.Truncate(path, size);
}

StatusOr<uint64_t> FaultyFileSystem::FileSize(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();
  }
  return base_.FileSize(path);
}

bool FaultyFileSystem::Exists(const std::string& path) {
  return base_.Exists(path);
}

Status FaultyFileSystem::SyncDir(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();
  }
  return base_.SyncDir(path);
}

Status FaultyFileSystem::CreateDirs(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->crashed) return state_->CrashStatus();
  }
  return base_.CreateDirs(path);
}

}  // namespace cqp::storage
