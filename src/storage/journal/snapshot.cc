#include "storage/journal/snapshot.h"

#include <cstring>

#include "common/crc32c.h"
#include "storage/journal/coding.h"

namespace cqp::storage::journal {

namespace {

constexpr char kMagic[8] = {'C', 'Q', 'P', 'S', 'N', 'A', 'P', '1'};

}  // namespace

std::string EncodeSnapshot(const SnapshotData& data,
                           std::vector<uint64_t>* value_offsets) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutFixed64(&out, data.next_version);
  PutFixed64(&out, static_cast<uint64_t>(data.entries.size()));
  if (value_offsets != nullptr) {
    value_offsets->clear();
    value_offsets->reserve(data.entries.size());
  }
  for (const SnapshotEntry& entry : data.entries) {
    PutLengthPrefixed(&out, entry.key);
    PutFixed64(&out, entry.version);
    PutFixed32(&out, static_cast<uint32_t>(entry.value.size()));
    if (value_offsets != nullptr) value_offsets->push_back(out.size());
    out.append(entry.value);
  }
  PutFixed32(&out, crc32c::Mask(crc32c::Value(out)));
  return out;
}

Status WriteSnapshot(FileSystem& fs, const std::string& path,
                     const SnapshotData& data,
                     std::vector<uint64_t>* value_offsets) {
  return AtomicWriteFile(fs, path, EncodeSnapshot(data, value_offsets));
}

StatusOr<SnapshotData> ReadSnapshot(FileSystem& fs, const std::string& path) {
  if (!fs.Exists(path)) {
    return NotFound("no snapshot at " + path);
  }
  CQP_ASSIGN_OR_RETURN(std::string raw, fs.ReadFile(path));
  const size_t kMinBytes = sizeof(kMagic) + 8 + 8 + 4;
  if (raw.size() < kMinBytes) {
    return Internal("snapshot " + path + " truncated (" +
                    std::to_string(raw.size()) + " bytes)");
  }
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return Internal("snapshot " + path + " has bad magic");
  }
  uint32_t stored = GetFixed32(raw.data() + raw.size() - 4);
  uint32_t actual = crc32c::Mask(crc32c::Value(raw.data(), raw.size() - 4));
  if (stored != actual) {
    return Internal("snapshot " + path + " checksum mismatch");
  }
  std::string_view body(raw.data(), raw.size() - 4);
  size_t pos = sizeof(kMagic);
  SnapshotData data;
  data.next_version = GetFixed64(body.data() + pos);
  pos += 8;
  uint64_t count = GetFixed64(body.data() + pos);
  pos += 8;
  data.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SnapshotEntry entry;
    std::string_view key, value;
    if (!GetLengthPrefixed(body, &pos, &key)) {
      return Internal("snapshot " + path + " entry " + std::to_string(i) +
                      ": truncated key");
    }
    if (body.size() - pos < 8) {
      return Internal("snapshot " + path + " entry " + std::to_string(i) +
                      ": truncated version");
    }
    entry.version = GetFixed64(body.data() + pos);
    pos += 8;
    if (!GetLengthPrefixed(body, &pos, &value)) {
      return Internal("snapshot " + path + " entry " + std::to_string(i) +
                      ": truncated value");
    }
    entry.key.assign(key);
    entry.value.assign(value);
    entry.value_offset = pos - value.size();
    data.entries.push_back(std::move(entry));
  }
  if (pos != body.size()) {
    return Internal("snapshot " + path + ": " +
                    std::to_string(body.size() - pos) +
                    " trailing bytes after last entry");
  }
  return data;
}

}  // namespace cqp::storage::journal
