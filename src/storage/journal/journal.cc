#include "storage/journal/journal.h"

#include "common/crc32c.h"
#include "storage/journal/coding.h"

namespace cqp::storage::journal {

std::string FrameRecord(std::string_view payload) {
  CQP_CHECK(payload.size() <= kMaxRecordBytes) << "journal record too large";
  std::string frame;
  frame.reserve(kRecordHeaderBytes + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  uint32_t crc = crc32c::Value(frame.data(), 4);
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  PutFixed32(&frame, crc32c::Mask(crc));
  frame.append(payload.data(), payload.size());
  return frame;
}

StatusOr<ReplayResult> ReplayBuffer(
    std::string_view buffer,
    const std::function<Status(std::string_view payload)>& apply) {
  ReplayResult result;
  size_t pos = 0;
  while (pos < buffer.size()) {
    if (buffer.size() - pos < kRecordHeaderBytes) break;  // torn header
    uint32_t len = GetFixed32(buffer.data() + pos);
    uint32_t stored = GetFixed32(buffer.data() + pos + 4);
    if (len > kMaxRecordBytes) break;  // corrupt length field
    if (buffer.size() - pos - kRecordHeaderBytes < len) break;  // torn payload
    std::string_view payload = buffer.substr(pos + kRecordHeaderBytes, len);
    uint32_t crc = crc32c::Value(buffer.data() + pos, 4);
    crc = crc32c::Extend(crc, payload.data(), payload.size());
    if (crc32c::Mask(crc) != stored) break;  // corrupt record
    CQP_RETURN_IF_ERROR(apply(payload));
    pos += kRecordHeaderBytes + len;
    ++result.records;
  }
  result.valid_bytes = pos;
  result.dropped_bytes = buffer.size() - pos;
  result.torn_tail = result.dropped_bytes > 0;
  return result;
}

StatusOr<ReplayResult> Replay(
    FileSystem& fs, const std::string& path,
    const std::function<Status(std::string_view payload)>& apply) {
  if (!fs.Exists(path)) return ReplayResult{};
  CQP_ASSIGN_OR_RETURN(std::string buffer, fs.ReadFile(path));
  return ReplayBuffer(buffer, apply);
}

Status DropTornTail(FileSystem& fs, const std::string& path,
                    const ReplayResult& result) {
  if (!result.torn_tail) return Status::OK();
  return fs.Truncate(path, result.valid_bytes);
}

StatusOr<std::unique_ptr<Writer>> Writer::Open(FileSystem& fs,
                                               const std::string& path) {
  CQP_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       fs.OpenAppend(path, /*truncate=*/false));
  return std::unique_ptr<Writer>(new Writer(std::move(file)));
}

Status Writer::Append(std::string_view payload) {
  return file_->Append(FrameRecord(payload));
}

Status Writer::Sync() { return file_->Sync(); }

Status Writer::Close() { return file_->Close(); }

}  // namespace cqp::storage::journal
