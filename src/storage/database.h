#ifndef CQP_STORAGE_DATABASE_H_
#define CQP_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/constraints.h"
#include "catalog/schema.h"
#include "catalog/stats.h"
#include "common/status.h"
#include "storage/table.h"

namespace cqp::storage {

/// An in-memory database: named tables plus their ANALYZE statistics.
///
/// Relation names are case-insensitive (stored upper-cased), matching the
/// SQL front end.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates an empty table; fails with AlreadyExists on name clash.
  StatusOr<Table*> CreateTable(catalog::RelationDef schema);

  /// Looks up a table; fails with NotFound.
  StatusOr<const Table*> GetTable(const std::string& name) const;
  StatusOr<Table*> GetMutableTable(const std::string& name);

  bool HasTable(const std::string& name) const;

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  /// Recomputes statistics for every table (exact NDV/min/max, MCV list of
  /// at most `mcv_limit` entries per attribute).
  void Analyze(size_t mcv_limit = 16);

  /// Statistics for `name`; requires a prior Analyze(). NotFound otherwise.
  StatusOr<const catalog::RelationStats*> GetStats(
      const std::string& name) const;

  /// The declarative integrity constraints the semantic rewrite layer may
  /// assume hold on this database (docs/rewriting.md). Empty by default.
  const catalog::ConstraintSet& constraints() const { return constraints_; }

  /// Replaces the constraint set and bumps the constraint revision. The
  /// revision joins the plan-cache config key, so prepared artifacts built
  /// under the old constraints become unreachable (never served stale).
  void SetConstraints(catalog::ConstraintSet constraints) {
    constraints_ = std::move(constraints);
    ++constraint_revision_;
  }

  /// Monotone counter, bumped by every SetConstraints() call. Starts at 0
  /// (the empty, constraint-free catalog).
  uint64_t constraint_revision() const { return constraint_revision_; }

 private:
  static std::string Key(const std::string& name);

  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, catalog::RelationStats> stats_;
  catalog::ConstraintSet constraints_;
  uint64_t constraint_revision_ = 0;
};

/// Computes ANALYZE statistics for one table (exposed for tests).
catalog::RelationStats ComputeStats(const Table& table, size_t mcv_limit);

}  // namespace cqp::storage

#endif  // CQP_STORAGE_DATABASE_H_
