#include "storage/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace cqp::storage {

namespace {

using catalog::Value;
using catalog::ValueType;

/// Quotes a field when it contains separator, quote or newline characters.
std::string QuoteField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    out += c;
    if (c == '"') out += '"';
  }
  out += "\"";
  return out;
}

/// Splits one CSV record (no embedded newlines across records supported at
/// the record level; quoted fields may contain commas and escaped quotes).
StatusOr<std::vector<std::string>> ParseRecord(const std::string& line,
                                               size_t line_no) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      if (!field.empty()) {
        return InvalidArgument(
            StrFormat("line %zu: quote inside unquoted field", line_no));
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      field += c;
    }
  }
  if (in_quotes) {
    return InvalidArgument(StrFormat("line %zu: unterminated quote", line_no));
  }
  fields.push_back(std::move(field));
  return fields;
}

StatusOr<Value> ParseCell(const std::string& field, ValueType type,
                          size_t line_no) {
  switch (type) {
    case ValueType::kInt: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (field.empty() || end != field.c_str() + field.size() ||
          errno == ERANGE) {
        return InvalidArgument(
            StrFormat("line %zu: '%s' is not an INT", line_no,
                      field.c_str()));
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (field.empty() || end != field.c_str() + field.size() ||
          errno == ERANGE) {
        return InvalidArgument(StrFormat("line %zu: '%s' is not a DOUBLE",
                                         line_no, field.c_str()));
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(field);
  }
  return Internal("unknown value type");
}

}  // namespace

std::string TableToCsv(const Table& table) {
  std::string out;
  const catalog::RelationDef& schema = table.schema();
  for (size_t c = 0; c < schema.arity(); ++c) {
    if (c > 0) out += ',';
    out += QuoteField(schema.attribute(c).name);
  }
  out += '\n';
  for (const Tuple& row : table.rows()) {
    for (size_t c = 0; c < row.arity(); ++c) {
      if (c > 0) out += ',';
      out += QuoteField(row.at(c).ToString());
    }
    out += '\n';
  }
  return out;
}

StatusOr<Table*> LoadCsvTable(Database* db, const catalog::RelationDef& schema,
                              const std::string& csv) {
  CQP_CHECK(db != nullptr);
  std::vector<std::string> lines = Split(csv, '\n');
  if (lines.empty() || StripWhitespace(lines[0]).empty()) {
    return InvalidArgument("CSV is empty (missing header)");
  }
  CQP_ASSIGN_OR_RETURN(std::vector<std::string> header,
                       ParseRecord(lines[0], 1));
  if (header.size() != schema.arity()) {
    return InvalidArgument(
        StrFormat("header has %zu columns, schema %s has %zu", header.size(),
                  schema.name().c_str(), schema.arity()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (!EqualsIgnoreCase(StripWhitespace(header[c]),
                          schema.attribute(c).name)) {
      return InvalidArgument(StrFormat(
          "header column %zu is '%s', schema expects '%s'", c,
          header[c].c_str(), schema.attribute(c).name.c_str()));
    }
  }

  CQP_ASSIGN_OR_RETURN(Table * table, db->CreateTable(schema));
  for (size_t l = 1; l < lines.size(); ++l) {
    if (StripWhitespace(lines[l]).empty()) continue;
    CQP_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseRecord(lines[l], l + 1));
    if (fields.size() != schema.arity()) {
      return InvalidArgument(StrFormat("line %zu: expected %zu fields, got %zu",
                                       l + 1, schema.arity(), fields.size()));
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      CQP_ASSIGN_OR_RETURN(
          Value v, ParseCell(fields[c], schema.attribute(c).type, l + 1));
      values.push_back(std::move(v));
    }
    CQP_RETURN_IF_ERROR(table->Insert(Tuple(std::move(values))));
  }
  return table;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return InvalidArgument("cannot open " + path + " for writing");
  out << TableToCsv(table);
  if (!out.good()) return Internal("write to " + path + " failed");
  return Status::OK();
}

StatusOr<Table*> LoadCsvFile(Database* db, const catalog::RelationDef& schema,
                             const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsvTable(db, schema, buffer.str());
}

}  // namespace cqp::storage
