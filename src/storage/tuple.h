#ifndef CQP_STORAGE_TUPLE_H_
#define CQP_STORAGE_TUPLE_H_

#include <string>
#include <vector>

#include "catalog/value.h"

namespace cqp::storage {

/// A row of typed values. Tuples are plain value containers; the schema
/// (column names/types) lives with the Table or the executor's RowSet.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<catalog::Value> values)
      : values_(std::move(values)) {}

  size_t arity() const { return values_.size(); }
  const catalog::Value& at(size_t i) const { return values_[i]; }
  const std::vector<catalog::Value>& values() const { return values_; }

  void Append(catalog::Value v) { values_.push_back(std::move(v)); }

  /// Concatenation of two rows (used by joins).
  static Tuple Concat(const Tuple& a, const Tuple& b);

  /// Row projected to the given column positions.
  Tuple Project(const std::vector<int>& positions) const;

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  size_t Hash() const;

  /// Storage footprint under the byte-accounted block layout.
  size_t ByteSize() const;

  /// "(v1, v2, ...)" rendering.
  std::string ToString() const;

 private:
  std::vector<catalog::Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace cqp::storage

#endif  // CQP_STORAGE_TUPLE_H_
