// Ablations beyond the paper's figures:
//
//  1. Conjunction model. §7.2.3 attributes the minuscule quality gaps of
//     Fig. 14 partly to Formula 10 (noisy-or), whose value races to 1 as
//     preferences accumulate, and speculates that "a different model ...
//     might have resulted in larger differences among approaches". We test
//     that claim by re-running the quality comparison under the capped-sum
//     model doi(Px) = min(1, Σ doi).
//
//  2. Multi-objective personalization (§8 future work): the Pareto front
//     of (doi, cost) for one instance, and weighted-scalarization solutions
//     sweeping the cost weight.

#include <cstdio>

#include "bench_util.h"
#include "construct/query_builder.h"
#include "cqp/multi_objective.h"
#include "exec/executor.h"
#include "exec/personalized_exec.h"

namespace {

using namespace cqp::bench;  // NOLINT

constexpr double kCellBudgetSeconds = 20.0;
const char* const kHeuristics[] = {"D-HeurDoi", "C-MaxBounds",
                                   "D-SingleMaxDoi"};

void ConjunctionAblation(const std::vector<cqp::workload::Instance>& base) {
  std::printf(
      "\n[1] quality difference (x 1e-7) under both conjunction models "
      "(K=%zu)\n", base.empty() ? 0 : base[0].space.K());
  std::printf("%-22s %13s %13s %13s\n", "model / %supreme", kHeuristics[0],
              kHeuristics[1], kHeuristics[2]);

  for (auto model : {cqp::prefs::ConjunctionModel::kNoisyOr,
                     cqp::prefs::ConjunctionModel::kSumCapped}) {
    // Same preferences, different doi combination: flip the model the
    // evaluators use.
    std::vector<cqp::workload::Instance> instances;
    instances.reserve(base.size());
    for (const auto& inst : base) {
      cqp::workload::Instance copy = inst;
      copy.space.conjunction_model = model;
      instances.push_back(std::move(copy));
    }
    const char* model_name =
        model == cqp::prefs::ConjunctionModel::kNoisyOr ? "noisy-or (paper)"
                                                        : "capped-sum";
    for (int pct : {10, 20, 50}) {
      auto problems = FractionProblems(instances, pct / 100.0);
      auto reference = ReferenceDois("C-Boundaries", instances, problems);
      std::printf("%-16s %3d%%", model_name, pct);
      for (const char* name : kHeuristics) {
        Cell cell = RunCell(name, instances, problems, reference,
                            kCellBudgetSeconds);
        if (cell.scored_runs == 0) {
          std::printf(" %12s ", "n/a");
        } else {
          std::printf(" %s",
                      FormatCell(cell.mean_quality_diff * 1e7, cell).c_str());
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "reading: both models show the Fig. 14 shrink-with-budget trend. At\n"
      "tight budgets (10%%) the capped sum has not saturated and shows its\n"
      "own gap profile; at 50%% it saturates at exactly 1.0 even faster\n"
      "than noisy-or, collapsing all differences to zero — the paper's\n"
      "tiny Fig. 14 gaps are robust to saturating conjunction models.\n");
}

void MultiObjectiveDemo(const cqp::workload::Instance& inst) {
  std::printf("\n[2] multi-objective personalization (one K=%zu instance)\n",
              inst.space.K());
  cqp::cqp::MultiObjectiveSpec spec;
  spec.doi_weight = 1.0;
  spec.cost_weight = 1.0;
  spec.cost_scale = inst.supreme_cost_ms;
  spec.size_scale = std::max(inst.space.base.size, 1.0);

  cqp::cqp::SearchContext pareto_ctx;
  auto front = cqp::cqp::ParetoFront(inst.space, spec, pareto_ctx);
  const cqp::cqp::SearchMetrics& metrics = pareto_ctx.metrics;
  if (!front.ok()) {
    std::printf("pareto: %s\n", front.status().ToString().c_str());
    return;
  }
  std::printf("Pareto front of (doi up, cost down): %zu points "
              "(%.1f ms, %llu states)\n",
              front->size(), metrics.wall_ms,
              static_cast<unsigned long long>(metrics.states_examined));
  std::printf("%12s %12s %6s\n", "cost[ms]", "doi", "|Px|");
  for (const auto& p : *front) {
    std::printf("%12.1f %12.8f %6zu\n", p.params.cost_ms, p.params.doi,
                p.chosen.size());
  }

  std::printf("\nscalarized optima while sweeping the cost weight:\n");
  std::printf("%10s %12s %12s %6s\n", "w_cost", "cost[ms]", "doi", "|Px|");
  for (double wc : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    spec.cost_weight = wc;
    cqp::cqp::SearchContext scalar_ctx;
    auto sol = cqp::cqp::SolveScalarized(inst.space, spec, scalar_ctx);
    if (!sol.ok() || !sol->feasible) {
      std::printf("%10.2f %12s\n", wc, "infeasible");
      continue;
    }
    std::printf("%10.2f %12.1f %12.6f %6zu\n", wc, sol->params.cost_ms,
                sol->params.doi, sol->chosen.size());
  }
  std::printf("higher cost weights slide the optimum down the front.\n");
}

void MergeAblation(const cqp::storage::Database& db,
                   const std::vector<cqp::workload::Instance>& instances) {
  std::printf(
      "\n[3] footnote 1: merging join-free preferences into one sub-query\n"
      "(same Problem 2 solutions executed with and without the merge)\n");
  cqp::exec::Executor executor(&db);
  double plain_ms = 0, merged_ms = 0;
  size_t runs = 0, mismatches = 0;
  for (const auto& inst : instances) {
    const cqp::cqp::Algorithm* algo = *cqp::cqp::GetAlgorithm("C-Boundaries");
    cqp::SearchBudget budget;
    budget.max_expansions = kStateLimitPerRun;
    cqp::cqp::SearchContext search_ctx(budget);
    auto sol = algo->Solve(inst.space, cqp::cqp::ProblemSpec::Problem2(400),
                           search_ctx);
    if (!sol.ok() || !sol->feasible || sol->chosen.empty()) continue;

    auto run_variant = [&](bool merge) -> double {
      cqp::construct::BuildOptions options;
      options.merge_compatible = merge;
      auto pq = cqp::construct::BuildPersonalizedQuery(
          db, inst.space.query, inst.space.prefs, sol->chosen, options);
      if (!pq.ok() || pq->subqueries.empty()) return -1;
      cqp::exec::ExecStats stats;
      auto rows = cqp::exec::ExecutePersonalized(
          executor, pq->subqueries, pq->dois,
          cqp::exec::CombineMode::kIntersection, &stats);
      if (!rows.ok()) return -1;
      return stats.SimulatedMillis(cqp::exec::CostModelParams());
    };
    double a = run_variant(false);
    double b = run_variant(true);
    if (a < 0 || b < 0) continue;
    plain_ms += a;
    merged_ms += b;
    ++runs;
    if (b > a + 1e-9) ++mismatches;  // merge should never cost more
  }
  if (runs == 0) {
    std::printf("no feasible instances\n");
    return;
  }
  std::printf("mean simulated exec: %.1f ms unmerged vs %.1f ms merged "
              "(%zu runs, %zu regressions)\n",
              plain_ms / static_cast<double>(runs),
              merged_ms / static_cast<double>(runs), runs, mismatches);
  std::printf(
      "merging join-free preferences removes whole base-relation re-scans\n"
      "from the UNION, which is exactly the saving footnote 1 anticipates.\n");
}

int Run() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("Ablations (extensions beyond the paper's figures)\n");
  auto config = DefaultConfig();
  config.n_profiles = 3;
  config.query.n_queries = 3;
  auto ctx_or = cqp::workload::ExperimentContext::Create(config);
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "%s\n", ctx_or.status().ToString().c_str());
    return 1;
  }
  auto ctx = *std::move(ctx_or);
  auto instances_or = cqp::workload::BuildInstances(ctx, 15);
  if (!instances_or.ok()) {
    std::fprintf(stderr, "%s\n", instances_or.status().ToString().c_str());
    return 1;
  }
  auto instances = *std::move(instances_or);

  ConjunctionAblation(instances);
  MultiObjectiveDemo(instances.front());
  MergeAblation(ctx.db(), instances);
  return 0;
}

}  // namespace

int main() { return Run(); }
