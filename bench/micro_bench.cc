// Micro-benchmarks (google-benchmark) for the design choices DESIGN.md
// calls out: index-set transitions, incremental vs from-scratch parameter
// evaluation, and preference-space extraction.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cqp/search_space.h"
#include "cqp/search_util.h"
#include "cqp/transitions.h"
#include "sql/parser.h"
#include "estimation/evaluator.h"
#include "prefs/graph.h"
#include "space/preference_space.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"
#include "workload/query_gen.h"

namespace {

cqp::space::PreferenceSpaceResult MakeSpace(size_t k) {
  cqp::Rng rng(99);
  cqp::space::PreferenceSpaceResult result;
  result.base.cost_ms = 100;
  result.base.size = 10000;
  std::vector<double> dois;
  for (size_t i = 0; i < k; ++i) dois.push_back(rng.UniformDouble(0.05, 0.95));
  std::sort(dois.begin(), dois.end(), std::greater<double>());
  for (size_t i = 0; i < k; ++i) {
    cqp::estimation::ScoredPreference p;
    p.doi = dois[i];
    p.cost_ms = 100 + rng.UniformDouble(5, 300);
    p.selectivity = rng.UniformDouble(0.02, 0.9);
    p.size = result.base.size * p.selectivity;
    result.prefs.push_back(p);
    result.D.push_back(static_cast<int32_t>(i));
  }
  result.C = result.D;
  std::sort(result.C.begin(), result.C.end(), [&](int32_t a, int32_t b) {
    return result.prefs[a].cost_ms > result.prefs[b].cost_ms;
  });
  result.S = result.D;
  std::sort(result.S.begin(), result.S.end(), [&](int32_t a, int32_t b) {
    return result.prefs[a].size < result.prefs[b].size;
  });
  return result;
}

cqp::IndexSet MakeState(size_t k, double density, uint64_t seed) {
  cqp::Rng rng(seed);
  std::vector<int32_t> members;
  for (int32_t i = 0; i < static_cast<int32_t>(k); ++i) {
    if (rng.Bernoulli(density)) members.push_back(i);
  }
  if (members.empty()) members.push_back(0);
  return cqp::IndexSet::FromUnsorted(std::move(members));
}

void BM_HorizontalTransition(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  cqp::IndexSet s = MakeState(k, 0.3, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cqp::cqp::Horizontal(s, k));
  }
}
BENCHMARK(BM_HorizontalTransition)->Arg(16)->Arg(32)->Arg(64);

void BM_VerticalNeighbors(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  cqp::IndexSet s = MakeState(k, 0.3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cqp::cqp::VerticalNeighbors(s, k));
  }
}
BENCHMARK(BM_VerticalNeighbors)->Arg(16)->Arg(32)->Arg(64);

void BM_EvaluateFromScratch(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  auto space = MakeSpace(k);
  auto evaluator = space.MakeEvaluator();
  cqp::IndexSet s = MakeState(k, 0.5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(s));
  }
}
BENCHMARK(BM_EvaluateFromScratch)->Arg(16)->Arg(32)->Arg(64);

void BM_EvaluateIncremental(benchmark::State& state) {
  // The ablation DESIGN.md promises: incremental O(1) extension vs the
  // O(|state|) from-scratch evaluation above.
  size_t k = static_cast<size_t>(state.range(0));
  auto space = MakeSpace(k);
  auto evaluator = space.MakeEvaluator();
  cqp::IndexSet s = MakeState(k, 0.5, 4);
  cqp::estimation::StateParams params = evaluator.Evaluate(s);
  int32_t extension = -1;
  for (int32_t i = 0; i < static_cast<int32_t>(k); ++i) {
    if (!s.Contains(i)) {
      extension = i;
      break;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.ExtendWith(params, extension));
  }
}
BENCHMARK(BM_EvaluateIncremental)->Arg(16)->Arg(32)->Arg(64);

void BM_GreedyMaxDoiBelow(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  auto space = MakeSpace(k);
  auto evaluator = space.MakeEvaluator();
  auto problem = cqp::cqp::ProblemSpec::Problem2(1e9);
  cqp::cqp::SpaceView view = cqp::cqp::SpaceView::ForKind(
      &evaluator, &problem, cqp::cqp::SpaceKind::kCost, space);
  cqp::IndexSet boundary = MakeState(k, 0.4, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cqp::cqp::GreedyMaxDoiBelow(view, boundary));
  }
}
BENCHMARK(BM_GreedyMaxDoiBelow)->Arg(16)->Arg(32)->Arg(64);

void BM_PreferenceSpaceExtraction(benchmark::State& state) {
  cqp::workload::MovieDbConfig config;
  config.n_movies = 2000;
  config.n_directors = 200;
  config.n_actors = 400;
  static cqp::storage::Database* db =
      new cqp::storage::Database(*cqp::workload::BuildMovieDatabase(config));
  static cqp::prefs::PersonalizationGraph* graph =
      new cqp::prefs::PersonalizationGraph(
          *cqp::prefs::PersonalizationGraph::Build(
              *cqp::workload::GenerateProfile(
                  cqp::workload::ProfileGenConfig{}, config),
              *db));
  cqp::estimation::ParameterEstimator estimator(db);
  auto query = *cqp::sql::ParseSelect("SELECT title FROM MOVIE");
  auto problem = cqp::cqp::ProblemSpec::Problem2(1e9);
  cqp::space::PreferenceSpaceOptions options;
  options.max_k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = cqp::space::ExtractPreferenceSpace(query, *graph, estimator,
                                                     problem, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PreferenceSpaceExtraction)->Arg(10)->Arg(20)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
