// Table 1 coverage: solves all six CQP problems on the same instances and
// reports winners, parameters and solve times. Also serves as an ablation
// of the exact solver vs the heuristic for each objective.

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace cqp::bench;  // NOLINT
using cqp::cqp::ProblemSpec;

struct Row {
  const char* label;
  ProblemSpec problem;
  const char* exact;
  const char* heuristic;
};

int Run() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("Table 1 — all six CQP problems on identical instances\n\n");
  auto config = DefaultConfig();
  config.n_profiles = 3;
  config.query.n_queries = 3;
  auto ctx_or = cqp::workload::ExperimentContext::Create(config);
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "%s\n", ctx_or.status().ToString().c_str());
    return 1;
  }
  auto ctx = *std::move(ctx_or);
  auto instances_or = cqp::workload::BuildInstances(ctx, 12);
  if (!instances_or.ok()) {
    std::fprintf(stderr, "%s\n", instances_or.status().ToString().c_str());
    return 1;
  }
  auto instances = *std::move(instances_or);

  // Per-instance bounds scaled from the instance itself so every problem is
  // non-trivial: cost bound at 40% of Supreme, size window below size(Q).
  auto problems_for = [&](int number) {
    std::vector<ProblemSpec> problems;
    for (const auto& inst : instances) {
      double cmax = 0.4 * inst.supreme_cost_ms;
      double smax = 0.5 * inst.space.base.size;
      double smin = 1.0;
      double dmin = 0.85;
      switch (number) {
        case 1:
          problems.push_back(ProblemSpec::Problem1(smin, smax));
          break;
        case 2:
          problems.push_back(ProblemSpec::Problem2(cmax));
          break;
        case 3:
          problems.push_back(ProblemSpec::Problem3(cmax, smin, smax));
          break;
        case 4:
          problems.push_back(ProblemSpec::Problem4(dmin));
          break;
        case 5:
          problems.push_back(ProblemSpec::Problem5(dmin, smin, smax));
          break;
        default:
          problems.push_back(ProblemSpec::Problem6(smin, smax));
          break;
      }
    }
    return problems;
  };

  const Row rows[] = {
      {"P1 MAX doi | size in [1, 0.5*size(Q)]", ProblemSpec(), "C-Boundaries",
       "D-SingleMaxDoi"},
      {"P2 MAX doi | cost <= 0.4*Supreme", ProblemSpec(), "C-Boundaries",
       "C-MaxBounds"},
      {"P3 MAX doi | cost & size bounds", ProblemSpec(), "C-Boundaries",
       "D-HeurDoi"},
      {"P4 MIN cost | doi >= 0.85", ProblemSpec(), "MinCost-BB",
       "MinCost-Greedy"},
      {"P5 MIN cost | doi >= 0.85 & size", ProblemSpec(), "MinCost-BB",
       "MinCost-Greedy"},
      {"P6 MIN cost | size in [1, 0.5*size(Q)]", ProblemSpec(), "MinCost-BB",
       "MinCost-Greedy"},
  };

  std::printf("%-40s %-15s %9s %10s %10s %8s %7s\n", "problem", "algorithm",
              "doi", "cost[ms]", "size", "time[ms]", "infeas");
  for (int p = 1; p <= 6; ++p) {
    auto problems = problems_for(p);
    const Row& row = rows[p - 1];
    for (const char* algorithm : {row.exact, row.heuristic}) {
      double doi = 0, cost = 0, size = 0, wall = 0;
      size_t feasible = 0, infeasible = 0;
      for (size_t i = 0; i < instances.size(); ++i) {
        const cqp::cqp::Algorithm* algo = *cqp::cqp::GetAlgorithm(algorithm);
        cqp::cqp::SearchContext search_ctx;
        auto sol = algo->Solve(instances[i].space, problems[i], search_ctx);
        if (!sol.ok()) continue;
        wall += search_ctx.metrics.wall_ms;
        if (!sol->feasible) {
          ++infeasible;
          continue;
        }
        doi += sol->params.doi;
        cost += sol->params.cost_ms;
        size += sol->params.size;
        ++feasible;
      }
      double fn = feasible > 0 ? static_cast<double>(feasible) : 1.0;
      std::printf("%-40s %-15s %9.4f %10.1f %10.1f %8.2f %5zu/%zu\n",
                  row.label, algorithm, doi / fn, cost / fn, size / fn,
                  wall / static_cast<double>(instances.size()), infeasible,
                  instances.size());
    }
  }
  std::printf(
      "\nExpected shape: heuristics match the exact doi closely on P1-P3;\n"
      "MinCost-Greedy is never cheaper than MinCost-BB on P4-P6.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
