// Measures what the semantic rewrite layer (docs/rewriting.md) buys on
// constraint-rich instances, one BENCH_rewrite.json record:
//
//   * states_after_prune / k_reduction_pct — admitted preference-space size
//     with the constraint pruning on, vs the same extraction with the
//     rewrite layer disabled. The driver makes every profile constraint-rich
//     by appending out-of-domain "vacuous" preferences (high doi, provably
//     empty under the mined domain constraints) to the generated profiles —
//     the adversarial shape the pre-search pruning exists for.
//   * cost_qx_ms / cost_reduction_pct — estimated execution cost of the
//     emitted rewriting (sum of per-branch EstimateBase costs; the §4.2
//     rewriting executes every UNION ALL branch). Apples to apples: the
//     SAME chosen solution is emitted twice — unoptimized vs through the
//     semantic optimizer — exactly the pairing the metamorphic equivalence
//     harness executes for row-identity (src/testing/rewrite_check.cc).
//   * conjuncts_dropped / branches_eliminated / prefs_pruned — optimizer
//     activity counters across the sweep.
//
// Cells: one per cost budget ("generous" = cmax far above Supreme Cost, so
// the search integrates everything it can; "tight" = cmax at 2x the base
// query's cost). The >= 20% reduction targets are judged on the generous
// cell, where the unoptimized emission demonstrably carries vacuous and
// tautological branches.
//
// Usage: rewrite_bench [--smoke] [--json PATH]
//        --smoke    tiny database and sweep (CI)
//        --json P   write the record to P (default BENCH_rewrite.json)

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "construct/personalizer.h"
#include "estimation/estimate.h"
#include "prefs/graph.h"
#include "prefs/profile.h"
#include "server/json.h"
#include "storage/constraints.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"
#include "workload/query_gen.h"

namespace cqp::bench {
namespace {

using server::JsonValue;

/// Makes a generated profile constraint-rich, the adversarial shape the
/// rewrite layer exists for. Two families of high-doi preferences are
/// appended, each exercising a different half of the layer:
///   * vacuous — out-of-domain selections, provably empty under the mined
///     constraints. The unpruned search integrates them (they are cheap and
///     high-doi), poisoning the intersection semantics; the pre-search
///     pruning removes them from the admitted space (K reduction).
///   * tautological — selections implied by the mined domains, satisfied by
///     every row. Their branches survive the search but collapse to the
///     bare base query under redundancy elimination and are then subsumed
///     into any real branch (cost(Qx) reduction).
std::string AugmentProfile(const std::string& profile_text,
                           const catalog::ConstraintSet& constraints) {
  std::string out = profile_text;
  double doi = 0.93;
  auto next_doi = [&] { return doi -= 0.01; };
  auto augment = [&](const char* attribute, bool tautological) {
    auto domains = constraints.DomainsFor("MOVIE", attribute);
    if (domains.empty()) return;
    const catalog::DomainConstraint& d = *domains[0];
    long long lo = d.min.has_value() ? d.min->AsInt() : 0;
    long long hi = d.max.has_value() ? d.max->AsInt() : 0;
    if (tautological) {
      if (d.min.has_value()) {
        out += StrFormat("\ndoi(MOVIE.%s >= %lld) = %.2f", attribute, lo - 5,
                         next_doi());
      }
      if (d.max.has_value()) {
        out += StrFormat("\ndoi(MOVIE.%s <= %lld) = %.2f", attribute, hi + 5,
                         next_doi());
      }
    } else {
      for (long long offset : {37, 81}) {
        if (d.max.has_value()) {
          out += StrFormat("\ndoi(MOVIE.%s >= %lld) = %.2f", attribute,
                           hi + offset, next_doi());
        }
        if (d.min.has_value()) {
          out += StrFormat("\ndoi(MOVIE.%s <= %lld) = %.2f", attribute,
                           lo - offset, next_doi());
        }
      }
    }
  };
  augment("year", /*tautological=*/false);
  augment("duration", /*tautological=*/false);
  augment("mid", /*tautological=*/false);
  augment("did", /*tautological=*/false);
  augment("year", /*tautological=*/true);
  augment("duration", /*tautological=*/true);
  out += "\n";
  return out;
}

/// Estimated cost/size of executing the emitted rewriting: every UNION ALL
/// branch runs, or the base query when no preference was integrated.
struct QxEstimate {
  double cost_ms = 0.0;
  double size = 0.0;
};

QxEstimate EstimateQx(const estimation::ParameterEstimator& estimator,
                      const construct::PersonalizedQuery& qx) {
  QxEstimate total;
  if (qx.L() == 0) {
    auto base = estimator.EstimateBase(qx.base);
    if (base.ok()) {
      total.cost_ms = base->cost_ms;
      total.size = base->size;
    }
    return total;
  }
  for (const sql::SelectQuery& branch : qx.subqueries) {
    auto est = estimator.EstimateBase(branch);
    if (est.ok()) {
      total.cost_ms += est->cost_ms;
      total.size += est->size;
    }
  }
  return total;
}

struct CellAccum {
  size_t requests = 0;
  double k_baseline = 0.0;
  double k_pruned = 0.0;
  double cost_baseline_ms = 0.0;
  double cost_qx_ms = 0.0;
  double size_baseline = 0.0;
  double size_qx = 0.0;
  uint64_t conjuncts_dropped = 0;
  uint64_t branches_eliminated = 0;
  uint64_t prefs_pruned = 0;
};

double ReductionPct(double baseline, double value) {
  if (baseline <= 0.0) return 0.0;
  return 100.0 * (baseline - value) / baseline;
}

JsonValue CellToJson(const std::string& budget, const CellAccum& cell) {
  double n = cell.requests > 0 ? static_cast<double>(cell.requests) : 1.0;
  JsonValue out = JsonValue::Object();
  out.Set("budget", JsonValue::Str(budget));
  out.Set("requests", JsonValue::Number(static_cast<double>(cell.requests)));
  out.Set("k_baseline", JsonValue::Number(cell.k_baseline / n));
  out.Set("states_after_prune", JsonValue::Number(cell.k_pruned / n));
  out.Set("k_reduction_pct",
          JsonValue::Number(ReductionPct(cell.k_baseline, cell.k_pruned)));
  out.Set("cost_baseline_ms", JsonValue::Number(cell.cost_baseline_ms / n));
  out.Set("cost_qx_ms", JsonValue::Number(cell.cost_qx_ms / n));
  out.Set("cost_reduction_pct",
          JsonValue::Number(
              ReductionPct(cell.cost_baseline_ms, cell.cost_qx_ms)));
  out.Set("size_baseline", JsonValue::Number(cell.size_baseline / n));
  out.Set("size_qx", JsonValue::Number(cell.size_qx / n));
  out.Set("size_reduction_pct",
          JsonValue::Number(ReductionPct(cell.size_baseline, cell.size_qx)));
  out.Set("conjuncts_dropped",
          JsonValue::Number(static_cast<double>(cell.conjuncts_dropped)));
  out.Set("branches_eliminated",
          JsonValue::Number(static_cast<double>(cell.branches_eliminated)));
  out.Set("prefs_pruned",
          JsonValue::Number(static_cast<double>(cell.prefs_pruned)));
  return out;
}

int Run(bool smoke, const std::string& json_path) {
  workload::MovieDbConfig movie_config;
  movie_config.seed = 11;
  movie_config.n_movies = smoke ? 400 : 2000;
  movie_config.n_directors = smoke ? 40 : 200;
  movie_config.n_actors = smoke ? 80 : 400;
  auto db = workload::BuildMovieDatabase(movie_config);
  if (!db.ok()) {
    std::fprintf(stderr, "movie db: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto derived = storage::DeriveConstraints(*db);
  if (!derived.ok()) {
    std::fprintf(stderr, "derive: %s\n", derived.status().ToString().c_str());
    return 1;
  }
  Status checked = storage::CheckConstraints(*db, *derived);
  if (!checked.ok()) {
    std::fprintf(stderr, "check: %s\n", checked.ToString().c_str());
    return 1;
  }
  db->SetConstraints(*derived);

  const size_t n_profiles = smoke ? 2 : 5;
  std::vector<std::shared_ptr<prefs::PersonalizationGraph>> graphs;
  for (size_t u = 0; u < n_profiles; ++u) {
    workload::ProfileGenConfig profile_config;
    profile_config.seed = 500 + u;
    auto profile = workload::GenerateProfile(profile_config, movie_config);
    if (!profile.ok()) {
      std::fprintf(stderr, "profile: %s\n",
                   profile.status().ToString().c_str());
      return 1;
    }
    auto rich = prefs::Profile::Parse(
        AugmentProfile(profile->ToText(), db->constraints()));
    if (!rich.ok()) {
      std::fprintf(stderr, "augment: %s\n", rich.status().ToString().c_str());
      return 1;
    }
    auto graph = prefs::PersonalizationGraph::Build(*std::move(rich), *db);
    if (!graph.ok()) {
      std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
      return 1;
    }
    graphs.push_back(std::make_shared<prefs::PersonalizationGraph>(
        *std::move(graph)));
  }

  workload::QueryGenConfig query_config;
  query_config.seed = 900;
  query_config.n_queries = smoke ? 3 : 6;
  auto queries = workload::GenerateQueries(query_config, movie_config);
  if (!queries.ok()) {
    std::fprintf(stderr, "queries: %s\n",
                 queries.status().ToString().c_str());
    return 1;
  }

  construct::Personalizer personalizer(&*db, graphs[0].get());
  estimation::ParameterEstimator estimator(&*db);

  struct Budget {
    const char* name;
    bool generous;
  };
  const std::vector<Budget> budgets = {{"generous", true}, {"tight", false}};

  JsonValue record = JsonValue::Object();
  record.Set("bench", JsonValue::Str("rewrite"));
  record.Set("smoke", JsonValue::Bool(smoke));
  JsonValue cells = JsonValue::Array();
  bool k_target_met = false;
  bool cost_target_met = false;

  for (const Budget& budget : budgets) {
    CellAccum cell;
    for (size_t u = 0; u < graphs.size(); ++u) {
      for (size_t q = 0; q < queries->size(); ++q) {
        construct::PersonalizeRequest request;
        request.sql = (*queries)[q].ToSql();
        // Heuristic search: the bench measures the space and the emitted
        // query, not solver quality, and the heuristic stays fast on the
        // deliberately uncapped candidate space.
        request.algorithm = "D-HeurDoi";
        request.space_options.max_k = 256;
        request.graph = graphs[u].get();

        // The tight budget sits at the base query's own cost, forcing the
        // search to be selective; the generous one admits everything.
        auto base_est = estimator.EstimateBase((*queries)[q]);
        if (!base_est.ok()) continue;
        request.problem = cqp::ProblemSpec::Problem2(
            budget.generous ? 1e9 : 2.0 * base_est->cost_ms);

        construct::PersonalizeRequest baseline_request = request;
        baseline_request.disable_rewrite = true;
        auto baseline = personalizer.Personalize(baseline_request);
        auto rewritten = personalizer.Personalize(request);
        if (!baseline.ok() || !rewritten.ok()) {
          std::fprintf(stderr, "personalize u%zu/q%zu: %s\n", u, q,
                       (baseline.ok() ? rewritten.status() : baseline.status())
                           .ToString()
                           .c_str());
          continue;
        }

        // Re-emit the BASELINE's chosen solution through the optimizer:
        // the cost delta isolates what the IR passes remove from one and
        // the same personalized query.
        auto reopt = construct::BuildPersonalizedQuery(
            *db, baseline->space->query, baseline->space->prefs,
            baseline->solution.feasible ? baseline->solution.chosen
                                        : IndexSet(),
            request.build_options);
        if (!reopt.ok()) {
          std::fprintf(stderr, "re-emit u%zu/q%zu: %s\n", u, q,
                       reopt.status().ToString().c_str());
          continue;
        }

        ++cell.requests;
        cell.k_baseline += static_cast<double>(baseline->space->K());
        cell.k_pruned += static_cast<double>(rewritten->space->K());
        QxEstimate base_qx = EstimateQx(estimator, baseline->personalized);
        QxEstimate rewrite_qx = EstimateQx(estimator, *reopt);
        cell.cost_baseline_ms += base_qx.cost_ms;
        cell.cost_qx_ms += rewrite_qx.cost_ms;
        cell.size_baseline += base_qx.size;
        cell.size_qx += rewrite_qx.size;
        cell.conjuncts_dropped += reopt->rewrite.conjuncts_dropped;
        cell.branches_eliminated += reopt->rewrite.branches_eliminated();
        cell.prefs_pruned += rewritten->space->constraint_pruned;
      }
    }
    double k_cut = ReductionPct(cell.k_baseline, cell.k_pruned);
    double cost_cut = ReductionPct(cell.cost_baseline_ms, cell.cost_qx_ms);
    if (budget.generous) {
      k_target_met = k_cut >= 20.0;
      cost_target_met = cost_cut >= 20.0;
    }
    std::printf(
        "%-9s %3zu requests  K %5.1f -> %5.1f (-%4.1f%%)  "
        "cost(Qx) %9.1f -> %9.1f ms (-%4.1f%%)  "
        "%llu conjuncts, %llu branches, %llu prefs pruned\n",
        budget.name, cell.requests, cell.k_baseline / cell.requests,
        cell.k_pruned / cell.requests, k_cut,
        cell.cost_baseline_ms / cell.requests,
        cell.cost_qx_ms / cell.requests, cost_cut,
        static_cast<unsigned long long>(cell.conjuncts_dropped),
        static_cast<unsigned long long>(cell.branches_eliminated),
        static_cast<unsigned long long>(cell.prefs_pruned));
    cells.Append(CellToJson(budget.name, cell));
  }

  record.Set("cells", std::move(cells));
  record.Set("k_reduction_target_met", JsonValue::Bool(k_target_met));
  record.Set("cost_reduction_target_met", JsonValue::Bool(cost_target_met));
  if (!k_target_met || !cost_target_met) {
    std::fprintf(stderr,
                 "WARNING: generous cell under the 20%% reduction target "
                 "(K met: %d, cost met: %d)\n",
                 k_target_met, cost_target_met);
  }

  std::string json = record.Dump();
  std::printf("%s\n", json.c_str());
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  return 0;
}

}  // namespace
}  // namespace cqp::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_rewrite.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return cqp::bench::Run(smoke, json_path);
}
