// Reproduces Figure 15 of the paper: validation of the simplified query
// cost model. For each K, the personalized query integrating ALL K
// preferences is (1) estimated via Formula 6 / §7.1 and (2) actually
// executed on the engine, whose simulated clock charges b = 1 ms per block
// read plus a small CPU term per tuple.

#include <cstdio>

#include "bench_util.h"
#include "construct/query_builder.h"
#include "exec/executor.h"
#include "exec/personalized_exec.h"

namespace {

using namespace cqp::bench;  // NOLINT

int Run() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf(
      "Figure 15 — personalized query cost prediction\n"
      "(estimated Formula-6 cost vs simulated execution time, full-K "
      "query)\n\n");
  auto config = DefaultConfig();
  config.n_profiles = 3;
  config.query.n_queries = 3;
  auto ctx_or = cqp::workload::ExperimentContext::Create(config);
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "%s\n", ctx_or.status().ToString().c_str());
    return 1;
  }
  auto ctx = *std::move(ctx_or);
  cqp::exec::Executor executor(&ctx.db());

  std::printf("%4s %18s %18s %10s\n", "K", "estimated [ms]", "measured [ms]",
              "ratio");
  for (int k : {10, 20, 30, 40}) {
    auto instances_or =
        cqp::workload::BuildInstances(ctx, static_cast<size_t>(k));
    if (!instances_or.ok()) {
      std::fprintf(stderr, "K=%d: %s\n", k,
                   instances_or.status().ToString().c_str());
      continue;
    }
    auto instances = *std::move(instances_or);

    double est_sum = 0.0, real_sum = 0.0;
    size_t runs = 0;
    for (const auto& inst : instances) {
      // The "supreme" personalized query: all K preferences.
      std::vector<int32_t> all;
      for (size_t i = 0; i < inst.space.K(); ++i) {
        all.push_back(static_cast<int32_t>(i));
      }
      auto evaluator = inst.space.MakeEvaluator();
      double estimated = evaluator.SupremeState().cost_ms;

      auto pq_or = cqp::construct::BuildPersonalizedQuery(
          ctx.db(), inst.space.query, inst.space.prefs,
          cqp::IndexSet::FromUnsorted(all));
      if (!pq_or.ok()) {
        std::fprintf(stderr, "build: %s\n",
                     pq_or.status().ToString().c_str());
        continue;
      }
      cqp::exec::ExecStats stats;
      auto rows = cqp::exec::ExecutePersonalized(
          executor, pq_or->subqueries, pq_or->dois,
          cqp::exec::CombineMode::kIntersection, &stats);
      if (!rows.ok()) {
        std::fprintf(stderr, "exec: %s\n", rows.status().ToString().c_str());
        continue;
      }
      est_sum += estimated;
      real_sum += stats.SimulatedMillis(cqp::exec::CostModelParams());
      ++runs;
    }
    if (runs == 0) continue;
    double est = est_sum / static_cast<double>(runs);
    double real = real_sum / static_cast<double>(runs);
    std::printf("%4d %18.1f %18.1f %10.3f\n", k, est, real, est / real);
  }
  std::printf(
      "\nThe estimate charges block I/O only; the measured time adds the\n"
      "per-tuple CPU term, so ratios slightly below 1.0 reproduce the\n"
      "paper's 'estimated close to real' claim.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
