// Durability bench for the crash-safe profile store (docs/durability.md):
// what does journal-before-apply + fsync-on-commit cost, what does group
// commit buy back, and how fast is recovery as the journal grows?
//
// Three cell families, one BENCH_durability.json record:
//
//   mode=inline            sequential Puts, one fsync each: put_avg_ms,
//                          put_p50_ms, puts_per_sec, fsync_per_put (~1).
//   mode=group, threads=T  T closed-loop writer threads sharing the
//                          group-commit window: puts_per_sec and
//                          fsync_per_put (<< 1 when batching works).
//   mode=recovery          a journal of N records is written, the store
//                          closed, and reopen is timed: recovery_ms and
//                          replayed records vs journal length.
//
// All cells run against a real directory under /tmp (posix fsync — the
// numbers include the device), with compaction disabled so journal length
// is the controlled variable.
//
// Flags: --smoke    reduced grid (fewer ops, threads {1,4}, one recovery N)
//        --json P   write the record to P (default BENCH_durability.json)

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "server/durable_profile_store.h"
#include "server/json.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"

namespace {

using namespace cqp;  // NOLINT
using server::DurabilityOptions;
using server::DurableProfileStore;

/// Compaction would truncate the journal mid-cell; push it out of reach so
/// journal length stays the controlled variable.
constexpr uint64_t kNoCompaction = 1ull << 40;

struct PoolEntry {
  prefs::Profile profile;
  std::string text;
};

StatusOr<std::unique_ptr<DurableProfileStore>> OpenStore(
    const storage::Database& db, const std::string& dir,
    double group_commit_ms) {
  DurabilityOptions options;
  options.dir = dir;
  options.group_commit_interval_ms = group_commit_ms;
  options.compact_threshold_bytes = kNoCompaction;
  return DurableProfileStore::Open(&db, options);
}

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  idx = std::min(idx, sorted_ms.size() - 1);
  return sorted_ms[idx];
}

server::JsonValue MakeCell(const char* mode) {
  server::JsonValue obj = server::JsonValue::Object();
  obj.Set("mode", server::JsonValue::Str(mode));
  return obj;
}

/// mode=inline: one writer, one fsync per Put — the strongest-semantics
/// baseline every other cell is measured against.
server::JsonValue RunInlineCell(const storage::Database& db,
                                const std::vector<PoolEntry>& pool,
                                const std::string& dir, size_t n_ops) {
  using server::JsonValue;
  JsonValue cell = MakeCell("inline");
  auto store = OpenStore(db, dir, /*group_commit_ms=*/0.0);
  if (!store.ok()) {
    std::fprintf(stderr, "inline open: %s\n",
                 store.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<double> latencies_ms;
  latencies_ms.reserve(n_ops);
  Stopwatch wall;
  for (size_t op = 0; op < n_ops; ++op) {
    const PoolEntry& entry = pool[op % pool.size()];
    Stopwatch one;
    Status put = (*store)->Put("u" + std::to_string(op % 8), entry.profile);
    latencies_ms.push_back(one.ElapsedMillis());
    if (!put.ok()) {
      std::fprintf(stderr, "inline put: %s\n", put.ToString().c_str());
      std::exit(1);
    }
  }
  const double wall_ms = wall.ElapsedMillis();
  auto stats = (*store)->durability_stats();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  double sum = 0.0;
  for (double ms : latencies_ms) sum += ms;

  cell.Set("ops", JsonValue::Number(static_cast<double>(n_ops)));
  cell.Set("puts_per_sec",
           JsonValue::Number(1000.0 * static_cast<double>(n_ops) / wall_ms));
  cell.Set("put_avg_ms",
           JsonValue::Number(sum / static_cast<double>(n_ops)));
  cell.Set("put_p50_ms", JsonValue::Number(Percentile(latencies_ms, 0.5)));
  cell.Set("put_p99_ms", JsonValue::Number(Percentile(latencies_ms, 0.99)));
  cell.Set("fsync_per_put",
           JsonValue::Number(static_cast<double>(stats->fsyncs) /
                             static_cast<double>(n_ops)));
  cell.Set("journal_bytes",
           JsonValue::Number(static_cast<double>(stats->journal_bytes)));
  return cell;
}

/// mode=group: `threads` closed-loop writers share the group-commit
/// window; each Put still blocks until its record is fsynced.
server::JsonValue RunGroupCell(const storage::Database& db,
                               const std::vector<PoolEntry>& pool,
                               const std::string& dir, size_t threads,
                               size_t ops_per_thread,
                               double group_commit_ms) {
  using server::JsonValue;
  JsonValue cell = MakeCell("group");
  auto store = OpenStore(db, dir, group_commit_ms);
  if (!store.ok()) {
    std::fprintf(stderr, "group open: %s\n",
                 store.status().ToString().c_str());
    std::exit(1);
  }
  std::atomic<size_t> errors{0};
  std::vector<std::thread> writers;
  Stopwatch wall;
  for (size_t t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t op = 0; op < ops_per_thread; ++op) {
        const PoolEntry& entry = pool[(t + op) % pool.size()];
        const std::string id =
            "u" + std::to_string(t) + "-" + std::to_string(op % 4);
        if (!(*store)->Put(id, entry.profile).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  const double wall_ms = wall.ElapsedMillis();
  const size_t n_ops = threads * ops_per_thread;
  auto stats = (*store)->durability_stats();
  if (errors.load() != 0) {
    std::fprintf(stderr, "group cell: %zu failed puts\n", errors.load());
    std::exit(1);
  }

  cell.Set("threads", JsonValue::Number(static_cast<double>(threads)));
  cell.Set("group_commit_ms", JsonValue::Number(group_commit_ms));
  cell.Set("ops", JsonValue::Number(static_cast<double>(n_ops)));
  cell.Set("puts_per_sec",
           JsonValue::Number(1000.0 * static_cast<double>(n_ops) / wall_ms));
  cell.Set("fsync_per_put",
           JsonValue::Number(static_cast<double>(stats->fsyncs) /
                             static_cast<double>(n_ops)));
  cell.Set("group_commits",
           JsonValue::Number(static_cast<double>(stats->group_commits)));
  return cell;
}

/// mode=recovery: journal of `n_records` mutations, close, timed reopen.
server::JsonValue RunRecoveryCell(const storage::Database& db,
                                  const std::vector<PoolEntry>& pool,
                                  const std::string& dir, size_t n_records) {
  using server::JsonValue;
  JsonValue cell = MakeCell("recovery");
  uint64_t journal_bytes = 0;
  {
    // Group mode with a tiny window keeps journal construction fast; the
    // store is closed cleanly (destructor flushes) before the timed open.
    auto store = OpenStore(db, dir, /*group_commit_ms=*/0.05);
    if (!store.ok()) {
      std::fprintf(stderr, "recovery setup open: %s\n",
                   store.status().ToString().c_str());
      std::exit(1);
    }
    for (size_t op = 0; op < n_records; ++op) {
      const PoolEntry& entry = pool[op % pool.size()];
      Status put =
          (*store)->Put("u" + std::to_string(op % 16), entry.profile);
      if (!put.ok()) {
        std::fprintf(stderr, "recovery setup put: %s\n",
                     put.ToString().c_str());
        std::exit(1);
      }
    }
    journal_bytes = (*store)->durability_stats()->journal_bytes;
  }

  auto reopened = OpenStore(db, dir, /*group_commit_ms=*/0.0);
  if (!reopened.ok()) {
    std::fprintf(stderr, "recovery reopen: %s\n",
                 reopened.status().ToString().c_str());
    std::exit(1);
  }
  const DurableProfileStore::RecoveryInfo& info = (*reopened)->recovery();
  if (info.replayed_records != n_records || info.torn_tail) {
    std::fprintf(stderr,
                 "recovery cell: replayed %zu of %zu records, torn=%d\n",
                 info.replayed_records, n_records, info.torn_tail ? 1 : 0);
    std::exit(1);
  }

  cell.Set("records", JsonValue::Number(static_cast<double>(n_records)));
  cell.Set("journal_bytes",
           JsonValue::Number(static_cast<double>(journal_bytes)));
  cell.Set("recovery_ms", JsonValue::Number(info.recovery_ms));
  cell.Set("records_per_sec",
           JsonValue::Number(info.recovery_ms > 0.0
                                 ? 1000.0 * static_cast<double>(n_records) /
                                       info.recovery_ms
                                 : 0.0));
  return cell;
}

int Run(bool smoke, const std::string& json_path) {
  workload::MovieDbConfig movie_config;
  movie_config.n_movies = 150;
  movie_config.n_directors = 15;
  movie_config.n_actors = 30;
  auto db = workload::BuildMovieDatabase(movie_config);
  if (!db.ok()) {
    std::fprintf(stderr, "movie db: %s\n", db.status().ToString().c_str());
    return 1;
  }

  std::vector<PoolEntry> pool;
  for (uint64_t i = 0; i < 8; ++i) {
    workload::ProfileGenConfig config;
    config.seed = 977 + i;
    config.n_genre_prefs = 2 + static_cast<int>(i % 3);
    config.n_director_prefs = 2;
    config.n_actor_prefs = 2;
    config.n_year_prefs = 1;
    config.n_duration_prefs = 1;
    auto profile = workload::GenerateProfile(config, movie_config);
    if (!profile.ok()) {
      std::fprintf(stderr, "profile gen: %s\n",
                   profile.status().ToString().c_str());
      return 1;
    }
    std::string text = profile->ToText();
    pool.push_back(PoolEntry{*std::move(profile), std::move(text)});
  }

  char dir_template[] = "/tmp/cqp_durability_bench.XXXXXX";
  char* base = ::mkdtemp(dir_template);
  if (base == nullptr) {
    std::fprintf(stderr, "mkdtemp: %s\n", std::strerror(errno));
    return 1;
  }
  const std::string base_dir = base;

  const size_t inline_ops = smoke ? 200 : 1000;
  const std::vector<size_t> group_threads =
      smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 8};
  const size_t group_ops_per_thread = smoke ? 100 : 400;
  const std::vector<size_t> recovery_records =
      smoke ? std::vector<size_t>{1000}
            : std::vector<size_t>{1000, 5000, 20000};

  using server::JsonValue;
  JsonValue record = JsonValue::Object();
  record.Set("bench", JsonValue::Str("durability"));
  JsonValue cells = JsonValue::Array();
  int next_dir = 0;
  auto fresh_dir = [&] {
    return base_dir + "/cell" + std::to_string(next_dir++);
  };

  cells.Append(RunInlineCell(*db, pool, fresh_dir(), inline_ops));
  for (size_t threads : group_threads) {
    cells.Append(RunGroupCell(*db, pool, fresh_dir(), threads,
                              group_ops_per_thread,
                              /*group_commit_ms=*/0.5));
  }
  for (size_t records : recovery_records) {
    cells.Append(RunRecoveryCell(*db, pool, fresh_dir(), records));
  }
  record.Set("cells", std::move(cells));

  std::string json = record.Dump();
  std::printf("%s\n", json.c_str());
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);

  std::error_code ec;
  std::filesystem::remove_all(base_dir, ec);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_durability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return Run(smoke, json_path);
}
