#ifndef CQP_BENCH_BENCH_UTIL_H_
#define CQP_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "cqp/algorithm.h"
#include "workload/experiment.h"

namespace cqp::bench {

/// Evaluation setting shared by the figure benches: scaled so that the
/// paper's default cmax = 400 ms sits in the interesting 20-50% band of the
/// Supreme Cost at K = 20 (see EXPERIMENTS.md).
inline workload::ExperimentConfig DefaultConfig() {
  workload::ExperimentConfig config;
  config.db.n_movies = 5000;
  config.db.n_directors = 500;
  config.db.n_actors = 1000;
  config.n_profiles = 5;
  config.query.n_queries = 4;
  return config;
}

/// Per-run resource caps applied to every bench solve. A run that hits a
/// cap is counted and flagged (the figure marks the cell with '*'); the
/// paper's slowest configurations (doi-space algorithms at K = 40) would
/// otherwise take hours and tens of GB here, as they did in 2005.
inline constexpr uint64_t kStateLimitPerRun = 2'000'000;
inline constexpr size_t kMemoryLimitPerRun = 512ull << 20;  // 512 MiB

/// One measured cell of a figure: an algorithm at one sweep point.
struct Cell {
  double mean_wall_ms = 0.0;
  double mean_peak_kbytes = 0.0;
  double mean_states = 0.0;
  double mean_quality_diff = 0.0;
  size_t runs = 0;
  size_t planned = 0;
  size_t truncated_runs = 0;
  /// Runs that had a (provably optimal) reference doi to compare against.
  size_t scored_runs = 0;
  bool truncated() const { return runs < planned || truncated_runs > 0; }
};

/// Runs `algorithm` over all instances with per-instance problems, stopping
/// early when `budget_seconds` of cumulative solve time is exceeded (the
/// cell is then marked truncated — printed explicitly, never silent).
/// `reference_dois[i] < 0` means "no reference for instance i".
inline Cell RunCell(const std::string& algorithm,
                    const std::vector<workload::Instance>& instances,
                    const std::vector<cqp::ProblemSpec>& problems,
                    const std::vector<double>& reference_dois,
                    double budget_seconds) {
  Cell cell;
  cell.planned = instances.size();
  const cqp::Algorithm* algo = *cqp::GetAlgorithm(algorithm);
  Stopwatch budget;
  for (size_t i = 0; i < instances.size(); ++i) {
    if (budget.ElapsedSeconds() > budget_seconds) break;
    ::cqp::SearchBudget budget_spec;
    budget_spec.max_expansions = kStateLimitPerRun;
    budget_spec.max_memory_bytes = kMemoryLimitPerRun;
    cqp::SearchContext ctx(budget_spec);
    auto sol = algo->Solve(instances[i].space, problems[i], ctx);
    const cqp::SearchMetrics& metrics = ctx.metrics;
    if (!sol.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", algorithm.c_str(),
                   sol.status().ToString().c_str());
      continue;
    }
    cell.mean_wall_ms += metrics.wall_ms;
    cell.mean_peak_kbytes += metrics.memory.peak_kbytes();
    cell.mean_states += static_cast<double>(metrics.states_examined);
    if (metrics.truncated) ++cell.truncated_runs;
    if (sol->feasible && reference_dois[i] >= 0.0) {
      double diff = reference_dois[i] - sol->params.doi;
      // doi is accumulated in different orders by different algorithms;
      // clamp last-bit float noise so "heuristic == optimum" prints as 0.
      if (std::abs(diff) < 1e-12) diff = 0.0;
      cell.mean_quality_diff += diff;
      ++cell.scored_runs;
    }
    ++cell.runs;
  }
  if (cell.runs > 0) {
    double n = static_cast<double>(cell.runs);
    cell.mean_wall_ms /= n;
    cell.mean_peak_kbytes /= n;
    cell.mean_states /= n;
  }
  if (cell.scored_runs > 0) {
    cell.mean_quality_diff /= static_cast<double>(cell.scored_runs);
  }
  return cell;
}

/// Solves the reference (exact) algorithm per instance; -1 where it fails.
/// Stops early (remaining entries stay -1) once `budget_seconds` of
/// cumulative reference time is spent — truncated or missing references are
/// excluded from quality means, so this only reduces sample counts.
inline std::vector<double> ReferenceDois(
    const std::string& reference,
    const std::vector<workload::Instance>& instances,
    const std::vector<cqp::ProblemSpec>& problems,
    double budget_seconds = 30.0) {
  std::vector<double> dois(instances.size(), -1.0);
  if (reference.empty()) return dois;
  const cqp::Algorithm* algo = *cqp::GetAlgorithm(reference);
  Stopwatch budget;
  for (size_t i = 0; i < instances.size(); ++i) {
    if (budget.ElapsedSeconds() > budget_seconds) break;
    ::cqp::SearchBudget budget_spec;
    // The reference must be provably optimal to be useful, so it gets a
    // substantially higher cap than the measured runs.
    budget_spec.max_expansions = 5 * kStateLimitPerRun;
    budget_spec.max_memory_bytes = 2 * kMemoryLimitPerRun;
    cqp::SearchContext ctx(budget_spec);
    auto sol = algo->Solve(instances[i].space, problems[i], ctx);
    // A truncated reference is no longer provably optimal; drop it rather
    // than report a bogus quality difference.
    if (sol.ok() && sol->feasible && !ctx.metrics.truncated) {
      dois[i] = sol->params.doi;
    }
  }
  return dois;
}

/// Problems with a fixed absolute cost bound (K sweeps, cmax = 400 ms).
inline std::vector<cqp::ProblemSpec> FixedCmaxProblems(
    const std::vector<workload::Instance>& instances, double cmax_ms) {
  return std::vector<cqp::ProblemSpec>(instances.size(),
                                       cqp::ProblemSpec::Problem2(cmax_ms));
}

/// Problems at a fraction of each instance's Supreme Cost (cmax sweeps).
inline std::vector<cqp::ProblemSpec> FractionProblems(
    const std::vector<workload::Instance>& instances, double fraction) {
  std::vector<cqp::ProblemSpec> problems;
  problems.reserve(instances.size());
  for (const auto& inst : instances) {
    problems.push_back(
        cqp::ProblemSpec::Problem2(fraction * inst.supreme_cost_ms));
  }
  return problems;
}

/// Prints one row of a figure table; appends '*' when truncated.
inline std::string FormatCell(double value, const Cell& cell) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%12.3f%s", value,
                cell.truncated() ? "*" : " ");
  return buf;
}

inline const std::vector<std::string>& PaperAlgorithms() {
  static const std::vector<std::string>& algos =
      *new std::vector<std::string>{"D-MaxDoi", "D-SingleMaxDoi",
                                    "C-Boundaries", "C-MaxBounds",
                                    "D-HeurDoi"};
  return algos;
}

}  // namespace cqp::bench

#endif  // CQP_BENCH_BENCH_UTIL_H_
