// Batch-personalization throughput over the Fig. 12 workload (movie db,
// 5 profiles x 4 queries, K = 20, cmax = 400 ms): queries/sec, p50/p99
// latency and search states/sec for batch sizes {1, 8, 64, 256} at
// 1/2/4/8 worker threads.
//
// Each batch cycles through every (profile, query) pair; requests of the
// same pair share one EvalCache and every cell owns one PlanCache (both
// fresh per cell, so every cell starts cold and the thread sweep is an
// apples-to-apples comparison). With --repeat, the same requests run
// again against the now-warm caches and the final repetition is recorded
// as a separate "warm" cell — steady-state numbers without disturbing
// the cold cell's identity in the JSON record.
//
// Emits a table on stdout plus a JSON record (--json PATH, default
// BENCH_throughput.json next to the working directory) for the bench
// trajectory. Frontier counters (frontiers, avg width, wasted SIMD
// lanes) instrument the SoA/SIMD batch evaluation core — docs/simd.md.
//
// Flags: --smoke     tiny grid (batch {1,8} x threads {1,2}) for CI/tsan
//        --json P    write the JSON record to P
//        --repeat N  run each cell N times; record repetition 0 (cold)
//                    and repetition N-1 (warm)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "construct/personalizer.h"
#include "construct/plan_cache.h"
#include "estimation/eval_cache.h"

namespace {

using namespace cqp::bench;  // NOLINT

struct ThroughputCell {
  size_t batch = 0;
  size_t threads = 0;
  bool warm = false;  ///< true for the final --repeat repetition
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t ok = 0;
  size_t degraded = 0;
  uint64_t states = 0;
  double states_per_sec = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t frontiers = 0;
  uint64_t frontier_states = 0;
  uint64_t lanes_wasted = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size()));
  return values[std::min(idx, values.size() - 1)];
}

ThroughputCell MakeCell(const cqp::construct::BatchResult& result,
                        size_t batch, size_t threads, bool warm) {
  ThroughputCell cell;
  cell.batch = batch;
  cell.threads = threads;
  cell.warm = warm;
  cell.wall_ms = result.wall_ms;
  cell.qps = result.wall_ms > 0.0
                 ? 1000.0 * static_cast<double>(batch) / result.wall_ms
                 : 0.0;
  cell.p50_ms = Percentile(result.latencies_ms, 0.50);
  cell.p99_ms = Percentile(result.latencies_ms, 0.99);
  cell.ok = result.ok_count();
  cell.degraded = result.degraded;
  cell.states = result.states_examined;
  cell.states_per_sec =
      result.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(result.states_examined) /
                result.wall_ms
          : 0.0;
  cell.cache_hits = result.eval_cache_hits;
  cell.cache_misses = result.eval_cache_misses;
  cell.frontiers = result.frontiers_evaluated;
  cell.frontier_states = result.frontier_states;
  cell.lanes_wasted = result.frontier_lanes_wasted;
  for (const auto& r : result.results) {
    if (!r.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   r.status().ToString().c_str());
    }
  }
  return cell;
}

/// Runs one (batch, threads) cell `repeat` times over cell-local caches and
/// appends the cold cell (repetition 0) and, when repeat > 1, the warm one
/// (the last repetition) to `out`.
void RunCell(const cqp::workload::ExperimentContext& ctx, size_t batch,
             size_t threads, size_t repeat,
             std::vector<ThroughputCell>* out) {
  const auto& graphs = ctx.graphs();
  const auto& queries = ctx.queries();
  const size_t pairs = graphs.size() * queries.size();

  // One memo per (profile, query) pair plus one plan cache, fresh for this
  // cell and shared across repetitions: repeats within a batch — and every
  // request of a warm repetition — hit warm entries.
  std::vector<cqp::estimation::EvalCache> caches(pairs);
  cqp::construct::PlanCache plan_cache;

  cqp::construct::Personalizer personalizer(&ctx.db(), &graphs[0]);
  std::vector<cqp::construct::PersonalizeRequest> requests;
  requests.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    size_t pair = i % pairs;
    cqp::construct::PersonalizeRequest request;
    request.query = queries[pair % queries.size()];
    request.graph = &graphs[pair / queries.size()];
    request.eval_cache = &caches[pair];
    request.plan_cache = &plan_cache;
    request.profile_id = "p" + std::to_string(pair / queries.size());
    request.profile_version = 1;
    request.problem = cqp::cqp::ProblemSpec::Problem2(400.0);
    request.algorithm = "C-Boundaries";
    request.budget.max_expansions = kStateLimitPerRun;
    request.budget.max_memory_bytes = kMemoryLimitPerRun;
    requests.push_back(std::move(request));
  }

  cqp::construct::BatchOptions options;
  options.num_threads = threads;
  for (size_t rep = 0; rep < repeat; ++rep) {
    cqp::construct::BatchResult result =
        personalizer.PersonalizeBatch(requests, options);
    if (rep == 0) {
      out->push_back(MakeCell(result, batch, threads, /*warm=*/false));
    }
    if (rep + 1 == repeat && repeat > 1) {
      out->push_back(MakeCell(result, batch, threads, /*warm=*/true));
    }
  }
}

void AppendCellJson(std::string& json, const ThroughputCell& c, bool last) {
  char buf[768];
  uint64_t lookups = c.cache_hits + c.cache_misses;
  std::snprintf(
      buf, sizeof buf,
      "    {\"batch\": %zu, \"threads\": %zu, %s\"wall_ms\": %.3f, "
      "\"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"ok\": %zu, "
      "\"degraded\": %zu, \"states\": %llu, \"states_per_sec\": %.0f, "
      "\"eval_cache_hits\": %llu, \"eval_cache_misses\": %llu, "
      "\"eval_cache_hit_rate\": %.4f, \"frontiers\": %llu, "
      "\"frontier_states\": %llu, \"avg_frontier_width\": %.2f, "
      "\"lanes_wasted\": %llu}%s\n",
      c.batch, c.threads, c.warm ? "\"phase\": \"warm\", " : "", c.wall_ms,
      c.qps, c.p50_ms, c.p99_ms, c.ok, c.degraded,
      static_cast<unsigned long long>(c.states), c.states_per_sec,
      static_cast<unsigned long long>(c.cache_hits),
      static_cast<unsigned long long>(c.cache_misses),
      lookups == 0 ? 0.0
                   : static_cast<double>(c.cache_hits) /
                         static_cast<double>(lookups),
      static_cast<unsigned long long>(c.frontiers),
      static_cast<unsigned long long>(c.frontier_states),
      c.frontiers == 0 ? 0.0
                       : static_cast<double>(c.frontier_states) /
                             static_cast<double>(c.frontiers),
      static_cast<unsigned long long>(c.lanes_wasted), last ? "" : ",");
  json += buf;
}

int Run(bool smoke, const std::string& json_path, size_t repeat) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("Batch personalization throughput — Fig. 12 workload, "
              "C-Boundaries, K = 20, cmax = 400 ms\n");
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  auto ctx_or = cqp::workload::ExperimentContext::Create(DefaultConfig());
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "%s\n", ctx_or.status().ToString().c_str());
    return 1;
  }
  auto ctx = *std::move(ctx_or);

  std::vector<size_t> batches = smoke ? std::vector<size_t>{1, 8}
                                      : std::vector<size_t>{1, 8, 64, 256};
  std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};

  std::printf("%6s %8s %5s %10s %10s %10s %10s %6s %12s %10s\n", "batch",
              "threads", "phase", "wall_ms", "q/s", "p50_ms", "p99_ms",
              "degr", "states/s", "hit_rate");
  std::vector<ThroughputCell> cells;
  for (size_t batch : batches) {
    for (size_t threads : thread_counts) {
      size_t before = cells.size();
      RunCell(ctx, batch, threads, repeat, &cells);
      for (size_t i = before; i < cells.size(); ++i) {
        const ThroughputCell& cell = cells[i];
        uint64_t lookups = cell.cache_hits + cell.cache_misses;
        std::printf(
            "%6zu %8zu %5s %10.1f %10.1f %10.2f %10.2f %6zu %12.0f %9.1f%%\n",
            cell.batch, cell.threads, cell.warm ? "warm" : "cold",
            cell.wall_ms, cell.qps, cell.p50_ms, cell.p99_ms, cell.degraded,
            cell.states_per_sec,
            lookups == 0 ? 0.0
                         : 100.0 * static_cast<double>(cell.cache_hits) /
                               static_cast<double>(lookups));
      }
    }
  }

  std::string json;
  json += "{\n";
  json += "  \"bench\": \"throughput\",\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  \"workload\": {\"movies\": 5000, \"profiles\": %zu, "
                "\"queries\": %zu, \"k\": 20, \"cmax_ms\": 400, "
                "\"algorithm\": \"C-Boundaries\"},\n",
                ctx.graphs().size(), ctx.queries().size());
  json += buf;
  std::snprintf(buf, sizeof buf, "  \"hardware_threads\": %u,\n",
                std::thread::hardware_concurrency());
  json += buf;
  std::snprintf(buf, sizeof buf, "  \"smoke\": %s,\n",
                smoke ? "true" : "false");
  json += buf;
  json += "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    AppendCellJson(json, cells[i], i + 1 == cells.size());
  }
  json += "  ]\n}\n";

  std::printf("\n%s", json.c_str());
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  size_t repeat = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = static_cast<size_t>(std::atoi(argv[++i]));
      if (repeat < 1) repeat = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH] [--repeat N]\n",
                   argv[0]);
      return 2;
    }
  }
  return Run(smoke, json_path, repeat);
}
