// Quantifies the paper's §1 motivation: naively integrating every related
// preference ("over-personalization") produces queries that are expensive
// and — because the §4.2 rewriting intersects all preferences — frequently
// return nothing. CQP's constrained formulations fix both.
//
// For each (profile, query) instance the personalized query is actually
// constructed and executed on the engine under three strategies:
//   * All-Preferences  — the strawman: every related preference;
//   * Problem 2        — MAX doi under cost <= 400 ms;
//   * Problem 3        — MAX doi under cost <= 400 ms and 1 <= size <= 100.

#include <cstdio>

#include "bench_util.h"
#include "construct/query_builder.h"
#include "exec/executor.h"
#include "exec/personalized_exec.h"

namespace {

using namespace cqp::bench;  // NOLINT

struct Strategy {
  const char* label;
  const char* algorithm;
  bool constrained;
  cqp::cqp::ProblemSpec problem;
};

int Run() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf(
      "Motivation (§1): over-personalization vs constrained "
      "personalization\n\n");
  auto config = DefaultConfig();
  config.n_profiles = 4;
  config.query.n_queries = 4;
  auto ctx_or = cqp::workload::ExperimentContext::Create(config);
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "%s\n", ctx_or.status().ToString().c_str());
    return 1;
  }
  auto ctx = *std::move(ctx_or);
  auto instances_or = cqp::workload::BuildInstances(ctx, 12);
  if (!instances_or.ok()) {
    std::fprintf(stderr, "%s\n", instances_or.status().ToString().c_str());
    return 1;
  }
  auto instances = *std::move(instances_or);
  cqp::exec::Executor executor(&ctx.db());

  Strategy strategies[] = {
      {"All-Preferences (strawman)", "All-Preferences", false,
       cqp::cqp::ProblemSpec::Problem2(1e18)},
      {"Problem 2 (cost <= 400ms)", "C-Boundaries", true,
       cqp::cqp::ProblemSpec::Problem2(400)},
      {"Problem 3 (+ 1 <= size <= 100)", "C-Boundaries", true,
       cqp::cqp::ProblemSpec::Problem3(400, 1, 100)},
  };

  std::printf("%-32s %10s %10s %10s %8s %8s\n", "strategy", "mean|Px|",
              "exec[ms]", "rows", "%empty", "doi");
  for (const Strategy& strategy : strategies) {
    double mean_px = 0, mean_ms = 0, mean_rows = 0, mean_doi = 0;
    size_t empty = 0, runs = 0;
    for (const auto& inst : instances) {
      const cqp::cqp::Algorithm* algo =
          *cqp::cqp::GetAlgorithm(strategy.algorithm);
      cqp::cqp::SearchContext search_ctx;
      auto sol = algo->Solve(inst.space, strategy.problem, search_ctx);
      if (!sol.ok()) continue;
      // The strawman integrates everything regardless of feasibility; the
      // constrained strategies fall back to the plain query if infeasible.
      cqp::IndexSet chosen =
          (strategy.constrained && !sol->feasible) ? cqp::IndexSet()
                                                   : sol->chosen;
      auto pq = cqp::construct::BuildPersonalizedQuery(
          ctx.db(), inst.space.query, inst.space.prefs, chosen);
      if (!pq.ok()) continue;

      cqp::exec::ExecStats stats;
      size_t rows = 0;
      double doi = 0;
      if (pq->subqueries.empty()) {
        auto rs = executor.Execute(pq->base, &stats);
        if (!rs.ok()) continue;
        rows = rs->row_count();
      } else {
        auto rs = cqp::exec::ExecutePersonalized(
            executor, pq->subqueries, pq->dois,
            cqp::exec::CombineMode::kIntersection, &stats);
        if (!rs.ok()) continue;
        rows = rs->rows.size();
        if (!rs->rows.empty()) doi = rs->rows.front().doi;
      }
      mean_px += static_cast<double>(chosen.size());
      mean_ms += stats.SimulatedMillis(cqp::exec::CostModelParams());
      mean_rows += static_cast<double>(rows);
      mean_doi += doi;
      if (rows == 0) ++empty;
      ++runs;
    }
    if (runs == 0) continue;
    double n = static_cast<double>(runs);
    std::printf("%-32s %10.1f %10.1f %10.1f %7.0f%% %8.3f\n", strategy.label,
                mean_px / n, mean_ms / n, mean_rows / n,
                100.0 * static_cast<double>(empty) / n, mean_doi / n);
  }
  std::printf(
      "\nExpected shape: the strawman burns the most execution time and\n"
      "returns an empty answer for (nearly) every query; Problem 2 meets\n"
      "the cost budget but still over-personalizes into emptiness; the\n"
      "Problem 3 size bound integrates far fewer preferences and sharply\n"
      "reduces empty answers — the residual empties measure the gap\n"
      "between the independence-assumption size *estimate* and the true\n"
      "intersection cardinality (§4.3's 'relaxed accuracy requirements').\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
