// Reproduces Figure 13 of the paper: maximum memory used by the CQP
// algorithms during search (logical working-set accounting: queues,
// visited sets and boundary lists; see cqp::MemoryMeter).
//
//   (a) peak memory [KB] vs K (cmax = 400 ms);
//   (b) peak memory [KB] vs cmax as % of Supreme Cost (K = 20).
//
// Cells marked '*' hit the per-cell time budget and average fewer runs.

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace cqp::bench;  // NOLINT

constexpr double kCellBudgetSeconds = 10.0;

int Run() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("Figure 13 — memory requirements (mean peak KBytes)\n");
  auto ctx_or = cqp::workload::ExperimentContext::Create(DefaultConfig());
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "%s\n", ctx_or.status().ToString().c_str());
    return 1;
  }
  auto ctx = *std::move(ctx_or);

  std::printf("\n(a) peak memory [KB] vs K (cmax = 400 ms)\n");
  std::printf("%4s", "K");
  for (const auto& name : PaperAlgorithms()) std::printf(" %13s", name.c_str());
  std::printf("\n");

  std::vector<cqp::workload::Instance> k20_instances;
  for (int k : {10, 20, 30, 40}) {
    auto instances_or =
        cqp::workload::BuildInstances(ctx, static_cast<size_t>(k));
    if (!instances_or.ok()) continue;
    auto instances = *std::move(instances_or);
    auto problems = FixedCmaxProblems(instances, 400.0);
    std::vector<double> no_ref(instances.size(), -1.0);
    std::printf("%4d", k);
    for (const auto& name : PaperAlgorithms()) {
      Cell cell =
          RunCell(name, instances, problems, no_ref, kCellBudgetSeconds);
      std::printf(" %s", FormatCell(cell.mean_peak_kbytes, cell).c_str());
    }
    std::printf("\n");
    if (k == 20) k20_instances = std::move(instances);
  }

  std::printf("\n(b) peak memory [KB] vs cmax (%% of Supreme Cost, K=20)\n");
  std::printf("%5s", "%sup");
  for (const auto& name : PaperAlgorithms()) std::printf(" %13s", name.c_str());
  std::printf("\n");
  for (int pct = 10; pct <= 100; pct += 10) {
    auto problems = FractionProblems(k20_instances, pct / 100.0);
    std::vector<double> no_ref(k20_instances.size(), -1.0);
    std::printf("%5d", pct);
    for (const auto& name : PaperAlgorithms()) {
      Cell cell = RunCell(name, k20_instances, problems, no_ref,
                          kCellBudgetSeconds);
      std::printf(" %s", FormatCell(cell.mean_peak_kbytes, cell).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
