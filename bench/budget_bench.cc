// Anytime behavior under wall-clock deadlines: the Fig. 12 workload
// (K = 20, cmax = 400 ms) solved with deadlines of {1, 5, 20, 100} ms.
//
// For each algorithm x deadline cell the table reports the mean doi regret
// against the unbounded optimum (C-Boundaries with the bench's generous
// state cap) and how many runs came back degraded (budget-truncated,
// best-so-far answer). Regret should fall monotonically with the deadline;
// an exact algorithm given enough time has regret 0.

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace cqp::bench;  // NOLINT

constexpr double kDeadlinesMs[] = {1.0, 5.0, 20.0, 100.0};

struct BudgetCell {
  double mean_regret = 0.0;
  double mean_states = 0.0;
  size_t degraded_runs = 0;
  size_t feasible_runs = 0;
  size_t scored_runs = 0;
  size_t runs = 0;
};

BudgetCell RunDeadlineCell(const std::string& algorithm,
                           const std::vector<cqp::workload::Instance>& instances,
                           const std::vector<cqp::cqp::ProblemSpec>& problems,
                           const std::vector<double>& reference_dois,
                           double deadline_ms) {
  BudgetCell cell;
  const cqp::cqp::Algorithm* algo = *cqp::cqp::GetAlgorithm(algorithm);
  for (size_t i = 0; i < instances.size(); ++i) {
    cqp::cqp::SearchContext ctx(cqp::SearchBudget::AfterMillis(deadline_ms));
    auto sol = algo->Solve(instances[i].space, problems[i], ctx);
    if (!sol.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", algorithm.c_str(),
                   sol.status().ToString().c_str());
      continue;
    }
    ++cell.runs;
    cell.mean_states += static_cast<double>(ctx.metrics.states_examined);
    if (sol->degraded) ++cell.degraded_runs;
    if (sol->feasible) ++cell.feasible_runs;
    if (sol->feasible && reference_dois[i] >= 0.0) {
      double regret = reference_dois[i] - sol->params.doi;
      if (regret < 0.0) regret = 0.0;  // float noise on exact matches
      cell.mean_regret += regret;
      ++cell.scored_runs;
    }
  }
  if (cell.runs > 0) {
    cell.mean_states /= static_cast<double>(cell.runs);
  }
  if (cell.scored_runs > 0) {
    cell.mean_regret /= static_cast<double>(cell.scored_runs);
  }
  return cell;
}

int Run() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf(
      "Deadline-budgeted anytime search — Fig. 12 workload, K = 20, "
      "cmax = 400 ms\n");
  auto ctx_or = cqp::workload::ExperimentContext::Create(DefaultConfig());
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "%s\n", ctx_or.status().ToString().c_str());
    return 1;
  }
  auto ctx = *std::move(ctx_or);
  auto instances_or = cqp::workload::BuildInstances(ctx, 20);
  if (!instances_or.ok()) {
    std::fprintf(stderr, "%s\n", instances_or.status().ToString().c_str());
    return 1;
  }
  auto instances = *std::move(instances_or);
  auto problems = FixedCmaxProblems(instances, 400.0);

  // Unbounded optimum (no deadline; only the bench's safety caps).
  std::vector<double> reference =
      ReferenceDois("C-Boundaries", instances, problems);
  size_t n_ref = 0;
  for (double d : reference) n_ref += d >= 0.0 ? 1 : 0;
  std::printf("%zu instances, %zu with a provably optimal reference doi\n\n",
              instances.size(), n_ref);

  std::printf("mean doi regret vs unbounded optimum (degraded runs / total)\n");
  std::printf("%15s", "deadline");
  for (const auto& name : PaperAlgorithms()) std::printf(" %16s", name.c_str());
  std::printf("\n");
  for (double deadline_ms : kDeadlinesMs) {
    std::printf("%13.0fms", deadline_ms);
    for (const auto& name : PaperAlgorithms()) {
      BudgetCell cell = RunDeadlineCell(name, instances, problems, reference,
                                        deadline_ms);
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.4f (%zu/%zu)", cell.mean_regret,
                    cell.degraded_runs, cell.runs);
      std::printf(" %16s", buf);
    }
    std::printf("\n");
  }

  std::printf("\nmean states examined within the deadline\n");
  std::printf("%15s", "deadline");
  for (const auto& name : PaperAlgorithms()) std::printf(" %16s", name.c_str());
  std::printf("\n");
  for (double deadline_ms : kDeadlinesMs) {
    std::printf("%13.0fms", deadline_ms);
    for (const auto& name : PaperAlgorithms()) {
      BudgetCell cell = RunDeadlineCell(name, instances, problems, reference,
                                        deadline_ms);
      std::printf(" %16.0f", cell.mean_states);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
