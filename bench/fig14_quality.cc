// Reproduces Figure 14 of the paper: quality of the heuristic algorithms,
// measured as Quality = doi_optimal - doi_found (×1e7 in the tables below,
// matching the paper's y-axis scaling), with D-MaxDoi as the provably
// correct reference.
//
//   (a) quality difference vs K (cmax = 400 ms);
//   (b) quality difference vs cmax as % of Supreme Cost (K = 20).

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace cqp::bench;  // NOLINT

constexpr double kCellBudgetSeconds = 20.0;
const char* const kHeuristics[] = {"D-HeurDoi", "C-MaxBounds",
                                   "D-SingleMaxDoi"};

int Run() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf(
      "Figure 14 — quality of heuristic solutions\n"
      "Quality = (doi_optimal - doi_found) x 1e7, optimum from D-MaxDoi\n");
  auto ctx_or = cqp::workload::ExperimentContext::Create(DefaultConfig());
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "%s\n", ctx_or.status().ToString().c_str());
    return 1;
  }
  auto ctx = *std::move(ctx_or);

  std::printf("\n(a) quality difference (x 1e-7) vs K (cmax = 400 ms)\n");
  std::printf("%4s %13s %13s %13s\n", "K", kHeuristics[0], kHeuristics[1],
              kHeuristics[2]);
  std::vector<cqp::workload::Instance> k20_instances;
  for (int k : {10, 20, 30, 40}) {
    auto instances_or =
        cqp::workload::BuildInstances(ctx, static_cast<size_t>(k));
    if (!instances_or.ok()) continue;
    auto instances = *std::move(instances_or);
    auto problems = FixedCmaxProblems(instances, 400.0);
    auto reference = ReferenceDois("D-MaxDoi", instances, problems);
    std::printf("%4d", k);
    for (const char* name : kHeuristics) {
      Cell cell =
          RunCell(name, instances, problems, reference, kCellBudgetSeconds);
      if (cell.scored_runs == 0) {
        std::printf(" %12s ", "n/a");  // exact reference never completed
      } else {
        std::printf(" %s",
                    FormatCell(cell.mean_quality_diff * 1e7, cell).c_str());
      }
    }
    std::printf("\n");
    if (k == 20) k20_instances = std::move(instances);
  }

  std::printf(
      "\n(b) quality difference (x 1e-7) vs cmax (%% of Supreme Cost, "
      "K=20)\n");
  std::printf("%5s %13s %13s %13s\n", "%sup", kHeuristics[0], kHeuristics[1],
              kHeuristics[2]);
  for (int pct = 10; pct <= 100; pct += 10) {
    auto problems = FractionProblems(k20_instances, pct / 100.0);
    auto reference = ReferenceDois("D-MaxDoi", k20_instances, problems);
    std::printf("%5d", pct);
    for (const char* name : kHeuristics) {
      Cell cell = RunCell(name, k20_instances, problems, reference,
                          kCellBudgetSeconds);
      if (cell.scored_runs == 0) {
        std::printf(" %12s ", "n/a");
      } else {
        std::printf(" %s",
                    FormatCell(cell.mean_quality_diff * 1e7, cell).c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
