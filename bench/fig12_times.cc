// Reproduces Figure 12 of the paper: execution times of the CQP algorithms.
//
//   (a) optimization time vs K (cmax = 400 ms, the paper's default);
//   (b) preference-selection time vs K (D_PrefSelTime / C_PrefSelTime);
//   (c) optimization time vs cmax as % of Supreme Cost (K = 20);
//   (d) zoom of (c) on the fast algorithms (same data, separate table).
//
// Cells marked '*' hit the per-cell time budget and average fewer runs.

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace cqp::bench;  // NOLINT

constexpr double kCellBudgetSeconds = 10.0;

int Run() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("Figure 12 — execution times (mean over profile x query runs)\n");
  auto ctx_or = cqp::workload::ExperimentContext::Create(DefaultConfig());
  if (!ctx_or.ok()) {
    std::fprintf(stderr, "%s\n", ctx_or.status().ToString().c_str());
    return 1;
  }
  auto ctx = *std::move(ctx_or);

  // ---- (a) + (b): K sweep at cmax = 400 ms ----
  std::printf("\n(a) CQP optimization time [ms] vs K (cmax = 400 ms)\n");
  std::printf("%4s", "K");
  for (const auto& name : PaperAlgorithms()) std::printf(" %13s", name.c_str());
  std::printf("\n");

  std::vector<std::pair<int, std::vector<cqp::workload::Instance>>> per_k;
  for (int k : {10, 20, 30, 40}) {
    auto instances_or = cqp::workload::BuildInstances(ctx, static_cast<size_t>(k));
    if (!instances_or.ok()) {
      std::fprintf(stderr, "K=%d: %s\n", k,
                   instances_or.status().ToString().c_str());
      continue;
    }
    per_k.emplace_back(k, *std::move(instances_or));
  }

  std::vector<std::map<std::string, Cell>> k_cells;
  for (auto& [k, instances] : per_k) {
    auto problems = FixedCmaxProblems(instances, 400.0);
    std::vector<double> no_ref(instances.size(), -1.0);
    std::printf("%4d", k);
    std::map<std::string, Cell> row;
    for (const auto& name : PaperAlgorithms()) {
      Cell cell = RunCell(name, instances, problems, no_ref,
                          kCellBudgetSeconds);
      std::printf(" %s", FormatCell(cell.mean_wall_ms, cell).c_str());
      row[name] = cell;
    }
    k_cells.push_back(std::move(row));
    std::printf("\n");
  }

  // Wall time flattens once a run hits the per-run state cap, so the raw
  // driver of Fig. 12(a) — states examined — is printed alongside.
  std::printf("\n(a') mean states examined vs K (same runs as (a))\n");
  std::printf("%4s", "K");
  for (const auto& name : PaperAlgorithms()) std::printf(" %13s", name.c_str());
  std::printf("\n");
  for (size_t i = 0; i < per_k.size(); ++i) {
    std::printf("%4d", per_k[i].first);
    for (const auto& name : PaperAlgorithms()) {
      const Cell& cell = k_cells[i].at(name);
      std::printf(" %s", FormatCell(cell.mean_states, cell).c_str());
    }
    std::printf("\n");
  }

  // Ablation: our fused/pruned D-MaxDoi variant vs the paper's original.
  std::printf(
      "\n(ablation) D-MaxDoi vs D-MaxDoi+Prune (exact solutions both; "
      "time [ms] / states)\n");
  std::printf("%4s %26s %26s\n", "K", "D-MaxDoi", "D-MaxDoi+Prune");
  for (auto& [k, instances] : per_k) {
    auto problems = FixedCmaxProblems(instances, 400.0);
    std::vector<double> no_ref(instances.size(), -1.0);
    Cell base = RunCell("D-MaxDoi", instances, problems, no_ref,
                        kCellBudgetSeconds);
    Cell pruned = RunCell("D-MaxDoi+Prune", instances, problems, no_ref,
                          kCellBudgetSeconds);
    std::printf("%4d %12.3f%s/%11.0f %12.3f%s/%11.0f\n", k,
                base.mean_wall_ms, base.truncated() ? "*" : " ",
                base.mean_states, pruned.mean_wall_ms,
                pruned.truncated() ? "*" : " ", pruned.mean_states);
  }

  std::printf("\n(b) Preference-selection time [ms] vs K\n");
  std::printf("%4s %14s %14s\n", "K", "D_PrefSelTime", "C_PrefSelTime");
  for (auto& [k, instances] : per_k) {
    double d_ms = 0, c_ms = 0;
    for (const auto& inst : instances) {
      d_ms += inst.d_prefsel_ms;
      c_ms += inst.c_prefsel_ms;
    }
    double n = static_cast<double>(instances.size());
    std::printf("%4d %14.4f %14.4f\n", k, d_ms / n, c_ms / n);
  }

  // ---- (c) + (d): cmax sweep at K = 20 ----
  const std::vector<cqp::workload::Instance>* k20 = nullptr;
  for (auto& [k, instances] : per_k) {
    if (k == 20) k20 = &instances;
  }
  if (k20 == nullptr) {
    std::fprintf(stderr, "no K=20 instances\n");
    return 1;
  }

  std::printf("\n(c) CQP optimization time [ms] vs cmax (%% of Supreme Cost, K=20)\n");
  std::printf("%5s", "%sup");
  for (const auto& name : PaperAlgorithms()) std::printf(" %13s", name.c_str());
  std::printf("\n");
  std::vector<std::map<std::string, Cell>> fraction_cells;
  for (int pct = 10; pct <= 100; pct += 10) {
    auto problems = FractionProblems(*k20, pct / 100.0);
    std::vector<double> no_ref(k20->size(), -1.0);
    std::printf("%5d", pct);
    std::map<std::string, Cell> row;
    for (const auto& name : PaperAlgorithms()) {
      Cell cell = RunCell(name, *k20, problems, no_ref, kCellBudgetSeconds);
      row[name] = cell;
      std::printf(" %s", FormatCell(cell.mean_wall_ms, cell).c_str());
    }
    fraction_cells.push_back(std::move(row));
    std::printf("\n");
  }

  std::printf("\n(d) zoom: fast algorithms only [ms]\n");
  std::printf("%5s %13s %13s %13s\n", "%sup", "C-Boundaries", "C-MaxBounds",
              "D-HeurDoi");
  int pct = 10;
  for (const auto& row : fraction_cells) {
    std::printf("%5d %s %s %s\n", pct,
                FormatCell(row.at("C-Boundaries").mean_wall_ms,
                           row.at("C-Boundaries"))
                    .c_str(),
                FormatCell(row.at("C-MaxBounds").mean_wall_ms,
                           row.at("C-MaxBounds"))
                    .c_str(),
                FormatCell(row.at("D-HeurDoi").mean_wall_ms,
                           row.at("D-HeurDoi"))
                    .c_str());
    pct += 10;
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
