// Closed-loop load bench for the personalization server: an in-process
// server::Server on a real loopback socket, hammered by closed-loop client
// threads over the full concurrency {1, 8, 32} x deadline {10 ms, 50 ms,
// inf} grid.
//
// Each cell reports throughput, client-observed p50/p99 latency, degraded
// and errored request counts. In the infinite-deadline cells every
// response is additionally compared field-for-field against a direct
// in-process Personalize() with the server's own defaults — the wire path
// must be bit-identical to the library path. A final shed probe restarts
// the server with max_pending = 1 and verifies that every overloaded
// request comes back as an explicit ResourceExhausted error, never a
// silent drop or a hang (the bench finishing IS the no-hung-connections
// check: every client runs a blocking closed loop).
//
// Flags: --smoke   reduced grid (concurrency {1,8} x deadline {50ms, inf})
//        --json P  write the JSON record to P (default BENCH_server.json)

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "construct/personalizer.h"
#include "server/client.h"
#include "server/json.h"
#include "server/profile_store.h"
#include "server/server.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"

namespace {

using namespace cqp;  // NOLINT

const std::vector<std::string>& BenchQueries() {
  static const std::vector<std::string>& queries =
      *new std::vector<std::string>{
          "SELECT title FROM MOVIE",
          "SELECT title FROM MOVIE WHERE MOVIE.year >= 1990",
          "SELECT MOVIE.title, DIRECTOR.name FROM MOVIE, DIRECTOR "
          "WHERE MOVIE.did = DIRECTOR.did",
      };
  return queries;
}

struct CellResult {
  size_t concurrency = 0;
  double deadline_ms = 0.0;  ///< 0 = unlimited
  size_t requests = 0;
  size_t ok = 0;
  size_t degraded = 0;
  size_t transport_errors = 0;  ///< broken connection / unparsable frame
  std::map<std::string, size_t> error_codes;  ///< typed wire errors
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t identity_checked = 0;
  size_t identity_mismatches = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size()));
  return values[std::min(idx, values.size() - 1)];
}

/// Direct in-process reference answers, one per bench query, computed with
/// exactly the server's defaults.
std::vector<construct::PersonalizeResult> ReferenceResults(
    const storage::Database& db, server::ProfileStore& profiles,
    const server::ServerOptions& options) {
  auto graph = profiles.Find("default");
  CQP_CHECK(graph != nullptr);
  construct::Personalizer personalizer(&db, graph.get());
  std::vector<construct::PersonalizeResult> results;
  for (const std::string& sql : BenchQueries()) {
    construct::PersonalizeRequest request;
    request.sql = sql;
    request.problem = options.default_problem;
    request.algorithm = options.default_algorithm;
    request.space_options.max_k = options.default_max_k;
    auto result = personalizer.Personalize(request);
    CQP_CHECK(result.ok());
    results.push_back(*std::move(result));
  }
  return results;
}

bool MatchesReference(const server::PersonalizeResultPayload& got,
                      const construct::PersonalizeResult& want) {
  return got.final_sql == want.final_sql &&
         got.feasible == want.solution.feasible &&
         got.chosen == std::vector<int32_t>(want.solution.chosen.begin(),
                                            want.solution.chosen.end()) &&
         got.doi == want.solution.params.doi &&
         got.cost_ms == want.solution.params.cost_ms &&
         got.size == want.solution.params.size;
}

CellResult RunCell(int port, size_t concurrency, double deadline_ms,
                   size_t requests_per_client,
                   const std::vector<construct::PersonalizeResult>* reference) {
  CellResult cell;
  cell.concurrency = concurrency;
  cell.deadline_ms = deadline_ms;
  cell.requests = concurrency * requests_per_client;

  std::mutex mu;  // guards the aggregates below
  std::vector<double> latencies;
  Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      server::Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        std::lock_guard<std::mutex> lock(mu);
        cell.transport_errors += requests_per_client;
        return;
      }
      std::vector<double> my_latencies;
      size_t my_ok = 0, my_degraded = 0, my_transport = 0;
      size_t my_checked = 0, my_mismatched = 0;
      std::map<std::string, size_t> my_errors;
      for (size_t i = 0; i < requests_per_client; ++i) {
        size_t query = (c * requests_per_client + i) % BenchQueries().size();
        server::WireRequest request;
        request.op = server::RequestOp::kPersonalize;
        request.personalize.sql = BenchQueries()[query];
        request.personalize.deadline_ms = deadline_ms;
        Stopwatch timer;
        auto response = client.Call(request);
        my_latencies.push_back(timer.ElapsedMillis());
        if (!response.ok()) {
          ++my_transport;
          continue;  // connection is gone; further calls fail fast
        }
        if (!response->ok()) {
          ++my_errors[StatusCodeName(response->status.code())];
          continue;
        }
        ++my_ok;
        const server::PersonalizeResultPayload& r = *response->personalize;
        if (r.degraded) ++my_degraded;
        if (reference != nullptr) {
          ++my_checked;
          if (!MatchesReference(r, (*reference)[query])) ++my_mismatched;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), my_latencies.begin(),
                       my_latencies.end());
      cell.ok += my_ok;
      cell.degraded += my_degraded;
      cell.transport_errors += my_transport;
      cell.identity_checked += my_checked;
      cell.identity_mismatches += my_mismatched;
      for (const auto& [code, n] : my_errors) cell.error_codes[code] += n;
    });
  }
  for (std::thread& t : clients) t.join();
  cell.wall_ms = wall.ElapsedMillis();
  cell.qps = cell.wall_ms > 0.0 ? 1000.0 * static_cast<double>(cell.requests) /
                                      cell.wall_ms
                                : 0.0;
  cell.p50_ms = Percentile(latencies, 0.50);
  cell.p99_ms = Percentile(latencies, 0.99);
  return cell;
}

server::JsonValue CellToJson(const CellResult& cell) {
  using server::JsonValue;
  JsonValue obj = JsonValue::Object();
  obj.Set("concurrency",
          JsonValue::Number(static_cast<double>(cell.concurrency)));
  obj.Set("deadline_ms", cell.deadline_ms > 0.0
                             ? JsonValue::Number(cell.deadline_ms)
                             : JsonValue::Null());
  obj.Set("requests", JsonValue::Number(static_cast<double>(cell.requests)));
  obj.Set("ok", JsonValue::Number(static_cast<double>(cell.ok)));
  obj.Set("degraded", JsonValue::Number(static_cast<double>(cell.degraded)));
  obj.Set("transport_errors",
          JsonValue::Number(static_cast<double>(cell.transport_errors)));
  JsonValue errors = JsonValue::Object();
  for (const auto& [code, n] : cell.error_codes) {
    errors.Set(code, JsonValue::Number(static_cast<double>(n)));
  }
  obj.Set("error_codes", std::move(errors));
  obj.Set("wall_ms", JsonValue::Number(cell.wall_ms));
  obj.Set("qps", JsonValue::Number(cell.qps));
  obj.Set("p50_ms", JsonValue::Number(cell.p50_ms));
  obj.Set("p99_ms", JsonValue::Number(cell.p99_ms));
  obj.Set("identity_checked",
          JsonValue::Number(static_cast<double>(cell.identity_checked)));
  obj.Set("identity_mismatches",
          JsonValue::Number(static_cast<double>(cell.identity_mismatches)));
  return obj;
}

/// Overload probe: a server with max_pending = 1 and one worker must
/// answer every overloaded request with an explicit ResourceExhausted —
/// ok + shed must account for every single request sent.
server::JsonValue RunShedProbe(const storage::Database& db,
                               server::ProfileStore& profiles, bool smoke) {
  server::ServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.admission.max_pending = 1;
  server::Server overloaded(&db, &profiles, options);
  CQP_CHECK(overloaded.Start().ok());

  const size_t clients = smoke ? 4 : 8;
  const size_t per_client = smoke ? 4 : 8;
  std::atomic<size_t> ok{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      server::Client client;
      if (!client.Connect("127.0.0.1", overloaded.port()).ok()) {
        other.fetch_add(per_client);
        return;
      }
      for (size_t i = 0; i < per_client; ++i) {
        server::WireRequest request;
        request.op = server::RequestOp::kPersonalize;
        request.personalize.sql = BenchQueries()[0];
        auto response = client.Call(request);
        if (!response.ok()) {
          other.fetch_add(1);
        } else if (response->ok()) {
          ok.fetch_add(1);
        } else if (response->status.code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  overloaded.Stop();

  const size_t total = clients * per_client;
  std::printf(
      "shed probe (max_pending=1): %zu requests -> %zu ok, %zu shed "
      "(ResourceExhausted), %zu other%s\n",
      total, ok.load(), shed.load(), other.load(),
      other.load() == 0 && ok.load() + shed.load() == total
          ? " -- every request accounted for"
          : "  ** UNACCOUNTED REQUESTS **");

  using server::JsonValue;
  JsonValue obj = JsonValue::Object();
  obj.Set("requests", JsonValue::Number(static_cast<double>(total)));
  obj.Set("ok", JsonValue::Number(static_cast<double>(ok.load())));
  obj.Set("shed", JsonValue::Number(static_cast<double>(shed.load())));
  obj.Set("other", JsonValue::Number(static_cast<double>(other.load())));
  obj.Set("all_accounted",
          JsonValue::Bool(other.load() == 0 && ok.load() + shed.load() == total));
  return obj;
}

int Run(bool smoke, const std::string& json_path) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const int64_t movies = smoke ? 500 : 2000;
  std::printf("Personalization server load bench — %lld movies, %zu queries\n",
              static_cast<long long>(movies), BenchQueries().size());

  workload::MovieDbConfig db_config;
  db_config.n_movies = movies;
  db_config.n_directors = std::max<int64_t>(10, movies / 10);
  db_config.n_actors = std::max<int64_t>(20, movies / 5);
  auto db_or = workload::BuildMovieDatabase(db_config);
  if (!db_or.ok()) {
    std::fprintf(stderr, "db: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  storage::Database db = *std::move(db_or);
  server::ProfileStore profiles(&db);
  auto profile = workload::GenerateProfile({}, db_config);
  if (!profile.ok() || !profiles.Put("default", *profile).ok()) {
    std::fprintf(stderr, "cannot build the bench profile\n");
    return 1;
  }

  server::ServerOptions options;
  options.port = 0;
  server::Server server(&db, &profiles, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("server on 127.0.0.1:%d\n\n", server.port());

  auto reference = ReferenceResults(db, profiles, options);

  std::vector<size_t> concurrencies =
      smoke ? std::vector<size_t>{1, 8} : std::vector<size_t>{1, 8, 32};
  std::vector<double> deadlines =
      smoke ? std::vector<double>{50.0, 0.0}
            : std::vector<double>{10.0, 50.0, 0.0};
  const size_t requests_per_client = smoke ? 4 : 16;

  std::printf("%6s %9s %9s %10s %8s %8s %6s %6s %6s %10s\n", "conc",
              "deadline", "requests", "q/s", "p50_ms", "p99_ms", "ok", "degr",
              "err", "identity");
  server::JsonValue cells = server::JsonValue::Array();
  size_t mismatches = 0;
  for (size_t concurrency : concurrencies) {
    for (double deadline_ms : deadlines) {
      // Identity is only checked where it must hold exactly: with no
      // deadline nothing can degrade, so the wire answer has to equal the
      // direct library answer bit for bit.
      const bool check = deadline_ms == 0.0;
      CellResult cell = RunCell(server.port(), concurrency, deadline_ms,
                                requests_per_client,
                                check ? &reference : nullptr);
      size_t errors = cell.transport_errors;
      for (const auto& [code, n] : cell.error_codes) errors += n;
      char deadline_buf[16];
      if (deadline_ms > 0.0) {
        std::snprintf(deadline_buf, sizeof deadline_buf, "%.0fms",
                      deadline_ms);
      } else {
        std::snprintf(deadline_buf, sizeof deadline_buf, "inf");
      }
      char identity_buf[32];
      if (check) {
        std::snprintf(identity_buf, sizeof identity_buf, "%zu/%zu ok",
                      cell.identity_checked - cell.identity_mismatches,
                      cell.identity_checked);
      } else {
        std::snprintf(identity_buf, sizeof identity_buf, "-");
      }
      std::printf("%6zu %9s %9zu %10.1f %8.2f %8.2f %6zu %6zu %6zu %10s\n",
                  cell.concurrency, deadline_buf, cell.requests, cell.qps,
                  cell.p50_ms, cell.p99_ms, cell.ok, cell.degraded, errors,
                  identity_buf);
      mismatches += cell.identity_mismatches;
      cells.Append(CellToJson(cell));
    }
  }
  server.Stop();
  std::printf("\n");

  server::JsonValue shed_probe = RunShedProbe(db, profiles, smoke);

  using server::JsonValue;
  JsonValue record = JsonValue::Object();
  record.Set("bench", JsonValue::Str("server"));
  JsonValue workload = JsonValue::Object();
  workload.Set("movies", JsonValue::Number(static_cast<double>(movies)));
  workload.Set("queries",
               JsonValue::Number(static_cast<double>(BenchQueries().size())));
  workload.Set("k", JsonValue::Number(
                        static_cast<double>(options.default_max_k)));
  workload.Set("algorithm", JsonValue::Str(options.default_algorithm));
  record.Set("workload", std::move(workload));
  record.Set("hardware_threads",
             JsonValue::Number(std::thread::hardware_concurrency()));
  record.Set("smoke", JsonValue::Bool(smoke));
  record.Set("cells", std::move(cells));
  record.Set("shed_probe", std::move(shed_probe));

  std::string json = record.Dump();
  std::printf("%s\n", json.c_str());
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "%zu identity mismatches vs direct Personalize()\n",
                 mismatches);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return Run(smoke, json_path);
}
