// Closed-loop load bench for the personalization server: an in-process
// server::Server on a real loopback socket, hammered by closed-loop client
// threads over the full concurrency {1, 8, 32} x deadline {10 ms, 50 ms,
// inf} grid.
//
// Each cell reports throughput, client-observed p50/p99 latency, degraded
// and errored request counts. In the infinite-deadline cells every
// response is additionally compared field-for-field against a direct
// in-process Personalize() with the server's own defaults — the wire path
// must be bit-identical to the library path. A final shed probe restarts
// the server with max_pending = 1 and verifies that every overloaded
// request comes back as an explicit ResourceExhausted error, never a
// silent drop or a hang (the bench finishing IS the no-hung-connections
// check: every client runs a blocking closed loop).
//
// A second phase exercises the plan cache with a repeated-query workload:
// a cold pass where every request carries a never-seen-before query (every
// Prepare() misses), then a Zipfian-skewed warm pass over a fixed query
// pool that was prepared once beforehand (every Prepare() hits). Both
// passes run the same query shapes through the same server, so the
// qps ratio isolates what the prepared-personalization pipeline saves.
// Warm responses are compared field-for-field against direct in-process
// Personalize() answers — a cache hit must be bit-identical to a cold
// solve. The phase writes its own record (default BENCH_plan_cache.json).
//
// A third phase sweeps the sharded, demand-paged profile tier over
// profile counts {1k, 100k, 1M} (smoke: {1k, 10k}): each count's shard
// directory is built by writing per-shard snapshots directly (routing ids
// with the store's own hash), opened cold, then measured with a
// sequential cold-Find scan (p99_cold_ms — the page-in path) and a
// multi-threaded Zipfian Find workload (the steady-state mix). The cell
// records the accounted resident bytes against the budget — the bounded-
// memory claim — plus VmRSS, page-in/eviction counters and open time.
// Writes its own record (default BENCH_shard.json).
//
// Flags: --smoke        reduced grid (concurrency {1,8} x deadline {50ms, inf})
//        --json P       write the load-bench record to P (BENCH_server.json)
//        --plan-json P  write the plan-cache record to P (BENCH_plan_cache.json)
//        --shard-json P write the shard-sweep record to P (BENCH_shard.json)

#include <algorithm>
#include <cmath>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/stopwatch.h"
#include "construct/personalizer.h"
#include "server/client.h"
#include "server/io_util.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/profile_store.h"
#include "server/server.h"
#include "server/shard/sharded_profile_store.h"
#include "storage/journal/file.h"
#include "storage/journal/snapshot.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"

namespace {

using namespace cqp;  // NOLINT

const std::vector<std::string>& BenchQueries() {
  static const std::vector<std::string>& queries =
      *new std::vector<std::string>{
          "SELECT title FROM MOVIE",
          "SELECT title FROM MOVIE WHERE MOVIE.year >= 1990",
          "SELECT MOVIE.title, DIRECTOR.name FROM MOVIE, DIRECTOR "
          "WHERE MOVIE.did = DIRECTOR.did",
      };
  return queries;
}

struct CellResult {
  size_t concurrency = 0;
  double deadline_ms = 0.0;  ///< 0 = unlimited
  size_t requests = 0;
  size_t ok = 0;
  size_t degraded = 0;
  size_t transport_errors = 0;  ///< broken connection / unparsable frame
  std::map<std::string, size_t> error_codes;  ///< typed wire errors
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t identity_checked = 0;
  size_t identity_mismatches = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size()));
  return values[std::min(idx, values.size() - 1)];
}

/// Direct in-process reference answers, one per query, computed with
/// exactly the server's defaults (and no plan cache).
std::vector<construct::PersonalizeResult> ReferenceResults(
    const storage::Database& db, server::ProfileStore& profiles,
    const server::ServerOptions& options,
    const std::vector<std::string>& queries) {
  auto graph = profiles.Find("default");
  CQP_CHECK(graph != nullptr);
  construct::Personalizer personalizer(&db, graph.get());
  std::vector<construct::PersonalizeResult> results;
  for (const std::string& sql : queries) {
    construct::PersonalizeRequest request;
    request.sql = sql;
    request.problem = options.default_problem;
    request.algorithm = options.default_algorithm;
    request.space_options.max_k = options.default_max_k;
    auto result = personalizer.Personalize(request);
    CQP_CHECK(result.ok());
    results.push_back(*std::move(result));
  }
  return results;
}

bool MatchesReference(const server::PersonalizeResultPayload& got,
                      const construct::PersonalizeResult& want) {
  return got.final_sql == want.final_sql &&
         got.feasible == want.solution.feasible &&
         got.chosen == std::vector<int32_t>(want.solution.chosen.begin(),
                                            want.solution.chosen.end()) &&
         got.doi == want.solution.params.doi &&
         got.cost_ms == want.solution.params.cost_ms &&
         got.size == want.solution.params.size;
}

CellResult RunCell(int port, size_t concurrency, double deadline_ms,
                   size_t requests_per_client,
                   const std::vector<construct::PersonalizeResult>* reference) {
  CellResult cell;
  cell.concurrency = concurrency;
  cell.deadline_ms = deadline_ms;
  cell.requests = concurrency * requests_per_client;

  std::mutex mu;  // guards the aggregates below
  std::vector<double> latencies;
  Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      server::Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        std::lock_guard<std::mutex> lock(mu);
        cell.transport_errors += requests_per_client;
        return;
      }
      std::vector<double> my_latencies;
      size_t my_ok = 0, my_degraded = 0, my_transport = 0;
      size_t my_checked = 0, my_mismatched = 0;
      std::map<std::string, size_t> my_errors;
      for (size_t i = 0; i < requests_per_client; ++i) {
        size_t query = (c * requests_per_client + i) % BenchQueries().size();
        server::WireRequest request;
        request.op = server::RequestOp::kPersonalize;
        request.personalize.sql = BenchQueries()[query];
        request.personalize.deadline_ms = deadline_ms;
        Stopwatch timer;
        auto response = client.Call(request);
        my_latencies.push_back(timer.ElapsedMillis());
        if (!response.ok()) {
          ++my_transport;
          continue;  // connection is gone; further calls fail fast
        }
        if (!response->ok()) {
          ++my_errors[StatusCodeName(response->status.code())];
          continue;
        }
        ++my_ok;
        const server::PersonalizeResultPayload& r = *response->personalize;
        if (r.degraded) ++my_degraded;
        if (reference != nullptr) {
          ++my_checked;
          if (!MatchesReference(r, (*reference)[query])) ++my_mismatched;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), my_latencies.begin(),
                       my_latencies.end());
      cell.ok += my_ok;
      cell.degraded += my_degraded;
      cell.transport_errors += my_transport;
      cell.identity_checked += my_checked;
      cell.identity_mismatches += my_mismatched;
      for (const auto& [code, n] : my_errors) cell.error_codes[code] += n;
    });
  }
  for (std::thread& t : clients) t.join();
  cell.wall_ms = wall.ElapsedMillis();
  cell.qps = cell.wall_ms > 0.0 ? 1000.0 * static_cast<double>(cell.requests) /
                                      cell.wall_ms
                                : 0.0;
  cell.p50_ms = Percentile(latencies, 0.50);
  cell.p99_ms = Percentile(latencies, 0.99);
  return cell;
}

server::JsonValue CellToJson(const CellResult& cell) {
  using server::JsonValue;
  JsonValue obj = JsonValue::Object();
  obj.Set("concurrency",
          JsonValue::Number(static_cast<double>(cell.concurrency)));
  obj.Set("deadline_ms", cell.deadline_ms > 0.0
                             ? JsonValue::Number(cell.deadline_ms)
                             : JsonValue::Null());
  obj.Set("requests", JsonValue::Number(static_cast<double>(cell.requests)));
  obj.Set("ok", JsonValue::Number(static_cast<double>(cell.ok)));
  obj.Set("degraded", JsonValue::Number(static_cast<double>(cell.degraded)));
  obj.Set("transport_errors",
          JsonValue::Number(static_cast<double>(cell.transport_errors)));
  JsonValue errors = JsonValue::Object();
  for (const auto& [code, n] : cell.error_codes) {
    errors.Set(code, JsonValue::Number(static_cast<double>(n)));
  }
  obj.Set("error_codes", std::move(errors));
  obj.Set("wall_ms", JsonValue::Number(cell.wall_ms));
  obj.Set("qps", JsonValue::Number(cell.qps));
  obj.Set("p50_ms", JsonValue::Number(cell.p50_ms));
  obj.Set("p99_ms", JsonValue::Number(cell.p99_ms));
  obj.Set("identity_checked",
          JsonValue::Number(static_cast<double>(cell.identity_checked)));
  obj.Set("identity_mismatches",
          JsonValue::Number(static_cast<double>(cell.identity_mismatches)));
  return obj;
}

// ------------------------------------------------------- multiplexed sweep

/// One multiplexed bench connection: nonblocking fd, a pipelined outbox,
/// and send timestamps for per-request latency under pipelining.
struct MuxConn {
  int fd = -1;
  std::string outbox;
  std::string inbox;
  std::deque<double> send_times;
  size_t sent = 0;
  size_t received = 0;
};

struct MuxCellResult {
  size_t connections = 0;
  size_t pipeline = 0;
  size_t requests = 0;
  size_t ok = 0;
  size_t errors = 0;  ///< typed wire errors + unparsable frames
  size_t connect_failures = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

int ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Drives `connections` pipelined connections from ONE thread with poll():
/// each keeps `pipeline` requests in flight until it has sent
/// `requests_per_conn`. This is how the sweep reaches 1024 concurrent
/// connections on a box where 1024 blocking client threads would be the
/// bottleneck, not the server. Every response is fully parsed (a real
/// client would), so driver-side parse cost is included in the clock —
/// honest, since driver and server share the host.
MuxCellResult RunMuxCell(int port, size_t connections, size_t pipeline,
                         size_t requests_per_conn, bool personalize) {
  MuxCellResult cell;
  cell.connections = connections;
  cell.pipeline = pipeline;

  std::vector<MuxConn> conns(connections);
  for (MuxConn& conn : conns) {
    conn.fd = ConnectLoopback(port);
    if (conn.fd < 0) {
      ++cell.connect_failures;
      continue;
    }
    server::SetNonBlocking(conn.fd, true);
  }

  std::vector<double> latencies;
  latencies.reserve(connections * requests_per_conn);
  Stopwatch wall;

  size_t query_cursor = 0;
  auto enqueue = [&](MuxConn& conn) {
    server::WireRequest request;
    if (personalize) {
      request.op = server::RequestOp::kPersonalize;
      request.personalize.sql =
          BenchQueries()[query_cursor++ % BenchQueries().size()];
    } else {
      request.op = server::RequestOp::kPing;
    }
    conn.outbox += server::SerializeRequest(request) + "\n";
    conn.send_times.push_back(wall.ElapsedMillis());
    ++conn.sent;
  };
  for (MuxConn& conn : conns) {
    if (conn.fd < 0) continue;
    for (size_t i = 0; i < std::min(pipeline, requests_per_conn); ++i) {
      enqueue(conn);
    }
  }

  std::vector<pollfd> pfds(connections);
  for (;;) {
    bool live = false;
    for (size_t i = 0; i < connections; ++i) {
      MuxConn& conn = conns[i];
      pfds[i].fd = conn.fd;
      pfds[i].events = 0;
      pfds[i].revents = 0;
      if (conn.fd < 0) continue;
      if (conn.received < conn.sent) pfds[i].events |= POLLIN;
      if (!conn.outbox.empty()) pfds[i].events |= POLLOUT;
      if (pfds[i].events != 0) live = true;
    }
    if (!live) break;
    if (::poll(pfds.data(), pfds.size(), 10000) <= 0) break;

    for (size_t i = 0; i < connections; ++i) {
      MuxConn& conn = conns[i];
      if (conn.fd < 0 || pfds[i].revents == 0) continue;

      if ((pfds[i].revents & POLLOUT) != 0 && !conn.outbox.empty()) {
        ssize_t n = ::send(conn.fd, conn.outbox.data(), conn.outbox.size(),
                           MSG_NOSIGNAL);
        if (n > 0) {
          conn.outbox.erase(0, static_cast<size_t>(n));
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          cell.errors += conn.sent - conn.received;
          ::close(conn.fd);
          conn.fd = -1;
          continue;
        }
      }

      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        char chunk[16384];
        ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
          cell.errors += conn.sent - conn.received;
          ::close(conn.fd);
          conn.fd = -1;
          continue;
        }
        if (n < 0) continue;
        conn.inbox.append(chunk, static_cast<size_t>(n));
        size_t nl;
        while ((nl = conn.inbox.find('\n')) != std::string::npos) {
          std::string line = conn.inbox.substr(0, nl);
          conn.inbox.erase(0, nl + 1);
          if (!conn.send_times.empty()) {
            latencies.push_back(wall.ElapsedMillis() - conn.send_times.front());
            conn.send_times.pop_front();
          }
          auto response = server::ParseResponse(line);
          if (response.ok() && response->ok()) {
            ++cell.ok;
          } else {
            ++cell.errors;
          }
          ++conn.received;
          if (conn.sent < requests_per_conn) enqueue(conn);
        }
      }
    }
  }

  cell.wall_ms = wall.ElapsedMillis();
  for (MuxConn& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  cell.requests = cell.ok + cell.errors;
  cell.qps = cell.wall_ms > 0.0
                 ? 1000.0 * static_cast<double>(cell.requests) / cell.wall_ms
                 : 0.0;
  cell.p50_ms = Percentile(latencies, 0.50);
  cell.p99_ms = Percentile(latencies, 0.99);
  return cell;
}

server::JsonValue MuxCellToJson(const char* op, const MuxCellResult& cell) {
  using server::JsonValue;
  JsonValue obj = JsonValue::Object();
  obj.Set("op", JsonValue::Str(op));
  obj.Set("connections",
          JsonValue::Number(static_cast<double>(cell.connections)));
  obj.Set("pipeline", JsonValue::Number(static_cast<double>(cell.pipeline)));
  obj.Set("requests", JsonValue::Number(static_cast<double>(cell.requests)));
  obj.Set("ok", JsonValue::Number(static_cast<double>(cell.ok)));
  obj.Set("errors", JsonValue::Number(static_cast<double>(cell.errors)));
  obj.Set("connect_failures",
          JsonValue::Number(static_cast<double>(cell.connect_failures)));
  obj.Set("wall_ms", JsonValue::Number(cell.wall_ms));
  obj.Set("qps", JsonValue::Number(cell.qps));
  obj.Set("p50_ms", JsonValue::Number(cell.p50_ms));
  obj.Set("p99_ms", JsonValue::Number(cell.p99_ms));
  return obj;
}

/// Held-connections phase: open as many idle connections as the fd
/// rlimit allows toward `target` (client and server fds share one process
/// here, so each connection costs two), then measure ping latency through
/// the noise — the epoll loops must not degrade because thousands of
/// idle fds sit in their interest sets.
server::JsonValue RunHeldConnections(int port, size_t target) {
  using server::JsonValue;
  rlimit limit{};
  ::getrlimit(RLIMIT_NOFILE, &limit);
  // Reserve headroom for the db, journals, epoll/eventfds and the probe.
  size_t max_held = 0;
  if (limit.rlim_cur > 1024) {
    max_held = (static_cast<size_t>(limit.rlim_cur) - 1024) / 2;
  }
  const size_t goal = std::min(target, max_held);

  std::vector<int> held;
  held.reserve(goal);
  while (held.size() < goal) {
    int fd = ConnectLoopback(port);
    if (fd < 0) break;
    held.push_back(fd);
  }

  // A quick pipelined ping probe while the held fds idle in the loops.
  MuxCellResult probe = RunMuxCell(port, 32, 4, 64, /*personalize=*/false);

  JsonValue obj = JsonValue::Object();
  obj.Set("target", JsonValue::Number(static_cast<double>(target)));
  obj.Set("held", JsonValue::Number(static_cast<double>(held.size())));
  obj.Set("rlimit_nofile",
          JsonValue::Number(static_cast<double>(limit.rlim_cur)));
  obj.Set("rlimit_capped", JsonValue::Bool(goal < target));
  obj.Set("probe", MuxCellToJson("ping", probe));
  std::printf(
      "held connections: %zu/%zu idle (rlimit %llu, client+server share "
      "the fd table), probe p50 %.2f ms p99 %.2f ms, %zu/%zu ok\n",
      held.size(), target, static_cast<unsigned long long>(limit.rlim_cur),
      probe.p50_ms, probe.p99_ms, probe.ok, probe.requests);
  for (int fd : held) ::close(fd);
  return obj;
}

/// Overload probe: a server with max_pending = 1 and one worker must
/// answer every overloaded request with an explicit ResourceExhausted —
/// ok + shed must account for every single request sent.
server::JsonValue RunShedProbe(const storage::Database& db,
                               server::ProfileStore& profiles, bool smoke) {
  server::ServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.admission.max_pending = 1;
  server::Server overloaded(&db, &profiles, options);
  CQP_CHECK(overloaded.Start().ok());

  const size_t clients = smoke ? 4 : 8;
  const size_t per_client = smoke ? 4 : 8;
  std::atomic<size_t> ok{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      server::Client client;
      if (!client.Connect("127.0.0.1", overloaded.port()).ok()) {
        other.fetch_add(per_client);
        return;
      }
      for (size_t i = 0; i < per_client; ++i) {
        server::WireRequest request;
        request.op = server::RequestOp::kPersonalize;
        request.personalize.sql = BenchQueries()[0];
        auto response = client.Call(request);
        if (!response.ok()) {
          other.fetch_add(1);
        } else if (response->ok()) {
          ok.fetch_add(1);
        } else if (response->status.code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  overloaded.Stop();

  const size_t total = clients * per_client;
  std::printf(
      "shed probe (max_pending=1): %zu requests -> %zu ok, %zu shed "
      "(ResourceExhausted), %zu other%s\n",
      total, ok.load(), shed.load(), other.load(),
      other.load() == 0 && ok.load() + shed.load() == total
          ? " -- every request accounted for"
          : "  ** UNACCOUNTED REQUESTS **");

  using server::JsonValue;
  JsonValue obj = JsonValue::Object();
  obj.Set("requests", JsonValue::Number(static_cast<double>(total)));
  obj.Set("ok", JsonValue::Number(static_cast<double>(ok.load())));
  obj.Set("shed", JsonValue::Number(static_cast<double>(shed.load())));
  obj.Set("other", JsonValue::Number(static_cast<double>(other.load())));
  obj.Set("all_accounted",
          JsonValue::Bool(other.load() == 0 && ok.load() + shed.load() == total));
  return obj;
}

// ---------------------------------------------------------------------------
// Plan-cache phase: cold (all-miss) vs Zipfian warm (all-hit) throughput.

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// `n` pool indices drawn from a Zipf(s) distribution over `pool` ranks:
/// rank r is picked with probability proportional to 1/r^s. Deterministic.
std::vector<size_t> ZipfSequence(size_t n, size_t pool, double s,
                                 uint64_t seed) {
  std::vector<double> cdf(pool);
  double sum = 0.0;
  for (size_t r = 0; r < pool; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = sum;
  }
  std::vector<size_t> sequence;
  sequence.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double u = static_cast<double>(SplitMix64(seed) >> 11) * 0x1.0p-53 * sum;
    size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    sequence.push_back(std::min(rank, pool - 1));
  }
  return sequence;
}

/// One of three query shapes (single table, two-way join, three-way join)
/// with a caller-chosen year literal. Cold and warm passes rotate the same
/// shapes and interleave their year literals (cold odd, pool even) inside
/// the generator's year domain, so same-shape queries in the two passes
/// have near-identical selectivity and search spaces and differ only in
/// their canonical fingerprint. That keeps the passes apples-to-apples —
/// the qps gap is preparation cost, not a selectivity accident.
std::string ShapedQuery(size_t shape, int year) {
  if (shape % 3 == 2) {
    return "SELECT MOVIE.title, DIRECTOR.name FROM MOVIE, DIRECTOR "
           "WHERE MOVIE.did = DIRECTOR.did AND MOVIE.year >= " +
           std::to_string(year);
  }
  return "SELECT title FROM MOVIE WHERE MOVIE.year >= " +
         std::to_string(year);
}

/// The repeated-query pool (even years 1930, 1932, ...).
std::string PoolQuery(size_t i) {
  return ShapedQuery(i, 1930 + 2 * static_cast<int>(i));
}

/// Cold-pass queries (odd years 1931, 1933, ...): the same shape rotation,
/// but a literal no other request (and no pool entry) uses, so every
/// Prepare() is a guaranteed plan-cache miss.
std::string ColdQuery(size_t i) {
  return ShapedQuery(i, 1931 + 2 * static_cast<int>(i));
}

struct PlanPassResult {
  size_t requests = 0;
  size_t ok = 0;
  size_t errors = 0;  ///< transport + typed wire errors
  size_t plan_hits = 0;  ///< responses reporting plan_cache_hit
  size_t identity_checked = 0;
  size_t identity_mismatches = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double server_ms_total = 0.0;  ///< sum of per-response server_ms
  double search_ms_total = 0.0;  ///< sum of per-response search_wall_ms
};

/// Closed-loop pass: client c sends queries[c*per_client + i] in order.
/// `reference[j]` (when non-empty) is the direct-Personalize answer request
/// j's response must match field for field.
PlanPassResult RunPlanPass(
    int port, size_t concurrency, const std::vector<std::string>& queries,
    const std::vector<const construct::PersonalizeResult*>& reference) {
  PlanPassResult pass;
  pass.requests = queries.size();
  const size_t per_client = queries.size() / concurrency;
  std::mutex mu;  // guards the aggregates below
  std::vector<double> latencies;
  Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      server::Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        std::lock_guard<std::mutex> lock(mu);
        pass.errors += per_client;
        return;
      }
      std::vector<double> my_latencies;
      size_t my_ok = 0, my_errors = 0, my_hits = 0;
      double my_server_ms = 0.0, my_search_ms = 0.0;
      size_t my_checked = 0, my_mismatched = 0;
      for (size_t i = 0; i < per_client; ++i) {
        const size_t j = c * per_client + i;
        server::WireRequest request;
        request.op = server::RequestOp::kPersonalize;
        request.personalize.sql = queries[j];
        Stopwatch timer;
        auto response = client.Call(request);
        my_latencies.push_back(timer.ElapsedMillis());
        if (!response.ok() || !response->ok()) {
          ++my_errors;
          continue;
        }
        ++my_ok;
        const server::PersonalizeResultPayload& r = *response->personalize;
        if (r.plan_cache_hit) ++my_hits;
        my_server_ms += r.server_ms;
        my_search_ms += r.search_wall_ms;
        if (!reference.empty()) {
          ++my_checked;
          if (!MatchesReference(r, *reference[j])) ++my_mismatched;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), my_latencies.begin(),
                       my_latencies.end());
      pass.ok += my_ok;
      pass.errors += my_errors;
      pass.plan_hits += my_hits;
      pass.server_ms_total += my_server_ms;
      pass.search_ms_total += my_search_ms;
      pass.identity_checked += my_checked;
      pass.identity_mismatches += my_mismatched;
    });
  }
  for (std::thread& t : clients) t.join();
  pass.wall_ms = wall.ElapsedMillis();
  pass.qps = pass.wall_ms > 0.0
                 ? 1000.0 * static_cast<double>(pass.requests) / pass.wall_ms
                 : 0.0;
  pass.p50_ms = Percentile(latencies, 0.50);
  pass.p99_ms = Percentile(latencies, 0.99);
  return pass;
}

server::JsonValue PlanPassToJson(const char* name, size_t concurrency,
                                 const PlanPassResult& pass) {
  using server::JsonValue;
  JsonValue obj = JsonValue::Object();
  obj.Set("pass", JsonValue::Str(name));
  obj.Set("concurrency",
          JsonValue::Number(static_cast<double>(concurrency)));
  obj.Set("requests", JsonValue::Number(static_cast<double>(pass.requests)));
  obj.Set("ok", JsonValue::Number(static_cast<double>(pass.ok)));
  obj.Set("transport_errors",
          JsonValue::Number(static_cast<double>(pass.errors)));
  obj.Set("cache_hits",
          JsonValue::Number(static_cast<double>(pass.plan_hits)));
  obj.Set("wall_ms", JsonValue::Number(pass.wall_ms));
  obj.Set("qps", JsonValue::Number(pass.qps));
  obj.Set("p50_ms", JsonValue::Number(pass.p50_ms));
  obj.Set("p99_ms", JsonValue::Number(pass.p99_ms));
  obj.Set("server_ms_avg",
          JsonValue::Number(pass.ok > 0 ? pass.server_ms_total /
                                              static_cast<double>(pass.ok)
                                        : 0.0));
  obj.Set("search_ms_avg",
          JsonValue::Number(pass.ok > 0 ? pass.search_ms_total /
                                              static_cast<double>(pass.ok)
                                        : 0.0));
  obj.Set("identity_checked",
          JsonValue::Number(static_cast<double>(pass.identity_checked)));
  obj.Set("identity_mismatches",
          JsonValue::Number(static_cast<double>(pass.identity_mismatches)));
  return obj;
}

/// Runs the cold/warm plan-cache comparison on its own server (fresh
/// ProfileStore, so the main grid's cache traffic doesn't pollute the
/// counters) and returns the JSON record. Adds any warm-path identity
/// mismatches (and warm requests that failed to hit the cache) to
/// `*failures`.
server::JsonValue RunPlanCacheWorkload(const storage::Database& db,
                                       const prefs::Profile& profile,
                                       bool smoke, size_t* failures) {
  server::ProfileStore profiles(&db);
  CQP_CHECK(profiles.Put("default", profile).ok());
  server::ServerOptions options;
  options.port = 0;
  server::Server server(&db, &profiles, options);
  CQP_CHECK(server.Start().ok());

  // Year literals interleave cold/pool; keep cold small enough that every
  // odd year stays inside the generator's [min_year, max_year] domain.
  const size_t concurrency = smoke ? 2 : 4;
  const size_t pool = smoke ? 8 : 12;
  const size_t cold_per_client = smoke ? 12 : 8;
  const size_t warm_per_client = smoke ? 32 : 64;
  const double zipf_s = 1.1;

  // Cold: every request is a first-seen query, so every Prepare() misses.
  std::vector<std::string> cold_queries;
  for (size_t i = 0; i < concurrency * cold_per_client; ++i) {
    cold_queries.push_back(ColdQuery(i));
  }
  PlanPassResult cold = RunPlanPass(server.port(), concurrency, cold_queries,
                                    /*reference=*/{});

  // Prepare the pool once (untimed), then hammer it with a Zipfian-skewed
  // sequence: every warm request must be a plan-cache hit.
  std::vector<std::string> pool_queries;
  for (size_t i = 0; i < pool; ++i) pool_queries.push_back(PoolQuery(i));
  {
    server::Client warmup;
    CQP_CHECK(warmup.Connect("127.0.0.1", server.port()).ok());
    for (const std::string& sql : pool_queries) {
      server::WireRequest request;
      request.op = server::RequestOp::kPersonalize;
      request.personalize.sql = sql;
      auto response = warmup.Call(request);
      CQP_CHECK(response.ok() && response->ok());
    }
  }
  auto pool_reference = ReferenceResults(db, profiles, options, pool_queries);
  std::vector<size_t> sequence =
      ZipfSequence(concurrency * warm_per_client, pool, zipf_s, /*seed=*/42);
  std::vector<std::string> warm_queries;
  std::vector<const construct::PersonalizeResult*> warm_reference;
  for (size_t rank : sequence) {
    warm_queries.push_back(pool_queries[rank]);
    warm_reference.push_back(&pool_reference[rank]);
  }
  PlanPassResult warm =
      RunPlanPass(server.port(), concurrency, warm_queries, warm_reference);

  // Snapshot the server-side cache counters before shutting down.
  construct::PlanCacheStats plan_stats = profiles.plans().stats();
  server.Stop();

  const double speedup = cold.qps > 0.0 ? warm.qps / cold.qps : 0.0;
  if (cold.ok > 0 && warm.ok > 0) {
    std::printf(
        "plan cache server-side: cold %.3f ms/req (search %.3f), "
        "warm %.3f ms/req (search %.3f)\n",
        cold.server_ms_total / static_cast<double>(cold.ok),
        cold.search_ms_total / static_cast<double>(cold.ok),
        warm.server_ms_total / static_cast<double>(warm.ok),
        warm.search_ms_total / static_cast<double>(warm.ok));
  }
  std::printf(
      "plan cache: cold %.1f q/s (%zu misses), warm %.1f q/s "
      "(%zu/%zu hits, zipf s=%.1f over %zu queries) -> %.2fx%s\n",
      cold.qps, cold.requests, warm.qps, warm.plan_hits, warm.requests,
      zipf_s, pool, speedup,
      speedup >= 2.0 ? "" : "  ** below 2x target **");
  if (warm.identity_mismatches > 0) {
    std::fprintf(stderr,
                 "%zu warm responses differ from direct Personalize()\n",
                 warm.identity_mismatches);
    *failures += warm.identity_mismatches;
  }
  if (warm.plan_hits != warm.ok) {
    std::fprintf(stderr, "%zu warm responses missed the plan cache\n",
                 warm.ok - warm.plan_hits);
    *failures += warm.ok - warm.plan_hits;
  }

  using server::JsonValue;
  JsonValue record = JsonValue::Object();
  record.Set("bench", JsonValue::Str("plan_cache"));
  JsonValue workload = JsonValue::Object();
  workload.Set("pool", JsonValue::Number(static_cast<double>(pool)));
  workload.Set("zipf_s", JsonValue::Number(zipf_s));
  workload.Set("k",
               JsonValue::Number(static_cast<double>(options.default_max_k)));
  workload.Set("algorithm", JsonValue::Str(options.default_algorithm));
  record.Set("workload", std::move(workload));
  record.Set("smoke", JsonValue::Bool(smoke));
  JsonValue cells = JsonValue::Array();
  cells.Append(PlanPassToJson("cold", concurrency, cold));
  cells.Append(PlanPassToJson("warm", concurrency, warm));
  record.Set("cells", std::move(cells));
  record.Set("warm_speedup", JsonValue::Number(speedup));
  record.Set("meets_2x_target", JsonValue::Bool(speedup >= 2.0));
  JsonValue plans = JsonValue::Object();
  plans.Set("hits", JsonValue::Number(static_cast<double>(plan_stats.hits)));
  plans.Set("misses",
            JsonValue::Number(static_cast<double>(plan_stats.misses)));
  plans.Set("evictions",
            JsonValue::Number(static_cast<double>(plan_stats.evictions)));
  plans.Set("invalidations", JsonValue::Number(static_cast<double>(
                                 plan_stats.invalidations)));
  plans.Set("entries",
            JsonValue::Number(static_cast<double>(plan_stats.entries)));
  record.Set("plan_cache", std::move(plans));
  return record;
}

// ---------------------------------------------------------------------------
// Shard sweep: demand-paged tier over {1k, 100k, 1M} profiles.

/// VmRSS in MB from /proc/self/status (0.0 when unavailable).
double RssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

std::string SweepId(size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "u%07zu", i);
  return buf;
}

/// Builds a `count`-profile shard directory WITHOUT `count` journaled
/// puts: one Open() lays down the MANIFEST and the shard skeletons, then
/// each shard's snapshot is written directly (ids routed with the store's
/// own hash, versions numbered per shard — exactly the state a compaction
/// would have produced).
bool BuildShardDirectory(const storage::Database& db, const std::string& dir,
                         size_t count, size_t num_shards,
                         const std::vector<std::string>& texts) {
  {
    server::shard::ShardedStoreOptions options;
    options.dir = dir;
    options.num_shards = num_shards;
    auto store = server::shard::ShardedProfileStore::Open(&db, options);
    if (!store.ok()) {
      std::fprintf(stderr, "shard skeleton: %s\n",
                   store.status().ToString().c_str());
      return false;
    }
  }
  storage::FileSystem& fs = storage::PosixFileSystem();
  for (size_t shard = 0; shard < num_shards; ++shard) {
    storage::journal::SnapshotData data;
    for (size_t i = 0; i < count; ++i) {
      const std::string id = SweepId(i);
      if (server::shard::ShardedProfileStore::ShardIndexForId(
              id, num_shards) != shard) {
        continue;
      }
      storage::journal::SnapshotEntry entry;
      entry.key = id;
      entry.version = data.next_version++;
      entry.value = texts[i % texts.size()];
      data.entries.push_back(std::move(entry));
    }
    const std::string path =
        dir + "/" + server::shard::ShardedProfileStore::ShardDirName(shard) +
        "/snapshot";
    Status written = storage::journal::WriteSnapshot(fs, path, data);
    if (!written.ok()) {
      std::fprintf(stderr, "snapshot %s: %s\n", path.c_str(),
                   written.ToString().c_str());
      return false;
    }
  }
  return true;
}

server::JsonValue RunShardSweep(const storage::Database& db,
                                const workload::MovieDbConfig& db_config,
                                bool smoke, size_t* failures) {
  using server::JsonValue;
  const std::vector<size_t> counts = smoke
                                         ? std::vector<size_t>{1000, 10000}
                                         : std::vector<size_t>{1000, 100000,
                                                               1000000};
  const size_t num_shards = smoke ? 4 : 8;
  // Full runs use a budget the Zipfian tail actually overflows (the mixed
  // phase touches ~20 MB of distinct graphs at 100k+ profiles), so the
  // checked-in record shows the LRU evicting, not just absorbing.
  const uint64_t budget_bytes = smoke ? (4ull << 20) : (16ull << 20);
  const size_t cold_finds = smoke ? 300 : 1000;
  const size_t mixed_finds = smoke ? 2000 : 20000;
  const size_t mixed_threads = 4;
  const double zipf_s = 1.1;

  // A small pool of distinct profile texts; the tier pages TEXT + graph,
  // so distinct ids sharing a text still cost full per-id residency.
  std::vector<std::string> texts;
  for (uint64_t seed = 50; seed < 58; ++seed) {
    workload::ProfileGenConfig config;
    config.seed = seed;
    config.n_genre_prefs = 3;
    config.n_director_prefs = 2;
    config.n_actor_prefs = 2;
    config.n_year_prefs = 2;
    config.n_duration_prefs = 1;
    auto profile = workload::GenerateProfile(config, db_config);
    CQP_CHECK(profile.ok());
    texts.push_back(profile->ToText());
  }

  char dir_template[] = "/tmp/cqp_shard_sweep.XXXXXX";
  char* base = ::mkdtemp(dir_template);
  CQP_CHECK(base != nullptr);
  const std::string base_dir = base;

  std::printf(
      "shard sweep: %zu shards, %.0f MB resident budget, zipf s=%.1f\n",
      num_shards, static_cast<double>(budget_bytes) / (1024.0 * 1024.0),
      zipf_s);
  std::printf("%9s %9s %9s %12s %10s %9s %9s %11s %10s %8s\n", "profiles",
              "build_ms", "open_ms", "p99_cold_ms", "q/s", "p99_ms",
              "page_ins", "evictions", "resident", "rss_mb");

  JsonValue cells = JsonValue::Array();
  std::vector<double> cold_p99s;
  for (size_t count : counts) {
    const std::string dir = base_dir + "/n" + std::to_string(count);
    Stopwatch build_timer;
    if (!BuildShardDirectory(db, dir, count, num_shards, texts)) {
      ++*failures;
      continue;
    }
    const double build_ms = build_timer.ElapsedMillis();

    server::shard::ShardedStoreOptions options;
    options.dir = dir;
    options.num_shards = num_shards;
    options.resident_budget_bytes = budget_bytes;
    Stopwatch open_timer;
    auto opened = server::shard::ShardedProfileStore::Open(&db, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "sweep open: %s\n",
                   opened.status().ToString().c_str());
      ++*failures;
      continue;
    }
    const double open_ms = open_timer.ElapsedMillis();
    server::shard::ShardedProfileStore& store = **opened;
    CQP_CHECK(store.size() == count);

    // Cold scan: single-threaded Finds of ids never touched since Open —
    // every one is a page-in (pread + parse + graph build).
    uint64_t rng = 0x5eed0000 + count;
    std::vector<double> cold_ms;
    cold_ms.reserve(cold_finds);
    for (size_t i = 0; i < cold_finds; ++i) {
      const std::string id = SweepId(SplitMix64(rng) % count);
      Stopwatch timer;
      server::ProfileStore::Snapshot snap = store.FindSnapshot(id);
      cold_ms.push_back(timer.ElapsedMillis());
      if (snap.graph == nullptr) ++*failures;
    }
    const double p50_cold = Percentile(cold_ms, 0.50);
    const double p99_cold = Percentile(cold_ms, 0.99);
    cold_p99s.push_back(p99_cold);

    // Zipfian mixed phase: hot ids stay resident, the tail pages in and
    // out, all under the byte budget.
    std::vector<size_t> sequence =
        ZipfSequence(mixed_finds, count, zipf_s, /*seed=*/count);
    std::atomic<size_t> null_finds{0};
    std::mutex mu;
    std::vector<double> mixed_ms;
    Stopwatch wall;
    {
      std::vector<std::thread> threads;
      const size_t per_thread = mixed_finds / mixed_threads;
      for (size_t t = 0; t < mixed_threads; ++t) {
        threads.emplace_back([&, t] {
          std::vector<double> my_ms;
          my_ms.reserve(per_thread);
          for (size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
            // Rank r → a fixed id: the Zipf head is the same ids all day.
            uint64_t id_rng = 0xabcdef ^ sequence[i];
            const std::string id = SweepId(SplitMix64(id_rng) % count);
            Stopwatch timer;
            if (store.FindSnapshot(id).graph == nullptr) {
              null_finds.fetch_add(1);
            }
            my_ms.push_back(timer.ElapsedMillis());
          }
          std::lock_guard<std::mutex> lock(mu);
          mixed_ms.insert(mixed_ms.end(), my_ms.begin(), my_ms.end());
        });
      }
      for (std::thread& thread : threads) thread.join();
    }
    const double wall_ms = wall.ElapsedMillis();
    const double qps =
        wall_ms > 0.0
            ? 1000.0 * static_cast<double>(mixed_ms.size()) / wall_ms
            : 0.0;
    if (null_finds.load() > 0) {
      std::fprintf(stderr, "%zu mixed finds came back null\n",
                   null_finds.load());
      *failures += null_finds.load();
    }

    auto tier = store.shard_stats();
    CQP_CHECK(tier.has_value());
    const double resident_mb =
        static_cast<double>(tier->resident_bytes) / (1024.0 * 1024.0);
    const double budget_mb =
        static_cast<double>(budget_bytes) / (1024.0 * 1024.0);
    // The bounded-memory claim, with the issue's ±20% tolerance (pinned
    // graphs may briefly hold the total above the line).
    const bool resident_ok = resident_mb <= budget_mb * 1.2;
    if (!resident_ok) {
      std::fprintf(stderr,
                   "resident %.1f MB exceeds budget %.1f MB (+20%%)\n",
                   resident_mb, budget_mb);
      ++*failures;
    }
    if (tier->page_in_errors > 0) {
      std::fprintf(stderr, "%llu page-in errors\n",
                   static_cast<unsigned long long>(tier->page_in_errors));
      *failures += tier->page_in_errors;
    }
    const double rss_mb = RssMb();

    std::printf("%9zu %9.0f %9.0f %12.3f %10.1f %9.3f %9llu %11llu %7.1fMB %8.1f\n",
                count, build_ms, open_ms, p99_cold, qps,
                Percentile(mixed_ms, 0.99),
                static_cast<unsigned long long>(tier->page_ins),
                static_cast<unsigned long long>(tier->evictions),
                resident_mb, rss_mb);

    JsonValue cell = JsonValue::Object();
    cell.Set("profiles", JsonValue::Number(static_cast<double>(count)));
    cell.Set("shards", JsonValue::Number(static_cast<double>(num_shards)));
    cell.Set("resident_budget_mb", JsonValue::Number(budget_mb));
    cell.Set("build_ms", JsonValue::Number(build_ms));
    cell.Set("open_ms", JsonValue::Number(open_ms));
    cell.Set("cold_finds",
             JsonValue::Number(static_cast<double>(cold_finds)));
    cell.Set("p50_cold_ms", JsonValue::Number(p50_cold));
    cell.Set("p99_cold_ms", JsonValue::Number(p99_cold));
    cell.Set("mixed_requests",
             JsonValue::Number(static_cast<double>(mixed_ms.size())));
    cell.Set("qps", JsonValue::Number(qps));
    cell.Set("p50_ms", JsonValue::Number(Percentile(mixed_ms, 0.50)));
    cell.Set("p99_ms", JsonValue::Number(Percentile(mixed_ms, 0.99)));
    cell.Set("page_ins",
             JsonValue::Number(static_cast<double>(tier->page_ins)));
    cell.Set("page_in_waits",
             JsonValue::Number(static_cast<double>(tier->page_in_waits)));
    cell.Set("evictions",
             JsonValue::Number(static_cast<double>(tier->evictions)));
    cell.Set("pinned_skips",
             JsonValue::Number(static_cast<double>(tier->pinned_skips)));
    cell.Set("resident_mb", JsonValue::Number(resident_mb));
    cell.Set("resident_within_budget", JsonValue::Bool(resident_ok));
    cell.Set("rss_mb", JsonValue::Number(rss_mb));
    cells.Append(std::move(cell));

    // Free the directory before the next (bigger) cell.
    (*opened).reset();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  std::error_code ec;
  std::filesystem::remove_all(base_dir, ec);

  // The "no cold cliff" number: p99 page-in latency at the largest count
  // over the smallest. Paging is O(1) in directory size, so this should
  // hover near 1 regardless of scale.
  const double cliff = (cold_p99s.size() >= 2 && cold_p99s.front() > 0.0)
                           ? cold_p99s.back() / cold_p99s.front()
                           : 0.0;
  std::printf("cold p99 largest/smallest = %.2fx\n\n", cliff);

  JsonValue record = JsonValue::Object();
  record.Set("bench", JsonValue::Str("shard"));
  JsonValue workload = JsonValue::Object();
  workload.Set("shards", JsonValue::Number(static_cast<double>(num_shards)));
  workload.Set("resident_budget_mb",
               JsonValue::Number(static_cast<double>(budget_bytes) /
                                 (1024.0 * 1024.0)));
  workload.Set("zipf_s", JsonValue::Number(zipf_s));
  workload.Set("mixed_threads",
               JsonValue::Number(static_cast<double>(mixed_threads)));
  record.Set("workload", std::move(workload));
  record.Set("smoke", JsonValue::Bool(smoke));
  record.Set("cells", std::move(cells));
  record.Set("cold_p99_scale_ratio", JsonValue::Number(cliff));
  return record;
}

bool WriteJson(const server::JsonValue& record, const std::string& path) {
  std::string json = record.Dump();
  std::printf("%s\n", json.c_str());
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int Run(bool smoke, const std::string& json_path,
        const std::string& plan_json_path,
        const std::string& shard_json_path) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const int64_t movies = smoke ? 500 : 2000;
  std::printf("Personalization server load bench — %lld movies, %zu queries\n",
              static_cast<long long>(movies), BenchQueries().size());

  workload::MovieDbConfig db_config;
  db_config.n_movies = movies;
  db_config.n_directors = std::max<int64_t>(10, movies / 10);
  db_config.n_actors = std::max<int64_t>(20, movies / 5);
  auto db_or = workload::BuildMovieDatabase(db_config);
  if (!db_or.ok()) {
    std::fprintf(stderr, "db: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  storage::Database db = *std::move(db_or);
  server::ProfileStore profiles(&db);
  auto profile = workload::GenerateProfile({}, db_config);
  if (!profile.ok() || !profiles.Put("default", *profile).ok()) {
    std::fprintf(stderr, "cannot build the bench profile\n");
    return 1;
  }

  server::ServerOptions options;
  options.port = 0;
  server::Server server(&db, &profiles, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("server on 127.0.0.1:%d\n\n", server.port());

  auto reference = ReferenceResults(db, profiles, options, BenchQueries());

  std::vector<size_t> concurrencies =
      smoke ? std::vector<size_t>{1, 8} : std::vector<size_t>{1, 8, 32};
  std::vector<double> deadlines =
      smoke ? std::vector<double>{50.0, 0.0}
            : std::vector<double>{10.0, 50.0, 0.0};
  const size_t requests_per_client = smoke ? 4 : 16;

  std::printf("%6s %9s %9s %10s %8s %8s %6s %6s %6s %10s\n", "conc",
              "deadline", "requests", "q/s", "p50_ms", "p99_ms", "ok", "degr",
              "err", "identity");
  server::JsonValue cells = server::JsonValue::Array();
  size_t mismatches = 0;
  for (size_t concurrency : concurrencies) {
    for (double deadline_ms : deadlines) {
      // Identity is only checked where it must hold exactly: with no
      // deadline nothing can degrade, so the wire answer has to equal the
      // direct library answer bit for bit.
      const bool check = deadline_ms == 0.0;
      CellResult cell = RunCell(server.port(), concurrency, deadline_ms,
                                requests_per_client,
                                check ? &reference : nullptr);
      size_t errors = cell.transport_errors;
      for (const auto& [code, n] : cell.error_codes) errors += n;
      char deadline_buf[16];
      if (deadline_ms > 0.0) {
        std::snprintf(deadline_buf, sizeof deadline_buf, "%.0fms",
                      deadline_ms);
      } else {
        std::snprintf(deadline_buf, sizeof deadline_buf, "inf");
      }
      char identity_buf[32];
      if (check) {
        std::snprintf(identity_buf, sizeof identity_buf, "%zu/%zu ok",
                      cell.identity_checked - cell.identity_mismatches,
                      cell.identity_checked);
      } else {
        std::snprintf(identity_buf, sizeof identity_buf, "-");
      }
      std::printf("%6zu %9s %9zu %10.1f %8.2f %8.2f %6zu %6zu %6zu %10s\n",
                  cell.concurrency, deadline_buf, cell.requests, cell.qps,
                  cell.p50_ms, cell.p99_ms, cell.ok, cell.degraded, errors,
                  identity_buf);
      mismatches += cell.identity_mismatches;
      cells.Append(CellToJson(cell));
    }
  }
  // ---- multiplexed pipelined sweep: one driver thread, poll()-driven,
  // pushes connection counts far past what blocking client threads can.
  std::printf("\nmultiplexed sweep (pipelined, %zu io loop%s)\n",
              server.num_io_threads(),
              server.num_io_threads() == 1 ? "" : "s");
  std::printf("%6s %12s %5s %9s %10s %8s %8s %6s %6s\n", "conns", "op",
              "pipe", "requests", "q/s", "p50_ms", "p99_ms", "ok", "err");
  std::vector<size_t> mux_conns = smoke ? std::vector<size_t>{1, 8, 64}
                                        : std::vector<size_t>{1, 8, 32, 256,
                                                              1024};
  server::JsonValue mux_cells = server::JsonValue::Array();
  for (size_t conns : mux_conns) {
    for (bool personalize : {false, true}) {
      const size_t total = personalize ? (smoke ? 512 : 2048)
                                       : (smoke ? 4096 : 32768);
      const size_t per_conn = std::max<size_t>(personalize ? 4 : 16,
                                               total / conns);
      MuxCellResult cell = RunMuxCell(server.port(), conns,
                                      /*pipeline=*/personalize ? 4 : 8,
                                      per_conn, personalize);
      std::printf("%6zu %12s %5zu %9zu %10.1f %8.2f %8.2f %6zu %6zu\n",
                  cell.connections, personalize ? "personalize" : "ping",
                  cell.pipeline, cell.requests, cell.qps, cell.p50_ms,
                  cell.p99_ms, cell.ok, cell.errors);
      mux_cells.Append(
          MuxCellToJson(personalize ? "personalize" : "ping", cell));
    }
  }
  std::printf("\n");

  // ---- held-connections phase: thousands of idle fds must not slow the
  // loops down.
  server::JsonValue held_record =
      RunHeldConnections(server.port(), smoke ? 1000 : 10000);
  const size_t io_threads = server.num_io_threads();

  server.Stop();
  std::printf("\n");

  server::JsonValue shed_probe = RunShedProbe(db, profiles, smoke);

  size_t failures = 0;
  server::JsonValue plan_record =
      RunPlanCacheWorkload(db, *profile, smoke, &failures);
  std::printf("\n");

  server::JsonValue shard_record =
      RunShardSweep(db, db_config, smoke, &failures);

  using server::JsonValue;
  JsonValue record = JsonValue::Object();
  record.Set("bench", JsonValue::Str("server"));
  JsonValue workload = JsonValue::Object();
  workload.Set("movies", JsonValue::Number(static_cast<double>(movies)));
  workload.Set("queries",
               JsonValue::Number(static_cast<double>(BenchQueries().size())));
  workload.Set("k", JsonValue::Number(
                        static_cast<double>(options.default_max_k)));
  workload.Set("algorithm", JsonValue::Str(options.default_algorithm));
  record.Set("workload", std::move(workload));
  record.Set("hardware_threads",
             JsonValue::Number(std::thread::hardware_concurrency()));
  record.Set("smoke", JsonValue::Bool(smoke));
  record.Set("io_threads",
             JsonValue::Number(static_cast<double>(io_threads)));
  record.Set("cells", std::move(cells));
  record.Set("mux_cells", std::move(mux_cells));
  record.Set("held_connections", std::move(held_record));
  record.Set("shed_probe", std::move(shed_probe));

  if (!WriteJson(record, json_path)) return 1;
  if (!WriteJson(plan_record, plan_json_path)) return 1;
  if (!WriteJson(shard_record, shard_json_path)) return 1;
  if (mismatches > 0) {
    std::fprintf(stderr, "%zu identity mismatches vs direct Personalize()\n",
                 mismatches);
    return 1;
  }
  if (failures > 0) {
    std::fprintf(stderr, "%zu plan-cache parity failures\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_server.json";
  std::string plan_json_path = "BENCH_plan_cache.json";
  std::string shard_json_path = "BENCH_shard.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--plan-json") == 0 && i + 1 < argc) {
      plan_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shard-json") == 0 && i + 1 < argc) {
      shard_json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--plan-json PATH] "
                   "[--shard-json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  return Run(smoke, json_path, plan_json_path, shard_json_path);
}
