// End-to-end tests of the personalization server: socket round trips that
// must be bit-identical to direct Personalize() calls, admission control,
// connection-drop cancellation, hot reload, and the stats surfaces.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "construct/personalizer.h"
#include "prefs/profile.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/io_util.h"
#include "server/profile_store.h"
#include "server/server.h"
#include "server/server_stats.h"
#include "server/shard/sharded_profile_store.h"
#include "test_util.h"

namespace cqp::server {
namespace {

constexpr const char* kProfileText =
    "doi(GENRE.genre = 'musical') = 0.5\n"
    "doi(MOVIE.mid = GENRE.mid) = 0.9\n"
    "doi(DIRECTOR.name = 'W. Allen') = 0.8\n"
    "doi(MOVIE.did = DIRECTOR.did) = 1.0\n"
    "doi(MOVIE.year > 1990) = 0.6\n";

constexpr const char* kQuery = "SELECT title FROM MOVIE";

prefs::Profile TestProfile() { return *prefs::Profile::Parse(kProfileText); }

/// One server over the tiny movie database, serving TestProfile() as
/// "default" on an ephemeral port.
class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : db_(::cqp::testing::MakeTinyMovieDb()) {}

  void StartServer(ServerOptions options = ServerOptions()) {
    profiles_ = std::make_unique<ProfileStore>(&db_);
    ASSERT_TRUE(profiles_->Put("default", TestProfile()).ok());
    options.port = 0;  // ephemeral
    server_ = std::make_unique<Server>(&db_, profiles_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  Client Connect() {
    Client client;
    Status status = client.Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(status.ok()) << status.ToString();
    return client;
  }

  WireRequest PersonalizeRequestFor(const std::string& sql) {
    WireRequest request;
    request.op = RequestOp::kPersonalize;
    request.personalize.sql = sql;
    return request;
  }

  /// The reference answer: a direct in-process Personalize() with exactly
  /// the server's defaults.
  construct::PersonalizeResult DirectResult(const std::string& sql) {
    auto graph = *prefs::PersonalizationGraph::Build(TestProfile(), db_);
    construct::Personalizer personalizer(&db_, &graph);
    construct::PersonalizeRequest request;
    request.sql = sql;
    request.problem = server_->options().default_problem;
    request.algorithm = server_->options().default_algorithm;
    request.space_options.max_k = server_->options().default_max_k;
    auto result = personalizer.Personalize(request);
    CQP_CHECK(result.ok());
    return *std::move(result);
  }

  storage::Database db_;
  std::unique_ptr<ProfileStore> profiles_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingStatsAndProfiles) {
  StartServer();
  Client client = Connect();

  WireRequest ping;
  ping.op = RequestOp::kPing;
  ping.id = "p1";
  auto pong = client.Call(ping);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(pong->ok());
  EXPECT_EQ(pong->id, "p1");
  EXPECT_TRUE(pong->extra.Find("pong")->bool_value());

  WireRequest profiles;
  profiles.op = RequestOp::kProfiles;
  auto listed = client.Call(profiles);
  ASSERT_TRUE(listed.ok());
  ASSERT_TRUE(listed->extra.Find("profiles")->is_array());
  ASSERT_EQ(listed->extra.Find("profiles")->array_items().size(), 1u);
  EXPECT_EQ(listed->extra.Find("profiles")->array_items()[0].string_value(),
            "default");

  WireRequest stats;
  stats.op = RequestOp::kStats;
  auto snapshot = client.Call(stats);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->extra.Find("requests")->is_number());
  EXPECT_TRUE(snapshot->extra.Find("admission")->Find("pending")->is_number());
}

TEST_F(ServerTest, ResponsesAreBitIdenticalToDirectPersonalize) {
  StartServer();
  construct::PersonalizeResult expected = DirectResult(kQuery);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        WireRequest request;
        request.op = RequestOp::kPersonalize;
        request.id = std::to_string(c) + "-" + std::to_string(i);
        request.personalize.sql = kQuery;
        auto response = client.Call(request);
        if (!response.ok() || !response->ok() ||
            !response->personalize.has_value()) {
          failures.fetch_add(1);
          continue;
        }
        const PersonalizeResultPayload& r = *response->personalize;
        // Bit-identical to the direct call: same SQL text, same chosen
        // subset, exactly equal parameter estimates.
        if (r.final_sql != expected.final_sql ||
            r.doi != expected.solution.params.doi ||
            r.cost_ms != expected.solution.params.cost_ms ||
            r.size != expected.solution.params.size ||
            r.feasible != expected.solution.feasible ||
            r.chosen != std::vector<int32_t>(expected.solution.chosen.begin(),
                                             expected.solution.chosen.end())) {
          failures.fetch_add(1);
        }
        if (response->id != request.id) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->stats().requests_total(),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(server_->stats().errors_total(), 0u);
  // All requests personalize the same (query, profile) pair, so the shared
  // registry cache must have answered some evaluations after the first.
  WireRequest stats;
  stats.op = RequestOp::kStats;
  Client client = Connect();
  auto snapshot = client.Call(stats);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_GT(snapshot->extra.Find("cache_hits")->number_value(), 0.0);
}

TEST_F(ServerTest, ShardedTierServesIdenticalAnswersAndShardStats) {
  // The sharded, demand-paged tier behind the same server: a 1-byte
  // resident budget forces a page-in on (almost) every request, and the
  // answers must still be bit-identical to the direct engine.
  namespace stdfs = std::filesystem;
  const std::string dir =
      (stdfs::path(::testing::TempDir()) / "cqp_server_test_shards").string();
  std::error_code ec;
  stdfs::remove_all(dir, ec);
  shard::ShardedStoreOptions options;
  options.dir = dir;
  options.num_shards = 3;
  options.resident_budget_bytes = 1;
  auto store = shard::ShardedProfileStore::Open(&db_, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  std::vector<std::string> ids = {"default", "user0", "user1", "user2"};
  for (const std::string& id : ids) {
    ASSERT_TRUE((*store)->Put(id, TestProfile()).ok());
  }
  server_ = std::make_unique<Server>(&db_, store->get(), ServerOptions());
  ASSERT_TRUE(server_->Start().ok());
  construct::PersonalizeResult expected = DirectResult(kQuery);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 4;
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Client client;
        if (!client.Connect("127.0.0.1", server_->port()).ok()) {
          failures.fetch_add(1);
          return;
        }
        for (int i = 0; i < kRequestsPerClient; ++i) {
          WireRequest request;
          request.op = RequestOp::kPersonalize;
          request.personalize.sql = kQuery;
          // Every profile carries the same text, so every id — wherever
          // it shards — must produce the same personalized answer.
          request.personalize.profile_id = ids[(c + i) % ids.size()];
          auto response = client.Call(request);
          if (!response.ok() || !response->ok() ||
              !response->personalize.has_value() ||
              response->personalize->final_sql != expected.final_sql ||
              response->personalize->doi != expected.solution.params.doi) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // The stats op surfaces the tier: shard count, paging counters, and one
  // journal object per shard.
  Client client = Connect();
  WireRequest stats;
  stats.op = RequestOp::kStats;
  auto snapshot = client.Call(stats);
  ASSERT_TRUE(snapshot.ok());
  const JsonValue* tier = snapshot->extra.Find("shard_tier");
  ASSERT_NE(tier, nullptr);
  EXPECT_EQ(tier->Find("shards")->number_value(), 3.0);
  EXPECT_EQ(tier->Find("profiles")->number_value(),
            static_cast<double>(ids.size()));
  EXPECT_GT(tier->Find("page_ins")->number_value(), 0.0);
  ASSERT_TRUE(tier->Find("per_shard")->is_array());
  ASSERT_EQ(tier->Find("per_shard")->array_items().size(), 3u);
  for (const JsonValue& per_shard : tier->Find("per_shard")->array_items()) {
    EXPECT_NE(per_shard.Find("journal"), nullptr);
    EXPECT_EQ(per_shard.Find("journal")->Find("wedged")->bool_value(), false);
  }

  // The server must be stopped before the store it points into dies.
  server_->Stop();
  server_.reset();
  stdfs::remove_all(dir, ec);
}

TEST_F(ServerTest, MalformedFrameGetsTypedErrorAndConnectionSurvives) {
  StartServer();
  Client client = Connect();

  auto raw = client.CallRaw("this is not json");
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto parsed = ParseResponse(*raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok());
  EXPECT_EQ(parsed->status.code(), StatusCode::kInvalidArgument);

  // The same connection still answers well-formed requests.
  WireRequest ping;
  ping.op = RequestOp::kPing;
  auto pong = client.Call(ping);
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->ok());
  EXPECT_GE(server_->stats().requests_total(), 0u);
}

TEST_F(ServerTest, UnknownProfileIsNotFound) {
  StartServer();
  Client client = Connect();
  WireRequest request = PersonalizeRequestFor(kQuery);
  request.personalize.profile_id = "nobody";
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->status.code(), StatusCode::kNotFound);
}

TEST_F(ServerTest, ZeroCapacityShedsEveryRequestExplicitly) {
  ServerOptions options;
  options.admission.max_pending = 0;  // deterministic: everything sheds
  StartServer(options);
  Client client = Connect();
  for (int i = 0; i < 3; ++i) {
    auto response = client.Call(PersonalizeRequestFor(kQuery));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    // Shedding is a typed wire error, never a silent drop or a hang.
    EXPECT_FALSE(response->ok());
    EXPECT_EQ(response->status.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(server_->stats().shed_total(), 3u);
  EXPECT_EQ(server_->stats().requests_total(), 0u);
}

TEST_F(ServerTest, DroppedConnectionCancelsQueuedWork) {
  ServerOptions options;
  options.num_threads = 1;  // force queueing behind one worker
  StartServer(options);

  // Pipeline several personalize frames over a raw socket and close it
  // without reading a single response — a client that vanished.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string frames;
  constexpr int kFrames = 4;
  for (int i = 0; i < kFrames; ++i) {
    frames += SerializeRequest(PersonalizeRequestFor(kQuery)) + "\n";
  }
  ASSERT_EQ(::send(fd, frames.data(), frames.size(), 0),
            static_cast<ssize_t>(frames.size()));
  ::close(fd);

  // TCP delivers the buffered frames before the FIN, so the reader admits
  // all of them and then cancels the connection's token. Every admitted
  // request must drain — cancelled ones short-circuit, none may hang.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while ((server_->admission().admitted_total() <
              static_cast<uint64_t>(kFrames) ||
          server_->admission().pending() != 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->admission().admitted_total(),
            static_cast<uint64_t>(kFrames));
  EXPECT_EQ(server_->admission().pending(), 0u);
  server_->Stop();  // must not hang with the connection gone
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, HotReloadServesUpdatedProfileWithoutStaleCacheHits) {
  namespace fs = std::filesystem;
  fs::path dir =
      fs::path(::testing::TempDir()) / "cqp_server_test_profiles";
  fs::create_directories(dir);
  auto write_profile = [&](double musical_doi) {
    std::ofstream out(dir / "alice.profile");
    out << "doi(GENRE.genre = 'musical') = " << musical_doi << "\n"
        << "doi(MOVIE.mid = GENRE.mid) = 0.9\n";
  };
  write_profile(0.2);

  profiles_ = std::make_unique<ProfileStore>(&db_);
  ASSERT_TRUE(profiles_->LoadDirectory(dir.string()).ok());
  server_ = std::make_unique<Server>(&db_, profiles_.get(), ServerOptions{});
  ASSERT_TRUE(server_->Start().ok());

  Client client = Connect();
  WireRequest request = PersonalizeRequestFor(kQuery);
  request.personalize.profile_id = "alice";
  auto before = client.Call(request);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->ok()) << before->status.ToString();
  ASSERT_TRUE(before->personalize.has_value());

  // Update the profile on disk and hot-reload over the wire.
  write_profile(0.9);
  WireRequest reload;
  reload.op = RequestOp::kReload;
  auto reloaded = client.Call(reload);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(reloaded->ok()) << reloaded->status.ToString();
  EXPECT_DOUBLE_EQ(reloaded->extra.Find("reloaded")->number_value(), 1.0);

  // The same request must now see the new graph — and, critically, no
  // evaluation memoized under the old one (the snapshot version keys the
  // cache): the reference is a fresh direct computation on the new
  // profile, compared exactly.
  auto after = client.Call(request);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->ok());
  ASSERT_TRUE(after->personalize.has_value());
  EXPECT_NE(after->personalize->doi, before->personalize->doi);

  auto new_profile = *prefs::Profile::Parse(
      "doi(GENRE.genre = 'musical') = 0.9\n"
      "doi(MOVIE.mid = GENRE.mid) = 0.9\n");
  auto graph = *prefs::PersonalizationGraph::Build(std::move(new_profile), db_);
  construct::Personalizer personalizer(&db_, &graph);
  construct::PersonalizeRequest direct;
  direct.sql = kQuery;
  direct.problem = server_->options().default_problem;
  direct.algorithm = server_->options().default_algorithm;
  direct.space_options.max_k = server_->options().default_max_k;
  auto expected = personalizer.Personalize(direct);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(after->personalize->final_sql, expected->final_sql);
  EXPECT_EQ(after->personalize->doi, expected->solution.params.doi);
}

TEST_F(ServerTest, StopDrainsInFlightRequestBeforeCancelling) {
  ServerOptions options;
  options.num_threads = 1;
  options.drain_deadline_ms = 5000.0;
  StartServer(options);

  // One request in flight while Stop() runs: the drain must let it finish
  // and answer instead of cancelling it.
  Client client = Connect();
  StatusOr<WireResponse> response = FailedPrecondition("never ran");
  std::thread caller([&] {
    response = client.Call(PersonalizeRequestFor(kQuery));
  });
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->admission().admitted_total() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->Stop();
  caller.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok()) << response->status.ToString();
  ASSERT_TRUE(response->personalize.has_value());
}

// ------------------------------------------------ io_util (regression)

std::atomic<int> g_usr1_count{0};
void OnUsr1(int) { g_usr1_count.fetch_add(1); }

TEST(IoUtil, SendAllSurvivesSignalsAndShortWrites) {
  // The regression this pins: a signal landing mid-send used to be able to
  // tear a frame (EINTR), and a frame larger than the socket buffer forces
  // short writes. SendAll must deliver every byte anyway.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  int small = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));

  // SIGUSR1 WITHOUT SA_RESTART, so blocked sends actually return EINTR.
  struct sigaction action {};
  action.sa_handler = OnUsr1;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &old), 0);

  const std::string payload = [] {
    std::string s;
    for (int i = 0; i < 1 << 20; ++i) s.push_back(static_cast<char>('a' + i % 26));
    return s;
  }();

  std::atomic<bool> done{false};
  std::thread writer([&] {
    EXPECT_TRUE(SendAll(fds[0], payload.data(), payload.size()));
    done.store(true);
    ::shutdown(fds[0], SHUT_WR);
  });
  // Pepper the writer with signals the whole time it is sending.
  pthread_t writer_handle = writer.native_handle();
  std::thread signaler([&] {
    while (!done.load()) {
      ::pthread_kill(writer_handle, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::string received;
  char chunk[8192];
  for (;;) {
    ssize_t n = ReadSome(fds[1], chunk, sizeof(chunk));
    ASSERT_GE(n, 0) << std::strerror(errno);
    if (n == 0) break;
    received.append(chunk, static_cast<size_t>(n));
  }
  writer.join();
  signaler.join();
  ::close(fds[0]);
  ::close(fds[1]);
  ::sigaction(SIGUSR1, &old, nullptr);

  EXPECT_GT(g_usr1_count.load(), 0) << "test never actually interrupted";
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);  // intact, in order, nothing torn
}

// --------------------------------------------- client connect retries

TEST(ClientRetry, GivesUpAfterMaxAttemptsOnDeadPort) {
  // Bind (without listen) to reserve a port nothing will ever accept on,
  // yielding deterministic ECONNREFUSED.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  int port = ntohs(addr.sin_port);
  ::close(probe);  // freed: connect() now refuses fast

  ConnectOptions options;
  options.max_attempts = 3;
  options.initial_backoff_ms = 1.0;
  options.max_backoff_ms = 4.0;
  Client client;
  Status status = client.Connect("127.0.0.1", port, options);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("attempt 3/3"), std::string::npos)
      << status.ToString();
}

TEST(ClientRetry, ConnectsOnceTheServerShowsUp) {
  // The race Connect()'s backoff exists for: the client starts before the
  // server is listening. Reserve a port, start listening only after a
  // delay, and the retried connect must land.
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  int port = ntohs(addr.sin_port);

  std::thread delayed_listen([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_EQ(::listen(listener, 1), 0);
  });

  ConnectOptions options;
  options.max_attempts = 10;
  options.initial_backoff_ms = 10.0;
  options.max_backoff_ms = 50.0;
  Client client;
  Status status = client.Connect("127.0.0.1", port, options);
  delayed_listen.join();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(client.connected());
  ::close(listener);
}

TEST(ClientRetry, PermanentErrorsFailImmediately) {
  Client client;
  Status status = client.Connect("not-an-ipv4", 1);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------- admission (unit level)

TEST(Admission, SoftWatermarkDegradesHardWatermarkSheds) {
  AdmissionOptions options;
  options.max_pending = 3;
  options.soft_pending = 1;
  AdmissionController admission(options);

  AdmissionController::Ticket first = admission.TryAdmit();
  EXPECT_TRUE(first.admitted);
  EXPECT_FALSE(first.degrade);  // at the soft watermark, not above

  AdmissionController::Ticket second = admission.TryAdmit();
  EXPECT_TRUE(second.admitted);
  EXPECT_TRUE(second.degrade);  // above soft, below hard

  AdmissionController::Ticket third = admission.TryAdmit();
  EXPECT_TRUE(third.admitted);
  EXPECT_TRUE(third.degrade);

  AdmissionController::Ticket fourth = admission.TryAdmit();
  EXPECT_FALSE(fourth.admitted);  // hard watermark

  EXPECT_EQ(admission.pending(), 3u);
  EXPECT_EQ(admission.admitted_total(), 3u);
  EXPECT_EQ(admission.shed_total(), 1u);
  EXPECT_EQ(admission.degraded_total(), 2u);

  admission.Release();
  admission.Release();
  AdmissionController::Ticket fifth = admission.TryAdmit();
  EXPECT_TRUE(fifth.admitted);
  EXPECT_TRUE(fifth.degrade);  // pending back to 2 > soft watermark 1
}

// ------------------------------------------------------ stats (unit level)

TEST(ServerStatsTest, HistogramBucketsAndPercentiles) {
  LatencyHistogram histogram;
  EXPECT_DOUBLE_EQ(histogram.PercentileMillis(0.5), 0.0);
  for (int i = 0; i < 98; ++i) histogram.Record(0.003);  // 3 µs
  histogram.Record(1.5);    // 1500 µs
  histogram.Record(3000.0);  // 3 s
  EXPECT_EQ(histogram.TotalCount(), 100u);
  // p50 lands in the [2,4) µs bucket — upper bound 4 µs = 0.004 ms.
  EXPECT_DOUBLE_EQ(histogram.PercentileMillis(0.50), 0.004);
  // p99 must reach the 1.5 ms sample's bucket [1024,2048) µs.
  EXPECT_DOUBLE_EQ(histogram.PercentileMillis(0.99), 2.048);
  // The max lands in [2^21, 2^22) µs.
  EXPECT_DOUBLE_EQ(histogram.PercentileMillis(1.0), 4194.304);

  JsonValue json = histogram.ToJson();
  EXPECT_DOUBLE_EQ(json.Find("count")->number_value(), 100.0);
  EXPECT_EQ(json.Find("buckets")->array_items().size(), 3u);
}

TEST(ServerStatsTest, CountersAggregate) {
  ServerStats stats;
  stats.OnConnectionOpened();
  stats.OnAdmitted();
  stats.OnShed();
  stats.OnDegradedAdmission();
  stats.OnRequestDone(/*ok=*/true, /*degraded_answer=*/false, 1.0, 5, 2, 100);
  stats.OnRequestDone(/*ok=*/false, /*degraded_answer=*/true, 2.0, 0, 1, 50);
  EXPECT_EQ(stats.requests_total(), 2u);
  EXPECT_EQ(stats.errors_total(), 1u);
  EXPECT_EQ(stats.degraded_total(), 1u);
  EXPECT_EQ(stats.shed_total(), 1u);
  JsonValue json = stats.ToJson();
  EXPECT_DOUBLE_EQ(json.Find("cache_hits")->number_value(), 5.0);
  EXPECT_DOUBLE_EQ(json.Find("cache_misses")->number_value(), 3.0);
  EXPECT_DOUBLE_EQ(json.Find("states_examined")->number_value(), 150.0);
  EXPECT_DOUBLE_EQ(json.Find("latency")->Find("count")->number_value(), 2.0);
}

}  // namespace
}  // namespace cqp::server
