#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "storage/database.h"
#include "storage/table.h"
#include "storage/tuple.h"

namespace cqp::storage {
namespace {

using catalog::AttributeDef;
using catalog::RelationDef;
using catalog::Value;
using catalog::ValueType;

RelationDef TwoColSchema() {
  return RelationDef("R", {AttributeDef{"id", ValueType::kInt},
                           AttributeDef{"name", ValueType::kString}});
}

// ---------- Tuple ----------

TEST(TupleTest, ConcatAndProject) {
  Tuple a({Value(int64_t{1}), Value("x")});
  Tuple b({Value(2.0)});
  Tuple c = Tuple::Concat(a, b);
  EXPECT_EQ(c.arity(), 3u);
  EXPECT_EQ(c.at(2).AsDouble(), 2.0);
  Tuple p = c.Project({2, 0});
  EXPECT_EQ(p.arity(), 2u);
  EXPECT_EQ(p.at(1).AsInt(), 1);
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a({Value(int64_t{1}), Value("x")});
  Tuple b({Value(int64_t{1}), Value("x")});
  Tuple c({Value(int64_t{1}), Value("y")});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
}

TEST(TupleTest, ByteSizeSumsValues) {
  Tuple t({Value(int64_t{1}), Value("abcd")});
  EXPECT_EQ(t.ByteSize(), 8u + 8u);
}

// ---------- Table block model ----------

TEST(TableTest, RejectsWrongArity) {
  Table t(TwoColSchema());
  EXPECT_FALSE(t.Insert(Tuple({Value(int64_t{1})})).ok());
}

TEST(TableTest, RejectsWrongType) {
  Table t(TwoColSchema());
  EXPECT_FALSE(t.Insert(Tuple({Value("x"), Value("y")})).ok());
}

TEST(TableTest, EmptyTableHasZeroBlocks) {
  Table t(TwoColSchema());
  EXPECT_EQ(t.blocks(), 0u);
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(TableTest, BlockCountGrowsWithData) {
  Table t(TwoColSchema());
  // Each row: 8 (int) + 4+12 (string) = 24 bytes -> 341 rows per 8 KiB.
  std::string name(12, 'x');
  for (int i = 0; i < 341; ++i) {
    ASSERT_TRUE(t.Insert(Tuple({Value(int64_t{i}), Value(name)})).ok());
  }
  EXPECT_EQ(t.blocks(), 1u);
  ASSERT_TRUE(t.Insert(Tuple({Value(int64_t{341}), Value(name)})).ok());
  EXPECT_EQ(t.blocks(), 2u);
}

TEST(TableTest, OversizedRowGetsOwnBlocks) {
  Table t(TwoColSchema());
  std::string huge(3 * kBlockSizeBytes, 'x');
  ASSERT_TRUE(t.Insert(Tuple({Value(int64_t{1}), Value(huge)})).ok());
  EXPECT_GE(t.blocks(), 3u);
}

// ---------- Database ----------

TEST(DatabaseTest, CreateAndLookupCaseInsensitive) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TwoColSchema()).ok());
  EXPECT_TRUE(db.HasTable("r"));
  EXPECT_TRUE(db.GetTable("R").ok());
  EXPECT_TRUE(db.GetTable("r").ok());
  EXPECT_FALSE(db.GetTable("S").ok());
}

TEST(DatabaseTest, DuplicateCreateFails) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TwoColSchema()).ok());
  auto again = db.CreateTable(TwoColSchema());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, StatsRequireAnalyze) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TwoColSchema()).ok());
  EXPECT_FALSE(db.GetStats("R").ok());
  db.Analyze();
  EXPECT_TRUE(db.GetStats("R").ok());
}

TEST(DatabaseTest, AnalyzeComputesNdvMinMaxAndMcv) {
  Database db;
  Table* t = *db.CreateTable(TwoColSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        t->Insert(Tuple({Value(int64_t{i % 3}), Value(i < 7 ? "hot" : "cold")}))
            .ok());
  }
  db.Analyze();
  const catalog::RelationStats* stats = *db.GetStats("R");
  EXPECT_EQ(stats->row_count, 10u);
  ASSERT_EQ(stats->attributes.size(), 2u);
  EXPECT_EQ(stats->attributes[0].ndv(), 3u);
  EXPECT_DOUBLE_EQ(*stats->attributes[0].min_numeric(), 0.0);
  EXPECT_DOUBLE_EQ(*stats->attributes[0].max_numeric(), 2.0);
  EXPECT_EQ(stats->attributes[1].ndv(), 2u);
  // MCV of the name column: "hot" with count 7 first.
  ASSERT_FALSE(stats->attributes[1].mcvs().empty());
  EXPECT_EQ(stats->attributes[1].mcvs()[0].value.AsString(), "hot");
  EXPECT_EQ(stats->attributes[1].mcvs()[0].count, 7u);
}

TEST(DatabaseTest, McvLimitRespected) {
  Database db;
  Table* t = *db.CreateTable(
      RelationDef("S", {AttributeDef{"v", ValueType::kInt}}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->Insert(Tuple({Value(int64_t{i})})).ok());
  }
  db.Analyze(/*mcv_limit=*/5);
  const catalog::RelationStats* stats = *db.GetStats("S");
  EXPECT_EQ(stats->attributes[0].mcvs().size(), 5u);
  EXPECT_EQ(stats->attributes[0].ndv(), 100u);
}

TEST(DatabaseTest, TableNamesSorted) {
  Database db;
  ASSERT_TRUE(db.CreateTable(RelationDef("ZEBRA", {})).ok());
  ASSERT_TRUE(db.CreateTable(RelationDef("ALPHA", {})).ok());
  std::vector<std::string> names = db.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "ALPHA");
  EXPECT_EQ(names[1], "ZEBRA");
}

TEST(DatabaseTest, BlocksMatchStats) {
  Database db;
  Table* t = *db.CreateTable(TwoColSchema());
  std::string name(100, 'y');
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t->Insert(Tuple({Value(int64_t{i}), Value(name)})).ok());
  }
  db.Analyze();
  const catalog::RelationStats* stats = *db.GetStats("R");
  EXPECT_EQ(stats->blocks, t->blocks());
  EXPECT_GT(t->blocks(), 10u);  // 112 B/row * 1000 rows > 10 blocks
}

}  // namespace
}  // namespace cqp::storage
