#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "space/preference_space.h"
#include "sql/parser.h"
#include "test_util.h"

namespace cqp::space {
namespace {

class PreferenceSpaceTest : public ::testing::Test {
 protected:
  PreferenceSpaceTest()
      : db_(::cqp::testing::MakeTinyMovieDb()), estimator_(&db_) {
    auto profile = *prefs::Profile::Parse(R"(
        doi(GENRE.genre = 'musical') = 0.5
        doi(GENRE.genre = 'comedy') = 0.4
        doi(GENRE.genre = 'horror') = 0.1
        doi(MOVIE.mid = GENRE.mid) = 0.9
        doi(MOVIE.did = DIRECTOR.did) = 1.0
        doi(DIRECTOR.name = 'W. Allen') = 0.8
        doi(DIRECTOR.name = 'S. Kubrick') = 0.3
        doi(MOVIE.year >= 1970) = 0.6
        doi(MOVIE.duration <= 120) = 0.2
    )");
    graph_ = std::make_unique<prefs::PersonalizationGraph>(
        *prefs::PersonalizationGraph::Build(std::move(profile), db_));
  }

  PreferenceSpaceResult Extract(
      const std::string& sql, const cqp::ProblemSpec& problem,
      PreferenceSpaceOptions options = PreferenceSpaceOptions()) {
    auto q = *::cqp::sql::ParseSelect(sql);
    auto result =
        ExtractPreferenceSpace(q, *graph_, estimator_, problem, options);
    CQP_CHECK(result.ok()) << result.status().ToString();
    return *std::move(result);
  }

  storage::Database db_;
  estimation::ParameterEstimator estimator_;
  std::unique_ptr<prefs::PersonalizationGraph> graph_;
};

TEST_F(PreferenceSpaceTest, ExtractsAllRelatedPreferences) {
  auto space =
      Extract("SELECT title FROM MOVIE", cqp::ProblemSpec::Problem2(1e9));
  // 2 direct MOVIE selections + 2 director paths + 3 genre paths.
  EXPECT_EQ(space.K(), 7u);
}

TEST_F(PreferenceSpaceTest, PrefsSortedByDecreasingDoi) {
  auto space =
      Extract("SELECT title FROM MOVIE", cqp::ProblemSpec::Problem2(1e9));
  for (size_t i = 1; i < space.K(); ++i) {
    EXPECT_GE(space.prefs[i - 1].doi, space.prefs[i].doi);
  }
  // Top preference: the Allen path with doi 1.0 * 0.8 = 0.8.
  EXPECT_NEAR(space.prefs[0].doi, 0.8, 1e-12);
}

TEST_F(PreferenceSpaceTest, ImplicitDoisComposedByProduct) {
  auto space =
      Extract("SELECT title FROM MOVIE", cqp::ProblemSpec::Problem2(1e9));
  for (const auto& p : space.prefs) {
    if (p.pref.selection.value == catalog::Value("musical")) {
      EXPECT_NEAR(p.doi, 0.9 * 0.5, 1e-12);  // Figure 1 composition
    }
  }
}

TEST_F(PreferenceSpaceTest, VectorsOrderCorrectly) {
  auto space =
      Extract("SELECT title FROM MOVIE", cqp::ProblemSpec::Problem2(1e9));
  ASSERT_EQ(space.C.size(), space.K());
  ASSERT_EQ(space.S.size(), space.K());
  for (size_t i = 1; i < space.K(); ++i) {
    EXPECT_GE(space.prefs[space.C[i - 1]].cost_ms,
              space.prefs[space.C[i]].cost_ms)
        << "C must be cost-descending";
    EXPECT_LE(space.prefs[space.S[i - 1]].size, space.prefs[space.S[i]].size)
        << "S must be size-ascending";
    EXPECT_EQ(space.D[i], static_cast<int32_t>(i)) << "D is identity";
  }
}

TEST_F(PreferenceSpaceTest, MaxKCapsExtractionToTopDois) {
  PreferenceSpaceOptions options;
  options.max_k = 3;
  auto space = Extract("SELECT title FROM MOVIE",
                       cqp::ProblemSpec::Problem2(1e9), options);
  EXPECT_EQ(space.K(), 3u);
  // The kept three must be the three highest dois overall (0.8, 0.6, 0.45).
  EXPECT_NEAR(space.prefs[0].doi, 0.8, 1e-12);
  EXPECT_NEAR(space.prefs[1].doi, 0.6, 1e-12);
  EXPECT_NEAR(space.prefs[2].doi, 0.45, 1e-12);
}

TEST_F(PreferenceSpaceTest, MinDoiFloorDropsWeakPreferences) {
  PreferenceSpaceOptions options;
  options.min_doi = 0.25;
  auto space = Extract("SELECT title FROM MOVIE",
                       cqp::ProblemSpec::Problem2(1e9), options);
  for (const auto& p : space.prefs) EXPECT_GT(p.doi, 0.25);
  // Kept: 0.8 (Allen), 0.6 (year), 0.45 (musical), 0.36 (comedy),
  // 0.3 (Kubrick); dropped: 0.2 (duration), 0.09 (horror).
  EXPECT_EQ(space.K(), 5u);
}

TEST_F(PreferenceSpaceTest, CostConstraintPrunesExpensivePaths) {
  // cmax barely above the base cost: join preferences (which re-scan
  // DIRECTOR/GENRE) are pruned, join-free MOVIE selections survive.
  auto q = *::cqp::sql::ParseSelect("SELECT title FROM MOVIE");
  auto base_est = *estimator_.EstimateBase(q);
  auto space = Extract("SELECT title FROM MOVIE",
                       cqp::ProblemSpec::Problem2(base_est.cost_ms + 0.01));
  for (const auto& p : space.prefs) {
    EXPECT_TRUE(p.pref.joins.empty())
        << "path preference should have been pruned: "
        << p.pref.ConditionString();
  }
  EXPECT_EQ(space.K(), 2u);  // year + duration prefs
}

TEST_F(PreferenceSpaceTest, SminPrunesOverSelectivePreferences) {
  // smin equal to the base size: any preference that filters at all is
  // pruned (its sub-query result undershoots smin).
  auto q = *::cqp::sql::ParseSelect("SELECT title FROM MOVIE");
  auto base_est = *estimator_.EstimateBase(q);
  auto space = Extract(
      "SELECT title FROM MOVIE",
      cqp::ProblemSpec::Problem1(base_est.size, base_est.size * 10));
  EXPECT_EQ(space.K(), 0u);
}

TEST_F(PreferenceSpaceTest, QueriesOnOtherRelationsAnchorThere) {
  auto space = Extract("SELECT name FROM DIRECTOR",
                       cqp::ProblemSpec::Problem2(1e9));
  // Only the two DIRECTOR.name selections are related (no join leaves
  // DIRECTOR in this profile).
  EXPECT_EQ(space.K(), 2u);
  for (const auto& p : space.prefs) {
    EXPECT_EQ(p.pref.AnchorRelation(), "DIRECTOR");
  }
}

TEST_F(PreferenceSpaceTest, JoinQueryGetsPreferencesFromBothAnchors) {
  auto space = Extract(
      "SELECT M.title FROM MOVIE M, GENRE G WHERE M.mid = G.mid",
      cqp::ProblemSpec::Problem2(1e9));
  // GENRE selections now both as direct (anchored at GENRE) preferences —
  // plus everything reachable from MOVIE.
  size_t direct_genre = 0;
  for (const auto& p : space.prefs) {
    if (p.pref.joins.empty() &&
        prefs::IsValidDoi(p.doi) &&
        p.pref.selection.relation == "GENRE") {
      ++direct_genre;
    }
  }
  EXPECT_EQ(direct_genre, 3u);
}

TEST_F(PreferenceSpaceTest, DuplicateConditionsKeepHighestDoi) {
  // In the join query above, GENRE.genre='musical' is reachable both
  // directly (doi 0.5) and via MOVIE→GENRE (doi 0.45); only the direct
  // (higher-doi) variant may be kept for the same *condition string*, but
  // note the two differ in path, hence both appear. Equal conditions with
  // equal paths are deduplicated.
  auto space = Extract(
      "SELECT M.title FROM MOVIE M, GENRE G WHERE M.mid = G.mid",
      cqp::ProblemSpec::Problem2(1e9));
  std::set<std::string> conditions;
  for (const auto& p : space.prefs) {
    EXPECT_TRUE(conditions.insert(p.pref.ConditionString()).second)
        << "duplicate " << p.pref.ConditionString();
  }
}

TEST(PointerVectorTest, PaperTable2Example) {
  // §4.4, Table 2: P = {p1, p2, p3} with
  //   p1: doi 0.5, cost 10, size 3
  //   p2: doi 0.8, cost  5, size 2
  //   p3: doi 0.7, cost 12, size 10
  // gives D = {2,3,1}, C = {3,1,2}, S = {2,1,3} (1-based in the paper).
  std::vector<estimation::ScoredPreference> prefs(3);
  prefs[0].doi = 0.5;
  prefs[0].cost_ms = 10;
  prefs[0].size = 3;
  prefs[1].doi = 0.8;
  prefs[1].cost_ms = 5;
  prefs[1].size = 2;
  prefs[2].doi = 0.7;
  prefs[2].cost_ms = 12;
  prefs[2].size = 10;

  std::vector<int32_t> d, c, s;
  BuildPointerVectors(prefs, &d, &c, &s);
  EXPECT_EQ(d, (std::vector<int32_t>{1, 2, 0}));  // {2,3,1} 0-based
  EXPECT_EQ(c, (std::vector<int32_t>{2, 0, 1}));  // {3,1,2}
  EXPECT_EQ(s, (std::vector<int32_t>{1, 0, 2}));  // {2,1,3}
}

TEST(PointerVectorTest, TiesBreakByIndex) {
  std::vector<estimation::ScoredPreference> prefs(3);
  for (auto& p : prefs) {
    p.doi = 0.5;
    p.cost_ms = 10;
    p.size = 3;
  }
  std::vector<int32_t> d, c, s;
  BuildPointerVectors(prefs, &d, &c, &s);
  EXPECT_EQ(d, (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(c, (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(s, (std::vector<int32_t>{0, 1, 2}));
}

TEST_F(PreferenceSpaceTest, BuildVectorsFlagSkipsCAndS) {
  PreferenceSpaceOptions options;
  options.build_cost_size_vectors = false;
  auto space = Extract("SELECT title FROM MOVIE",
                       cqp::ProblemSpec::Problem2(1e9), options);
  EXPECT_TRUE(space.C.empty());
  EXPECT_TRUE(space.S.empty());
  EXPECT_EQ(space.D.size(), space.K());
}

TEST_F(PreferenceSpaceTest, PathLengthGuardRespected) {
  PreferenceSpaceOptions options;
  options.max_path_joins = 0;
  auto space = Extract("SELECT title FROM MOVIE",
                       cqp::ProblemSpec::Problem2(1e9), options);
  for (const auto& p : space.prefs) EXPECT_TRUE(p.pref.joins.empty());
}

}  // namespace
}  // namespace cqp::space
