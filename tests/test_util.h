#ifndef CQP_TESTS_TEST_UTIL_H_
#define CQP_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/rng.h"
#include "space/preference_space.h"
#include "storage/database.h"

namespace cqp::testing {

/// Seeded RNG for a gtest TestWithParam<int> sweep: multiplying by a
/// suite-specific odd salt decorrelates suites that share the same small
/// parameter values.
inline Rng SeededRng(int param, uint64_t salt) {
  return Rng(static_cast<uint64_t>(param) * salt);
}

/// Adds one table with `attrs` and Uniform(min_rows, max_rows) random rows
/// to `db`; `cell` produces each value from the column definition. Shared
/// by the executor and estimation fuzz suites (the caller still picks its
/// own domains — small ones make joins and selections actually hit).
inline storage::Table* AddRandomTable(
    Rng& rng, storage::Database& db, const std::string& name,
    const std::vector<catalog::AttributeDef>& attrs, int min_rows,
    int max_rows,
    const std::function<catalog::Value(Rng&, const catalog::AttributeDef&)>&
        cell) {
  storage::Table* table =
      *db.CreateTable(catalog::RelationDef(name, attrs));
  int n_rows = static_cast<int>(rng.Uniform(min_rows, max_rows));
  for (int r = 0; r < n_rows; ++r) {
    std::vector<catalog::Value> row;
    row.reserve(attrs.size());
    for (const catalog::AttributeDef& attr : attrs) {
      row.push_back(cell(rng, attr));
    }
    CQP_CHECK(table->Insert(storage::Tuple(std::move(row))).ok());
  }
  return table;
}

/// Builds a synthetic preference space for algorithm tests without a
/// database: K preferences with dois sorted descending and random
/// cost/selectivity, plus the C/S pointer vectors.
inline space::PreferenceSpaceResult MakeRandomSpace(Rng& rng, size_t k,
                                                    double base_cost_ms = 100,
                                                    double base_size = 1000) {
  space::PreferenceSpaceResult result;
  result.base.cost_ms = base_cost_ms;
  result.base.size = base_size;
  std::vector<double> dois;
  dois.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    dois.push_back(rng.UniformDouble(0.05, 0.95));
  }
  std::sort(dois.begin(), dois.end(), std::greater<double>());
  for (size_t i = 0; i < k; ++i) {
    estimation::ScoredPreference p;
    p.doi = dois[i];
    p.cost_ms = base_cost_ms + rng.UniformDouble(5, 300);
    p.selectivity = rng.UniformDouble(0.02, 0.9);
    p.size = base_size * p.selectivity;
    p.pref.selection.relation = "R";
    p.pref.selection.attribute = "a" + std::to_string(i);
    p.pref.selection.value = catalog::Value(static_cast<int64_t>(i));
    p.pref.selection.doi = p.doi;
    result.prefs.push_back(std::move(p));
  }
  result.D.resize(k);
  for (size_t i = 0; i < k; ++i) result.D[i] = static_cast<int32_t>(i);
  result.C = result.D;
  std::sort(result.C.begin(), result.C.end(), [&](int32_t a, int32_t b) {
    double ca = result.prefs[static_cast<size_t>(a)].cost_ms;
    double cb = result.prefs[static_cast<size_t>(b)].cost_ms;
    if (ca != cb) return ca > cb;
    return a < b;
  });
  result.S = result.D;
  std::sort(result.S.begin(), result.S.end(), [&](int32_t a, int32_t b) {
    double sa = result.prefs[static_cast<size_t>(a)].size;
    double sb = result.prefs[static_cast<size_t>(b)].size;
    if (sa != sb) return sa < sb;
    return a < b;
  });
  return result;
}

/// A small movies database with hand-authored rows, used by SQL/exec and
/// construction tests. Schema follows the paper's §3 example plus year and
/// duration columns.
inline storage::Database MakeTinyMovieDb() {
  using catalog::AttributeDef;
  using catalog::RelationDef;
  using catalog::Value;
  using catalog::ValueType;
  using storage::Tuple;

  storage::Database db;
  storage::Table* movie =
      db.CreateTable(RelationDef("MOVIE",
                                 {AttributeDef{"mid", ValueType::kInt},
                                  AttributeDef{"title", ValueType::kString},
                                  AttributeDef{"year", ValueType::kInt},
                                  AttributeDef{"duration", ValueType::kInt},
                                  AttributeDef{"did", ValueType::kInt}}))
          .value();
  storage::Table* director =
      db.CreateTable(RelationDef("DIRECTOR",
                                 {AttributeDef{"did", ValueType::kInt},
                                  AttributeDef{"name", ValueType::kString}}))
          .value();
  storage::Table* genre =
      db.CreateTable(RelationDef("GENRE",
                                 {AttributeDef{"mid", ValueType::kInt},
                                  AttributeDef{"genre", ValueType::kString}}))
          .value();

  auto mv = [&](int64_t mid, const char* title, int64_t year, int64_t dur,
                int64_t did) {
    CQP_CHECK(movie
                  ->Insert(Tuple({Value(mid), Value(title), Value(year),
                                  Value(dur), Value(did)}))
                  .ok());
  };
  auto dr = [&](int64_t did, const char* name) {
    CQP_CHECK(director->Insert(Tuple({Value(did), Value(name)})).ok());
  };
  auto gn = [&](int64_t mid, const char* g) {
    CQP_CHECK(genre->Insert(Tuple({Value(mid), Value(g)})).ok());
  };

  dr(1, "W. Allen");
  dr(2, "S. Kubrick");
  dr(3, "A. Hitchcock");
  mv(1, "Everyone Says I Love You", 1996, 101, 1);
  mv(2, "Manhattan", 1979, 96, 1);
  mv(3, "2001: A Space Odyssey", 1968, 142, 2);
  mv(4, "The Shining", 1980, 146, 2);
  mv(5, "Psycho", 1960, 109, 3);
  mv(6, "Vertigo", 1958, 128, 3);
  gn(1, "musical");
  gn(1, "comedy");
  gn(2, "comedy");
  gn(2, "romance");
  gn(3, "sci-fi");
  gn(4, "horror");
  gn(5, "horror");
  gn(5, "thriller");
  gn(6, "thriller");
  db.Analyze();
  return db;
}

}  // namespace cqp::testing

#endif  // CQP_TESTS_TEST_UTIL_H_
