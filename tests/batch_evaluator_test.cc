// Bit-for-bit parity of estimation::BatchEvaluator against the scalar
// StateEvaluator oracle. Every comparison here is operator== on doubles —
// the SIMD kernels are required to reproduce the scalar chain exactly
// (docs/simd.md), so no tolerance is ever appropriate in this file.

#include "estimation/batch_evaluator.h"

#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "estimation/evaluator.h"
#include "gtest/gtest.h"
#include "testing/instance.h"

namespace cqp::estimation {
namespace {

using ::cqp::testing::MakeSyntheticPref;
using prefs::ConjunctionModel;

struct Fixture {
  QueryBaseEstimate base;
  std::vector<ScoredPreference> prefs;
};

Fixture MakeFixture(uint64_t seed, size_t k) {
  Rng rng(seed);
  Fixture f;
  f.base.cost_ms = rng.UniformDouble(1.0, 500.0);
  f.base.size = rng.UniformDouble(10.0, 1e7);
  for (size_t i = 0; i < k; ++i) {
    f.prefs.push_back(MakeSyntheticPref(
        i, rng.NextDouble(), f.base.cost_ms + rng.UniformDouble(0.0, 2000.0),
        rng.NextDouble(), f.base.size));
  }
  return f;
}

void ExpectExactlyEqual(const StateParams& got, const StateParams& want,
                        const std::string& what) {
  EXPECT_EQ(got.doi, want.doi) << what;
  EXPECT_EQ(got.cost_ms, want.cost_ms) << what;
  EXPECT_EQ(got.size, want.size) << what;
  EXPECT_EQ(got.count, want.count) << what;
}

TEST(BatchEvaluatorTest, EvaluateMasksMatchesEvaluateBitsExactly) {
  for (ConjunctionModel model :
       {ConjunctionModel::kNoisyOr, ConjunctionModel::kSumCapped}) {
    for (size_t k : {1u, 2u, 3u, 7u, 13u, 20u, 63u}) {
      Fixture f = MakeFixture(100 + k, k);
      StateEvaluator scalar(f.base, f.prefs, model);
      BatchEvaluator batch(f.base, f.prefs, model);
      Rng rng(7 * k + static_cast<uint64_t>(model));
      const uint64_t all = k == 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;
      // Odd widths exercise the padded-tail path of every kernel.
      for (size_t n : {1u, 2u, 3u, 5u, 8u, 17u}) {
        std::vector<uint64_t> masks(n);
        for (uint64_t& m : masks) m = rng.Next() & all;
        masks[0] = 0;    // the empty state
        masks[n - 1] = all;  // the supreme state
        BatchEvaluator::Results results;
        batch.EvaluateMasks(masks.data(), n, &results);
        ASSERT_EQ(results.n, n);
        for (size_t l = 0; l < n; ++l) {
          ExpectExactlyEqual(results.Get(l), scalar.EvaluateBits(masks[l]),
                             "k=" + std::to_string(k) +
                                 " lane=" + std::to_string(l));
        }
      }
    }
  }
}

TEST(BatchEvaluatorTest, EvaluateSequenceMatchesExtendWithChain) {
  for (ConjunctionModel model :
       {ConjunctionModel::kNoisyOr, ConjunctionModel::kSumCapped}) {
    Fixture f = MakeFixture(42, 16);
    StateEvaluator scalar(f.base, f.prefs, model);
    BatchEvaluator batch(f.base, f.prefs, model);
    Rng rng(static_cast<uint64_t>(model) + 5);
    for (int trial = 0; trial < 50; ++trial) {
      // A random parent chain, then a shuffled sequence over the rest —
      // sequences are applied in *given* order (MinCost-BB feeds a
      // cost-ascending order, not ascending P index).
      std::vector<int32_t> all(16);
      for (int32_t i = 0; i < 16; ++i) all[i] = i;
      rng.Shuffle(all);
      const size_t parent_len = static_cast<size_t>(rng.Uniform(0, 8));
      StateParams parent = scalar.EmptyState();
      for (size_t i = 0; i < parent_len; ++i) {
        parent = scalar.ExtendWith(parent, all[i]);
      }
      const std::vector<int32_t> seq(all.begin() + parent_len, all.end());
      const size_t n = static_cast<size_t>(rng.Uniform(1, 9));
      std::vector<uint64_t> lane_masks(n);
      for (uint64_t& m : lane_masks) {
        m = rng.Next() & ((uint64_t{1} << seq.size()) - 1);
      }
      BatchEvaluator::Results results;
      batch.EvaluateSequence(parent, seq.data(), seq.size(),
                             lane_masks.data(), n, &results);
      for (size_t l = 0; l < n; ++l) {
        StateParams want = parent;
        for (size_t j = 0; j < seq.size(); ++j) {
          if ((lane_masks[l] >> j) & 1) want = scalar.ExtendWith(want, seq[j]);
        }
        ExpectExactlyEqual(results.Get(l), want,
                           "trial=" + std::to_string(trial) +
                               " lane=" + std::to_string(l));
      }
    }
  }
}

TEST(BatchEvaluatorTest, ExtendBatchMatchesExtendWith) {
  Fixture f = MakeFixture(9, 12);
  StateEvaluator scalar(f.base, f.prefs);
  BatchEvaluator batch(f.base, f.prefs);
  StateParams parent = scalar.ExtendWith(scalar.EmptyState(), 3);
  std::vector<int32_t> idx = {0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11};
  BatchEvaluator::Results results;
  batch.ExtendBatch(parent, idx.data(), idx.size(), &results);
  for (size_t l = 0; l < idx.size(); ++l) {
    ExpectExactlyEqual(results.Get(l), scalar.ExtendWith(parent, idx[l]),
                       "lane=" + std::to_string(l));
  }
  ExpectExactlyEqual(batch.EmptyState(), scalar.EmptyState(), "empty");
  ExpectExactlyEqual(batch.ExtendWith(parent, 5), scalar.ExtendWith(parent, 5),
                     "scalar ExtendWith mirror");
}

TEST(BatchEvaluatorTest, ForcedScalarKernelMatchesSimdKernel) {
  Fixture f = MakeFixture(77, 19);
  BatchEvaluator simd(f.base, f.prefs);
  ASSERT_EQ(setenv("CQP_FORCE_SCALAR_EVAL", "1", 1), 0);
  BatchEvaluator forced(f.base, f.prefs);
  ASSERT_EQ(unsetenv("CQP_FORCE_SCALAR_EVAL"), 0);
  EXPECT_STREQ(forced.kernel_name(), "scalar-forced");
  EXPECT_EQ(forced.lane_width(), 1u);
  Rng rng(3);
  std::vector<uint64_t> masks(33);
  for (uint64_t& m : masks) m = rng.Next() & ((uint64_t{1} << 19) - 1);
  BatchEvaluator::Results a;
  BatchEvaluator::Results b;
  simd.EvaluateMasks(masks.data(), masks.size(), &a);
  forced.EvaluateMasks(masks.data(), masks.size(), &b);
  for (size_t l = 0; l < masks.size(); ++l) {
    ExpectExactlyEqual(a.Get(l), b.Get(l), "lane=" + std::to_string(l));
  }
}

TEST(BatchEvaluatorTest, PaddingAndAccounting) {
  Fixture f = MakeFixture(5, 6);
  BatchEvaluator batch(f.base, f.prefs);
  const size_t w = batch.lane_width();
  EXPECT_EQ(batch.PaddedLanes(0), 0u);
  EXPECT_EQ(batch.PaddedLanes(1), w);
  EXPECT_EQ(batch.PaddedLanes(w), w);
  EXPECT_EQ(batch.PaddedLanes(w + 1), 2 * w);
  // n = 0 is a no-op, not a crash.
  BatchEvaluator::Results results;
  batch.EvaluateMasks(nullptr, 0, &results);
  EXPECT_EQ(results.n, 0u);
  // Extreme dois and selectivities pass through the kernels unchanged.
  std::vector<ScoredPreference> edge;
  edge.push_back(MakeSyntheticPref(0, 1.0, f.base.cost_ms, 0.0, f.base.size));
  edge.push_back(MakeSyntheticPref(1, 0.0, f.base.cost_ms, 1.0, f.base.size));
  StateEvaluator scalar(f.base, edge);
  BatchEvaluator be(f.base, edge);
  const uint64_t masks[3] = {1, 2, 3};
  be.EvaluateMasks(masks, 3, &results);
  for (size_t l = 0; l < 3; ++l) {
    ExpectExactlyEqual(results.Get(l), scalar.EvaluateBits(masks[l]),
                       "edge lane=" + std::to_string(l));
  }
}

}  // namespace
}  // namespace cqp::estimation
