#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "construct/personalizer.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "workload/experiment.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"
#include "workload/tourist_gen.h"

namespace cqp {
namespace {

using construct::PersonalizeRequest;
using construct::Personalizer;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::MovieDbConfig config;
    config.n_movies = 3000;
    config.n_directors = 200;
    config.n_actors = 500;
    db_ = new storage::Database(*workload::BuildMovieDatabase(config));
    workload::ProfileGenConfig pc;
    auto profile = *workload::GenerateProfile(pc, config);
    graph_ = new prefs::PersonalizationGraph(
        *prefs::PersonalizationGraph::Build(std::move(profile), *db_));
  }

  static storage::Database* db_;
  static prefs::PersonalizationGraph* graph_;
};

storage::Database* IntegrationTest::db_ = nullptr;
prefs::PersonalizationGraph* IntegrationTest::graph_ = nullptr;

TEST_F(IntegrationTest, Problem2EndToEndWithAllMaxDoiAlgorithms) {
  Personalizer personalizer(db_, graph_);
  for (const char* algorithm :
       {"C-Boundaries", "C-MaxBounds", "D-MaxDoi", "D-SingleMaxDoi",
        "D-HeurDoi"}) {
    PersonalizeRequest request;
    request.sql = "SELECT title FROM MOVIE";
    request.problem = cqp::ProblemSpec::Problem2(400.0);
    request.algorithm = algorithm;
    request.space_options.max_k = 15;
    auto result = personalizer.Personalize(request);
    ASSERT_TRUE(result.ok()) << algorithm << ": "
                             << result.status().ToString();
    ASSERT_TRUE(result->solution.feasible) << algorithm;
    EXPECT_LE(result->solution.params.cost_ms, 400.0) << algorithm;
  }
}

TEST_F(IntegrationTest, ExactAlgorithmsAgreeOnRealWorkload) {
  Personalizer personalizer(db_, graph_);
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.space_options.max_k = 14;
  request.problem = cqp::ProblemSpec::Problem2(500.0);

  request.algorithm = "C-Boundaries";
  auto a = *personalizer.Personalize(request);
  request.algorithm = "D-MaxDoi";
  auto b = *personalizer.Personalize(request);
  request.algorithm = "Exhaustive";
  auto c = *personalizer.Personalize(request);
  ASSERT_TRUE(a.solution.feasible);
  EXPECT_NEAR(a.solution.params.doi, c.solution.params.doi, 1e-9);
  EXPECT_NEAR(b.solution.params.doi, c.solution.params.doi, 1e-9);
}

TEST_F(IntegrationTest, EstimatedCostTracksSimulatedExecution) {
  // The Fig. 15 claim: the Formula 6 estimate is close to the measured
  // execution time of the rewritten query under the engine's I/O clock.
  Personalizer personalizer(db_, graph_);
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(2000.0);
  request.algorithm = "C-Boundaries";
  request.space_options.max_k = 10;
  auto result = *personalizer.Personalize(request);
  ASSERT_TRUE(result.solution.feasible);
  ASSERT_GT(result.personalized.L(), 0u);

  exec::ExecStats stats;
  auto rows = personalizer.Execute(result, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  double real_ms = stats.SimulatedMillis(exec::CostModelParams());
  double est_ms = result.solution.params.cost_ms;
  // Estimate is I/O-only; the measured time adds CPU. Within 25%.
  EXPECT_GT(real_ms, 0.0);
  EXPECT_NEAR(est_ms, real_ms, 0.25 * real_ms);
  // And the I/O component must match exactly: the sub-queries scan exactly
  // the relations the estimator charged for.
  EXPECT_DOUBLE_EQ(static_cast<double>(stats.blocks_read), est_ms);
}

TEST_F(IntegrationTest, ResultSizeRespectsTopKStyleBounds) {
  // Problem 3: Al wants at most three restaurants — here, at most 40
  // movies, with a cost budget.
  Personalizer personalizer(db_, graph_);
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem3(2000.0, 1.0, 40.0);
  request.algorithm = "C-Boundaries";
  request.space_options.max_k = 10;
  auto result = *personalizer.Personalize(request);
  if (!result.solution.feasible) GTEST_SKIP() << "instance infeasible";
  EXPECT_LE(result.solution.params.size, 40.0);
  EXPECT_GE(result.solution.params.size, 1.0);
  EXPECT_LE(result.solution.params.cost_ms, 2000.0);
}

TEST_F(IntegrationTest, MinCostProblemPicksCheapSatisfyingQuery) {
  Personalizer personalizer(db_, graph_);
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem4(0.9);
  request.algorithm = "MinCost-BB";
  request.space_options.max_k = 12;
  auto result = *personalizer.Personalize(request);
  ASSERT_TRUE(result.solution.feasible);
  EXPECT_GE(result.solution.params.doi, 0.9);

  // Greedy must be no cheaper than the exact optimum.
  request.algorithm = "MinCost-Greedy";
  auto greedy = *personalizer.Personalize(request);
  ASSERT_TRUE(greedy.solution.feasible);
  EXPECT_GE(greedy.solution.params.cost_ms,
            result.solution.params.cost_ms - 1e-6);
}

TEST_F(IntegrationTest, RankedResultsAreDoiSorted) {
  Personalizer personalizer(db_, graph_);
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(600.0);
  request.algorithm = "D-HeurDoi";
  request.space_options.max_k = 8;
  auto result = *personalizer.Personalize(request);
  ASSERT_TRUE(result.solution.feasible);
  exec::ExecStats stats;
  auto rows = *personalizer.Execute(result, &stats);
  for (size_t i = 1; i < rows.rows.size(); ++i) {
    EXPECT_GE(rows.rows[i - 1].doi, rows.rows[i].doi);
  }
}

TEST(TouristIntegrationTest, AlInPisaScenario) {
  // The paper's §1 example: a palmtop query with tight cost and size
  // bounds (smax = 3 restaurants) vs. a laptop query with loose bounds.
  auto db = *workload::BuildTouristDatabase(workload::TouristDbConfig{});
  auto graph = *prefs::PersonalizationGraph::Build(
      *workload::BuildAlProfile(), db);
  Personalizer personalizer(&db, &graph);

  PersonalizeRequest palmtop;
  palmtop.sql = "SELECT name FROM RESTAURANT";
  palmtop.problem = cqp::ProblemSpec::Problem3(/*cmax=*/320.0, /*smin=*/1.0,
                                               /*smax=*/12.0);
  palmtop.algorithm = "C-Boundaries";
  auto constrained = personalizer.Personalize(palmtop);
  ASSERT_TRUE(constrained.ok()) << constrained.status().ToString();

  PersonalizeRequest laptop = palmtop;
  laptop.problem = cqp::ProblemSpec::Problem2(1e6);
  auto loose = *personalizer.Personalize(laptop);
  ASSERT_TRUE(loose.solution.feasible);

  // With the shipped tourist data the palmtop instance is feasible; guard
  // with an assert so a workload change cannot silently weaken the test.
  ASSERT_TRUE(constrained->solution.feasible);
  // The palmtop answer must be small and cheap; the laptop one maximizes
  // doi without regard to size.
  EXPECT_LE(constrained->solution.params.size, 12.0);
  EXPECT_LE(constrained->solution.params.cost_ms, 320.0);
  EXPECT_GE(loose.solution.params.doi, constrained->solution.params.doi);
}

}  // namespace
}  // namespace cqp
