#include <gtest/gtest.h>

#include "cqp/problem.h"

namespace cqp::cqp {
namespace {

using estimation::StateParams;

StateParams Params(double doi, double cost, double size) {
  StateParams p;
  p.doi = doi;
  p.cost_ms = cost;
  p.size = size;
  return p;
}

TEST(ProblemSpecTest, Table1Classification) {
  EXPECT_EQ(ProblemSpec::Problem1(1, 100).ProblemNumber(), 1);
  EXPECT_EQ(ProblemSpec::Problem2(400).ProblemNumber(), 2);
  EXPECT_EQ(ProblemSpec::Problem3(400, 1, 100).ProblemNumber(), 3);
  EXPECT_EQ(ProblemSpec::Problem4(0.8).ProblemNumber(), 4);
  EXPECT_EQ(ProblemSpec::Problem5(0.8, 1, 100).ProblemNumber(), 5);
  EXPECT_EQ(ProblemSpec::Problem6(1, 100).ProblemNumber(), 6);
}

TEST(ProblemSpecTest, AllTable1ProblemsValidate) {
  EXPECT_TRUE(ProblemSpec::Problem1(1, 100).Validate().ok());
  EXPECT_TRUE(ProblemSpec::Problem2(400).Validate().ok());
  EXPECT_TRUE(ProblemSpec::Problem3(400, 1, 100).Validate().ok());
  EXPECT_TRUE(ProblemSpec::Problem4(0.8).Validate().ok());
  EXPECT_TRUE(ProblemSpec::Problem5(0.8, 1, 100).Validate().ok());
  EXPECT_TRUE(ProblemSpec::Problem6(1, 100).Validate().ok());
}

TEST(ProblemSpecTest, MeaninglessCombosRejected) {
  // Maximizing doi with a doi lower bound is not a Table 1 problem.
  ProblemSpec s = ProblemSpec::Problem2(400);
  s.dmin = 0.5;
  EXPECT_FALSE(s.Validate().ok());
  // Minimizing cost with a cost bound is redundant.
  ProblemSpec t = ProblemSpec::Problem4(0.5);
  t.cmax_ms = 100;
  EXPECT_FALSE(t.Validate().ok());
  // Fully unconstrained problems are trivial.
  ProblemSpec u;
  EXPECT_FALSE(u.Validate().ok());
}

TEST(ProblemSpecTest, RejectsBadRanges) {
  ProblemSpec s = ProblemSpec::Problem1(100, 1);  // smin > smax
  EXPECT_FALSE(s.Validate().ok());
  ProblemSpec t = ProblemSpec::Problem4(1.5);  // dmin > 1
  EXPECT_FALSE(t.Validate().ok());
  ProblemSpec u = ProblemSpec::Problem2(-1);  // negative cost bound
  EXPECT_FALSE(u.Validate().ok());
}

TEST(ProblemSpecTest, FeasibilityChecksEveryBound) {
  ProblemSpec s = ProblemSpec::Problem3(400, 5, 50);
  EXPECT_TRUE(s.IsFeasible(Params(0.5, 400, 25)));
  EXPECT_FALSE(s.IsFeasible(Params(0.5, 401, 25)));  // cost
  EXPECT_FALSE(s.IsFeasible(Params(0.5, 100, 4)));   // size < smin
  EXPECT_FALSE(s.IsFeasible(Params(0.5, 100, 51)));  // size > smax
  ProblemSpec t = ProblemSpec::Problem4(0.7);
  EXPECT_FALSE(t.IsFeasible(Params(0.6, 10, 10)));
  EXPECT_TRUE(t.IsFeasible(Params(0.7, 10, 10)));
}

TEST(ProblemSpecTest, ObjectiveDirection) {
  ProblemSpec max_doi = ProblemSpec::Problem2(400);
  EXPECT_TRUE(max_doi.Better(Params(0.9, 1, 1), Params(0.8, 1, 1)));
  EXPECT_FALSE(max_doi.Better(Params(0.8, 1, 1), Params(0.8, 1, 1)));

  ProblemSpec min_cost = ProblemSpec::Problem4(0.5);
  EXPECT_TRUE(min_cost.Better(Params(0.5, 100, 1), Params(0.9, 200, 1)));
  EXPECT_FALSE(min_cost.Better(Params(0.5, 200, 1), Params(0.9, 100, 1)));
}

TEST(ProblemSpecTest, ToStringMentionsBounds) {
  std::string s = ProblemSpec::Problem3(400, 1, 10).ToString();
  EXPECT_NE(s.find("MAX doi"), std::string::npos);
  EXPECT_NE(s.find("cost"), std::string::npos);
  EXPECT_NE(s.find("size"), std::string::npos);
}

}  // namespace
}  // namespace cqp::cqp
