#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace cqp::sql {
namespace {

using catalog::CompareOp;

// ---------- Lexer ----------

TEST(LexerTest, KeywordsUppercasedIdentifiersKept) {
  auto tokens = *Lex("select Title from Movie");
  ASSERT_EQ(tokens.size(), 5u);  // incl. kEnd
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "Title");
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_EQ(tokens[4].kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersIntAndDouble) {
  auto tokens = *Lex("42 4.5 -3");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 4.5);
  EXPECT_EQ(tokens[2].int_value, -3);
}

TEST(LexerTest, StringWithEscapedQuote) {
  auto tokens = *Lex("'O''Hara'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "O'Hara");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = *Lex("< <= > >= <> != =");
  EXPECT_TRUE(tokens[0].IsSymbol("<"));
  EXPECT_TRUE(tokens[1].IsSymbol("<="));
  EXPECT_TRUE(tokens[2].IsSymbol(">"));
  EXPECT_TRUE(tokens[3].IsSymbol(">="));
  EXPECT_TRUE(tokens[4].IsSymbol("<>"));
  EXPECT_TRUE(tokens[5].IsSymbol("<>"));  // != normalizes to <>
  EXPECT_TRUE(tokens[6].IsSymbol("="));
}

TEST(LexerTest, RejectsStrayCharacter) {
  EXPECT_FALSE(Lex("select @ from t").ok());
}

// ---------- Parser ----------

TEST(ParserTest, MinimalQuery) {
  SelectQuery q = *ParseSelect("SELECT title FROM MOVIE");
  ASSERT_EQ(q.select_list.size(), 1u);
  EXPECT_EQ(q.select_list[0].attribute, "title");
  EXPECT_TRUE(q.select_list[0].qualifier.empty());
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from[0].relation, "MOVIE");
  EXPECT_TRUE(q.where.empty());
  EXPECT_FALSE(q.distinct);
}

TEST(ParserTest, StarSelect) {
  SelectQuery q = *ParseSelect("SELECT * FROM MOVIE;");
  EXPECT_TRUE(q.select_list.empty());
}

TEST(ParserTest, DistinctFlag) {
  SelectQuery q = *ParseSelect("SELECT DISTINCT title FROM MOVIE");
  EXPECT_TRUE(q.distinct);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  SelectQuery q =
      *ParseSelect("SELECT M.title FROM MOVIE AS M, DIRECTOR D");
  ASSERT_EQ(q.from.size(), 2u);
  EXPECT_EQ(q.from[0].alias, "M");
  EXPECT_EQ(q.from[1].alias, "D");
  EXPECT_EQ(q.from[1].EffectiveAlias(), "D");
}

TEST(ParserTest, WhereWithJoinsAndSelections) {
  SelectQuery q = *ParseSelect(
      "SELECT M.title FROM MOVIE M, DIRECTOR D "
      "WHERE M.did = D.did AND D.name = 'W. Allen' AND M.year >= 1970");
  ASSERT_EQ(q.where.size(), 3u);
  EXPECT_EQ(q.where[0].kind, Predicate::Kind::kJoin);
  EXPECT_EQ(q.where[1].kind, Predicate::Kind::kSelection);
  EXPECT_EQ(q.where[1].literal.AsString(), "W. Allen");
  EXPECT_EQ(q.where[2].op, CompareOp::kGe);
  EXPECT_EQ(q.where[2].literal.AsInt(), 1970);
}

TEST(ParserTest, DoubleLiteral) {
  SelectQuery q = *ParseSelect("SELECT a FROM t WHERE t.x < 2.5");
  EXPECT_DOUBLE_EQ(q.where[0].literal.AsDouble(), 2.5);
}

TEST(ParserTest, ErrorsOnMissingFrom) {
  EXPECT_FALSE(ParseSelect("SELECT title").ok());
}

TEST(ParserTest, ErrorsOnTrailingGarbage) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a = 1 b").ok());
}

TEST(ParserTest, ErrorsOnMissingPredicateRhs) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a =").ok());
}

TEST(ParserTest, ErrorsOnDanglingComma) {
  EXPECT_FALSE(ParseSelect("SELECT a, FROM t").ok());
}

TEST(ParserTest, OrderByAndLimit) {
  SelectQuery q = *ParseSelect(
      "SELECT title, year FROM MOVIE ORDER BY year DESC, title LIMIT 5");
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_TRUE(q.order_by[0].descending);
  EXPECT_EQ(q.order_by[0].column.attribute, "year");
  EXPECT_FALSE(q.order_by[1].descending);
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 5);
}

TEST(ParserTest, ExplicitAscAccepted) {
  SelectQuery q = *ParseSelect("SELECT a FROM t ORDER BY a ASC");
  ASSERT_EQ(q.order_by.size(), 1u);
  EXPECT_FALSE(q.order_by[0].descending);
}

TEST(ParserTest, LimitWithoutOrderBy) {
  SelectQuery q = *ParseSelect("SELECT a FROM t LIMIT 3");
  EXPECT_TRUE(q.order_by.empty());
  EXPECT_EQ(*q.limit, 3);
}

TEST(ParserTest, BadLimitRejected) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT -1").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t ORDER year").ok());
}

// ---------- Printer round trips ----------

TEST(PrinterTest, RoundTripPreservesSemantics) {
  const char* cases[] = {
      "SELECT title FROM MOVIE",
      "SELECT DISTINCT M.title, D.name FROM MOVIE M, DIRECTOR D WHERE "
      "M.did = D.did",
      "SELECT * FROM GENRE WHERE GENRE.genre = 'sci-fi'",
      "SELECT a FROM t WHERE t.x >= 10 AND t.y <> 'z'",
      "SELECT a, b FROM t ORDER BY b DESC, a LIMIT 7",
  };
  for (const char* text : cases) {
    SelectQuery q1 = *ParseSelect(text);
    std::string sql = q1.ToSql();
    auto q2 = ParseSelect(sql);
    ASSERT_TRUE(q2.ok()) << sql;
    EXPECT_EQ(sql, q2->ToSql()) << "printer not a fixed point for " << text;
    EXPECT_EQ(q1.where.size(), q2->where.size());
    for (size_t i = 0; i < q1.where.size(); ++i) {
      EXPECT_TRUE(q1.where[i] == q2->where[i]) << sql;
    }
  }
}

TEST(PrinterTest, StringLiteralEscaping) {
  SelectQuery q = *ParseSelect("SELECT a FROM t WHERE t.n = 'O''Hara'");
  EXPECT_NE(q.ToSql().find("'O''Hara'"), std::string::npos);
  SelectQuery q2 = *ParseSelect(q.ToSql());
  EXPECT_EQ(q2.where[0].literal.AsString(), "O'Hara");
}

// ---------- UnionGroupQuery (the §4.2 statement) ----------

TEST(UnionGroupTest, ParsesPaperShape) {
  auto q = *ParseUnionGroup(
      "SELECT title FROM ("
      "  SELECT M.title FROM MOVIE M, DIRECTOR D"
      "    WHERE M.did = D.did AND D.name = 'W. Allen'"
      "  UNION ALL"
      "  SELECT M.title FROM MOVIE M, GENRE G"
      "    WHERE M.mid = G.mid AND G.genre = 'musical'"
      ") GROUP BY title HAVING COUNT(*) = 2");
  EXPECT_EQ(q.branches.size(), 2u);
  EXPECT_EQ(q.having_count, 2);
  ASSERT_EQ(q.select_list.size(), 1u);
  EXPECT_EQ(q.select_list[0].attribute, "title");
  EXPECT_EQ(q.branches[0].where.size(), 2u);
}

TEST(UnionGroupTest, PrinterRoundTrip) {
  const char* text =
      "SELECT title FROM (\n"
      "  SELECT DISTINCT MOVIE.title FROM MOVIE WHERE MOVIE.year >= 1990\n"
      "  UNION ALL\n"
      "  SELECT DISTINCT MOVIE.title FROM MOVIE WHERE MOVIE.duration <= 120\n"
      ") GROUP BY title HAVING COUNT(*) = 2";
  auto q1 = *ParseUnionGroup(text);
  auto q2 = ParseUnionGroup(q1.ToSql());
  ASSERT_TRUE(q2.ok()) << q1.ToSql();
  EXPECT_EQ(q1.ToSql(), q2->ToSql());
  EXPECT_TRUE(q2->branches[0].distinct);
}

TEST(UnionGroupTest, RejectsShapeViolations) {
  // GROUP BY must repeat the select list.
  EXPECT_FALSE(ParseUnionGroup(
                   "SELECT title FROM (SELECT title FROM MOVIE) "
                   "GROUP BY year HAVING COUNT(*) = 1")
                   .ok());
  // Branch arity mismatch.
  EXPECT_FALSE(ParseUnionGroup(
                   "SELECT title FROM ("
                   "SELECT title FROM MOVIE UNION ALL "
                   "SELECT title, year FROM MOVIE) "
                   "GROUP BY title HAVING COUNT(*) = 2")
                   .ok());
  // Count must be positive.
  EXPECT_FALSE(ParseUnionGroup(
                   "SELECT title FROM (SELECT title FROM MOVIE) "
                   "GROUP BY title HAVING COUNT(*) = 0")
                   .ok());
  // Missing UNION keyword chain / parenthesis.
  EXPECT_FALSE(ParseUnionGroup(
                   "SELECT title FROM SELECT title FROM MOVIE "
                   "GROUP BY title HAVING COUNT(*) = 1")
                   .ok());
}

TEST(PrinterTest, AliasOmittedWhenSameAsRelation) {
  TableRef t{"MOVIE", "MOVIE"};
  EXPECT_EQ(t.ToSql(), "MOVIE");
  TableRef t2{"MOVIE", "M"};
  EXPECT_EQ(t2.ToSql(), "MOVIE M");
}

}  // namespace
}  // namespace cqp::sql
