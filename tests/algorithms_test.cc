#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "cqp/algorithms.h"
#include "estimation/eval_cache.h"
#include "test_util.h"

namespace cqp::cqp {
namespace {

using ::cqp::testing::MakeRandomSpace;

/// Recomputes a solution's parameters from its chosen set and checks
/// consistency plus feasibility under `problem`.
void CheckSolutionConsistent(const space::PreferenceSpaceResult& space,
                             const ProblemSpec& problem, const Solution& sol,
                             const std::string& context) {
  if (!sol.feasible) return;
  estimation::StateEvaluator eval = space.MakeEvaluator();
  estimation::StateParams recomputed = eval.Evaluate(sol.chosen);
  EXPECT_NEAR(recomputed.doi, sol.params.doi, 1e-9) << context;
  EXPECT_NEAR(recomputed.cost_ms, sol.params.cost_ms, 1e-6) << context;
  EXPECT_NEAR(recomputed.size, sol.params.size, 1e-6) << context;
  EXPECT_TRUE(problem.IsFeasible(recomputed))
      << context << " chose infeasible " << sol.chosen.ToString();
}

Solution MustSolve(const std::string& name,
                   const space::PreferenceSpaceResult& space,
                   const ProblemSpec& problem) {
  const Algorithm* algorithm = *GetAlgorithm(name);
  SearchContext ctx;
  auto sol = algorithm->Solve(space, problem, ctx);
  CQP_CHECK(sol.ok()) << name << ": " << sol.status().ToString();
  CheckSolutionConsistent(space, problem, *sol, name);
  return *sol;
}

// ---------- registry ----------

TEST(RegistryTest, AllPaperAlgorithmsRegistered) {
  auto names = AlgorithmNames();
  for (const char* expected :
       {"D-MaxDoi", "D-SingleMaxDoi", "C-Boundaries", "C-MaxBounds",
        "D-HeurDoi", "Exhaustive", "MinCost-BB", "MinCost-Greedy"}) {
    bool found = false;
    for (const auto& n : names) found = found || n == expected;
    EXPECT_TRUE(found) << expected;
  }
  EXPECT_TRUE(GetAlgorithm("c-boundaries").ok());  // case-insensitive
  EXPECT_FALSE(GetAlgorithm("nope").ok());
}

TEST(RegistryTest, SupportMatrix) {
  ProblemSpec p2 = ProblemSpec::Problem2(400);
  ProblemSpec p4 = ProblemSpec::Problem4(0.5);
  for (const char* name :
       {"D-MaxDoi", "D-SingleMaxDoi", "C-Boundaries", "C-MaxBounds",
        "D-HeurDoi"}) {
    EXPECT_TRUE((*GetAlgorithm(name))->Supports(p2)) << name;
    EXPECT_FALSE((*GetAlgorithm(name))->Supports(p4)) << name;
  }
  EXPECT_TRUE((*GetAlgorithm("Exhaustive"))->Supports(p2));
  EXPECT_TRUE((*GetAlgorithm("Exhaustive"))->Supports(p4));
  EXPECT_TRUE((*GetAlgorithm("MinCost-BB"))->Supports(p4));
  EXPECT_FALSE((*GetAlgorithm("MinCost-BB"))->Supports(p2));
}

TEST(RegistryTest, ExactnessClaims) {
  ProblemSpec p2 = ProblemSpec::Problem2(400);
  EXPECT_TRUE((*GetAlgorithm("C-Boundaries"))->IsExactFor(p2));
  EXPECT_TRUE((*GetAlgorithm("D-MaxDoi"))->IsExactFor(p2));
  EXPECT_FALSE((*GetAlgorithm("C-MaxBounds"))->IsExactFor(p2));
  EXPECT_FALSE((*GetAlgorithm("D-HeurDoi"))->IsExactFor(p2));
  EXPECT_FALSE((*GetAlgorithm("D-SingleMaxDoi"))->IsExactFor(p2));
}

// ---------- Problem 2 differential sweep ----------

class Problem2Sweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(Problem2Sweep, ExactAlgorithmsMatchExhaustive) {
  auto [seed, k, fraction] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  auto space = MakeRandomSpace(rng, static_cast<size_t>(k));
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  ProblemSpec problem = ProblemSpec::Problem2(fraction * supreme);

  Solution optimal = MustSolve("Exhaustive", space, problem);
  ASSERT_TRUE(optimal.feasible);  // fraction >= base-cost always here

  for (const char* name : {"C-Boundaries", "D-MaxDoi", "D-MaxDoi+Prune"}) {
    Solution got = MustSolve(name, space, problem);
    ASSERT_TRUE(got.feasible) << name;
    EXPECT_NEAR(got.params.doi, optimal.params.doi, 1e-9)
        << name << " missed the optimum at seed=" << seed << " k=" << k
        << " fraction=" << fraction;
  }
}

TEST_P(Problem2Sweep, HeuristicsAreFeasibleAndBounded) {
  auto [seed, k, fraction] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 1000);
  auto space = MakeRandomSpace(rng, static_cast<size_t>(k));
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  ProblemSpec problem = ProblemSpec::Problem2(fraction * supreme);

  Solution optimal = MustSolve("Exhaustive", space, problem);
  for (const char* name :
       {"C-MaxBounds", "D-SingleMaxDoi", "D-HeurDoi"}) {
    Solution got = MustSolve(name, space, problem);
    // Heuristics never fabricate feasibility and never miss it entirely
    // (they all consider the empty state).
    EXPECT_EQ(got.feasible, optimal.feasible) << name;
    if (!optimal.feasible) continue;
    EXPECT_LE(got.params.doi, optimal.params.doi + 1e-9) << name;
    // The paper's Fig. 14 shows tiny quality gaps; assert a loose but
    // meaningful bound (heuristics find at least half the optimal doi).
    EXPECT_GE(got.params.doi, 0.5 * optimal.params.doi) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, Problem2Sweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(4, 6, 9, 12),
                       ::testing::Values(0.15, 0.3, 0.5, 0.8)));

// ---------- Problems 1 and 3 (size bounds) ----------

class SizeBoundSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(SizeBoundSweep, Problem1CBoundariesMatchesExhaustive) {
  auto [seed, k] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 2000);
  auto space = MakeRandomSpace(rng, static_cast<size_t>(k));
  // Size window below the base size so that some preferences are required.
  double smax = space.base.size * rng.UniformDouble(0.05, 0.6);
  double smin = smax * rng.UniformDouble(0.005, 0.3);
  ProblemSpec problem = ProblemSpec::Problem1(smin, smax);

  Solution optimal = MustSolve("Exhaustive", space, problem);
  Solution got = MustSolve("C-Boundaries", space, problem);
  EXPECT_EQ(got.feasible, optimal.feasible);
  if (optimal.feasible) {
    EXPECT_NEAR(got.params.doi, optimal.params.doi, 1e-9)
        << "seed=" << seed << " k=" << k;
  }
}

TEST_P(SizeBoundSweep, Problem3CBoundariesMatchesExhaustive) {
  auto [seed, k] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 3000);
  auto space = MakeRandomSpace(rng, static_cast<size_t>(k));
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  double cmax = supreme * rng.UniformDouble(0.2, 0.7);
  double smax = space.base.size * rng.UniformDouble(0.1, 0.9);
  double smin = smax * rng.UniformDouble(0.001, 0.2);
  ProblemSpec problem = ProblemSpec::Problem3(cmax, smin, smax);

  Solution optimal = MustSolve("Exhaustive", space, problem);
  Solution got = MustSolve("C-Boundaries", space, problem);
  EXPECT_EQ(got.feasible, optimal.feasible);
  if (optimal.feasible) {
    EXPECT_NEAR(got.params.doi, optimal.params.doi, 1e-9)
        << "seed=" << seed << " k=" << k;
  }
}

TEST_P(SizeBoundSweep, Problem3HeuristicsStayFeasible) {
  auto [seed, k] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 4000);
  auto space = MakeRandomSpace(rng, static_cast<size_t>(k));
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  ProblemSpec problem =
      ProblemSpec::Problem3(0.5 * supreme, 0.0, space.base.size);

  Solution optimal = MustSolve("Exhaustive", space, problem);
  for (const char* name :
       {"C-MaxBounds", "D-MaxDoi", "D-SingleMaxDoi", "D-HeurDoi"}) {
    Solution got = MustSolve(name, space, problem);
    if (got.feasible && optimal.feasible) {
      EXPECT_LE(got.params.doi, optimal.params.doi + 1e-9) << name;
    }
    EXPECT_FALSE(got.feasible && !optimal.feasible) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SizeBoundSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5,
                                                              6, 7, 8, 9, 10),
                                            ::testing::Values(5, 8, 11)));

// ---------- Problems 4-6 (cost minimization) ----------

class MinCostSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MinCostSweep, Problem4BbMatchesExhaustive) {
  auto [seed, k] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 5000);
  auto space = MakeRandomSpace(rng, static_cast<size_t>(k));
  ProblemSpec problem = ProblemSpec::Problem4(rng.UniformDouble(0.3, 0.99));

  Solution optimal = MustSolve("Exhaustive", space, problem);
  Solution got = MustSolve("MinCost-BB", space, problem);
  EXPECT_EQ(got.feasible, optimal.feasible);
  if (optimal.feasible) {
    EXPECT_NEAR(got.params.cost_ms, optimal.params.cost_ms, 1e-6);
  }
}

TEST_P(MinCostSweep, Problem5BbMatchesExhaustive) {
  auto [seed, k] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 6000);
  auto space = MakeRandomSpace(rng, static_cast<size_t>(k));
  double smax = space.base.size * rng.UniformDouble(0.2, 1.0);
  ProblemSpec problem =
      ProblemSpec::Problem5(rng.UniformDouble(0.2, 0.9), 0.0, smax);

  Solution optimal = MustSolve("Exhaustive", space, problem);
  Solution got = MustSolve("MinCost-BB", space, problem);
  EXPECT_EQ(got.feasible, optimal.feasible);
  if (optimal.feasible) {
    EXPECT_NEAR(got.params.cost_ms, optimal.params.cost_ms, 1e-6);
  }
}

TEST_P(MinCostSweep, Problem6BbMatchesExhaustive) {
  auto [seed, k] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 7000);
  auto space = MakeRandomSpace(rng, static_cast<size_t>(k));
  double smax = space.base.size * rng.UniformDouble(0.05, 0.7);
  double smin = smax * rng.UniformDouble(0.001, 0.3);
  ProblemSpec problem = ProblemSpec::Problem6(smin, smax);

  Solution optimal = MustSolve("Exhaustive", space, problem);
  Solution got = MustSolve("MinCost-BB", space, problem);
  EXPECT_EQ(got.feasible, optimal.feasible);
  if (optimal.feasible) {
    EXPECT_NEAR(got.params.cost_ms, optimal.params.cost_ms, 1e-6);
  }
}

TEST_P(MinCostSweep, GreedyIsFeasibleAndNoBetterThanOptimal) {
  auto [seed, k] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 8000);
  auto space = MakeRandomSpace(rng, static_cast<size_t>(k));
  ProblemSpec problem = ProblemSpec::Problem4(rng.UniformDouble(0.3, 0.95));

  Solution optimal = MustSolve("Exhaustive", space, problem);
  Solution got = MustSolve("MinCost-Greedy", space, problem);
  EXPECT_EQ(got.feasible, optimal.feasible);
  if (optimal.feasible && got.feasible) {
    EXPECT_GE(got.params.cost_ms, optimal.params.cost_ms - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MinCostSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5,
                                                              6, 7, 8),
                                            ::testing::Values(5, 8, 11)));

// ---------- edge cases ----------

TEST(AlgorithmEdgeTest, EmptyPreferenceSpace) {
  Rng rng(1);
  auto space = MakeRandomSpace(rng, 0);
  ProblemSpec problem = ProblemSpec::Problem2(1000);
  for (const char* name :
       {"Exhaustive", "C-Boundaries", "C-MaxBounds", "D-MaxDoi",
        "D-SingleMaxDoi", "D-HeurDoi"}) {
    Solution sol = MustSolve(name, space, problem);
    EXPECT_TRUE(sol.feasible) << name;
    EXPECT_TRUE(sol.chosen.empty()) << name;
    EXPECT_DOUBLE_EQ(sol.params.doi, 0.0) << name;
  }
}

TEST(AlgorithmEdgeTest, CmaxBelowBaseCostIsInfeasible) {
  Rng rng(2);
  auto space = MakeRandomSpace(rng, 6, /*base_cost_ms=*/100);
  ProblemSpec problem = ProblemSpec::Problem2(50);  // below cost(Q)
  for (const char* name :
       {"Exhaustive", "C-Boundaries", "C-MaxBounds", "D-MaxDoi",
        "D-SingleMaxDoi", "D-HeurDoi"}) {
    Solution sol = MustSolve(name, space, problem);
    EXPECT_FALSE(sol.feasible) << name;
  }
}

TEST(AlgorithmEdgeTest, UnboundedCmaxSelectsEverything) {
  Rng rng(3);
  auto space = MakeRandomSpace(rng, 7);
  ProblemSpec problem = ProblemSpec::Problem2(1e15);
  for (const char* name :
       {"Exhaustive", "C-Boundaries", "C-MaxBounds", "D-MaxDoi",
        "D-SingleMaxDoi", "D-HeurDoi"}) {
    Solution sol = MustSolve(name, space, problem);
    ASSERT_TRUE(sol.feasible) << name;
    EXPECT_EQ(sol.chosen.size(), 7u)
        << name << " should take all preferences when nothing binds";
  }
}

TEST(AlgorithmEdgeTest, TightCmaxAdmitsOnlyCheapestSingleton) {
  Rng rng(4);
  auto space = MakeRandomSpace(rng, 6);
  // Find the cheapest preference and allow exactly it.
  double min_cost = 1e18;
  for (const auto& p : space.prefs) min_cost = std::min(min_cost, p.cost_ms);
  ProblemSpec problem = ProblemSpec::Problem2(min_cost);
  Solution optimal = MustSolve("Exhaustive", space, problem);
  ASSERT_TRUE(optimal.feasible);
  EXPECT_LE(optimal.chosen.size(), 1u);
  for (const char* name : {"C-Boundaries", "D-MaxDoi", "D-MaxDoi+Prune"}) {
    Solution got = MustSolve(name, space, problem);
    EXPECT_NEAR(got.params.doi, optimal.params.doi, 1e-12) << name;
  }
}

TEST(AlgorithmEdgeTest, ExhaustiveRefusesHugeK) {
  Rng rng(5);
  auto space = MakeRandomSpace(rng, 26);
  ProblemSpec problem = ProblemSpec::Problem2(1000);
  const Algorithm* exhaustive = *GetAlgorithm("Exhaustive");
  SearchContext ctx;
  EXPECT_FALSE(exhaustive->Solve(space, problem, ctx).ok());
}

TEST(AlgorithmEdgeTest, MetricsArePopulated) {
  Rng rng(6);
  auto space = MakeRandomSpace(rng, 10);
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  ProblemSpec problem = ProblemSpec::Problem2(0.5 * supreme);
  for (const char* name : {"C-Boundaries", "C-MaxBounds", "D-MaxDoi",
                           "D-SingleMaxDoi", "D-HeurDoi"}) {
    SearchContext ctx;
    auto sol = (*GetAlgorithm(name))->Solve(space, problem, ctx);
    ASSERT_TRUE(sol.ok()) << name;
    EXPECT_GT(ctx.metrics.states_examined, 0u) << name;
    EXPECT_GE(ctx.metrics.wall_ms, 0.0) << name;
    EXPECT_FALSE(ctx.metrics.truncated) << name;
  }
}

TEST(AlgorithmEdgeTest, InvalidProblemRejected) {
  Rng rng(7);
  auto space = MakeRandomSpace(rng, 5);
  ProblemSpec bad;  // unconstrained
  for (const auto& name : AlgorithmNames()) {
    const Algorithm* algorithm = *GetAlgorithm(name);
    SearchContext ctx;
    EXPECT_FALSE(algorithm->Solve(space, bad, ctx).ok()) << name;
  }
}

TEST(AlgorithmEdgeTest, AllPreferencesStrawman) {
  Rng rng(8);
  auto space = MakeRandomSpace(rng, 6);
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;

  // Loose bound: the strawman is feasible and takes everything.
  Solution loose =
      MustSolve("All-Preferences", space, ProblemSpec::Problem2(supreme));
  ASSERT_TRUE(loose.feasible);
  EXPECT_EQ(loose.chosen.size(), 6u);
  EXPECT_NEAR(loose.params.cost_ms, supreme, 1e-9);

  // Tight bound: it still picks everything but reports infeasibility.
  const Algorithm* strawman = *GetAlgorithm("All-Preferences");
  SearchContext ctx;
  Solution tight =
      *strawman->Solve(space, ProblemSpec::Problem2(0.5 * supreme), ctx);
  EXPECT_FALSE(tight.feasible);
  EXPECT_EQ(tight.chosen.size(), 6u);
}

TEST(AlgorithmEdgeTest, EqualDoisHandled) {
  // Degenerate ties: every preference identical.
  space::PreferenceSpaceResult space;
  space.base.cost_ms = 100;
  space.base.size = 500;
  for (int i = 0; i < 6; ++i) {
    estimation::ScoredPreference p;
    p.doi = 0.4;
    p.cost_ms = 150;
    p.selectivity = 0.5;
    p.size = 250;
    space.prefs.push_back(p);
    space.D.push_back(i);
    space.C.push_back(i);
    space.S.push_back(i);
  }
  ProblemSpec problem = ProblemSpec::Problem2(450);  // exactly 3 prefs fit
  Solution optimal = MustSolve("Exhaustive", space, problem);
  ASSERT_TRUE(optimal.feasible);
  EXPECT_EQ(optimal.chosen.size(), 3u);
  for (const char* name : {"C-Boundaries", "D-MaxDoi", "D-MaxDoi+Prune", "C-MaxBounds",
                           "D-SingleMaxDoi", "D-HeurDoi"}) {
    Solution got = MustSolve(name, space, problem);
    EXPECT_NEAR(got.params.doi, optimal.params.doi, 1e-12) << name;
  }
}

// ---------- infeasible paths (satellite c) ----------

/// Algorithms covering both objectives; each must report infeasibility as
/// Solution::feasible == false, never as a Status error.
const char* kEveryAlgorithm[] = {"Exhaustive",     "C-Boundaries",
                                 "C-MaxBounds",    "D-MaxDoi",
                                 "D-MaxDoi+Prune", "D-SingleMaxDoi",
                                 "D-HeurDoi",      "MinCost-BB",
                                 "MinCost-Greedy", "All-Preferences"};

/// A problem the given algorithm supports: the doi family gets Problem 2,
/// the cost-minimization family gets Problem 6.
ProblemSpec SupportedProblem(const Algorithm& algorithm, double cmax,
                             double smin, double smax) {
  ProblemSpec doi_problem = ProblemSpec::Problem2(cmax);
  if (algorithm.Supports(doi_problem)) return doi_problem;
  return ProblemSpec::Problem6(smin, smax);
}

TEST(InfeasiblePathTest, EmptySpaceIsAnAnswerNotAnError) {
  Rng rng(41);
  auto space = MakeRandomSpace(rng, 0);
  for (const char* name : kEveryAlgorithm) {
    const Algorithm* algorithm = *GetAlgorithm(name);
    // A size window strictly above the base size: even the empty subset
    // misses it, so the instance is unsatisfiable.
    ProblemSpec problem = SupportedProblem(
        *algorithm, /*cmax=*/1.0, /*smin=*/space.base.size * 2,
        /*smax=*/space.base.size * 3);
    if (problem.objective == Objective::kMaximizeDoi) {
      problem.cmax_ms = space.base.cost_ms * 0.5;  // below cost(Q)
    }
    SearchContext ctx;
    auto sol = algorithm->Solve(space, problem, ctx);
    ASSERT_TRUE(sol.ok()) << name << ": " << sol.status().ToString();
    EXPECT_FALSE(sol->feasible) << name;
    EXPECT_FALSE(sol->degraded) << name << " (clean completion)";
  }
}

TEST(InfeasiblePathTest, UnsatisfiableConstraintsReturnInfeasible) {
  Rng rng(42);
  auto space = MakeRandomSpace(rng, 8);
  for (const char* name : kEveryAlgorithm) {
    const Algorithm* algorithm = *GetAlgorithm(name);
    // cmax below the base cost / a size window no subset reaches: no
    // subset of P (including the empty one) satisfies the constraints.
    ProblemSpec problem = SupportedProblem(
        *algorithm, /*cmax=*/space.base.cost_ms * 0.5,
        /*smin=*/space.base.size * 100, /*smax=*/space.base.size * 200);
    SearchContext ctx;
    auto sol = algorithm->Solve(space, problem, ctx);
    ASSERT_TRUE(sol.ok()) << name << ": " << sol.status().ToString();
    EXPECT_FALSE(sol->feasible) << name;
  }
}

// ---------- budget behavior across algorithms ----------

TEST(BudgetTest, ExpiredDeadlineStillReturnsOkPossiblyDegraded) {
  Rng rng(43);
  auto space = MakeRandomSpace(rng, 14);
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  ProblemSpec doi_problem = ProblemSpec::Problem2(0.6 * supreme);
  ProblemSpec cost_problem = ProblemSpec::Problem4(0.5);
  for (const char* name : kEveryAlgorithm) {
    const Algorithm* algorithm = *GetAlgorithm(name);
    const ProblemSpec& problem =
        algorithm->Supports(doi_problem) ? doi_problem : cost_problem;
    SearchContext ctx(SearchBudget::AfterMillis(0.0));
    auto sol = algorithm->Solve(space, problem, ctx);
    ASSERT_TRUE(sol.ok()) << name << ": " << sol.status().ToString();
    if (ctx.exhausted()) {
      EXPECT_EQ(ctx.exhaustion(), BudgetExhaustion::kDeadline) << name;
      EXPECT_TRUE(sol->degraded) << name;
      EXPECT_TRUE(ctx.metrics.truncated) << name;
    }
  }
}

TEST(BudgetTest, SingleExpansionBudgetDegradesSearchAlgorithms) {
  Rng rng(44);
  auto space = MakeRandomSpace(rng, 12);
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  ProblemSpec problem = ProblemSpec::Problem2(0.5 * supreme);
  for (const char* name :
       {"Exhaustive", "C-Boundaries", "C-MaxBounds", "D-MaxDoi",
        "D-SingleMaxDoi", "D-HeurDoi"}) {
    SearchBudget budget;
    budget.max_expansions = 1;
    SearchContext ctx(budget);
    auto sol = (*GetAlgorithm(name))->Solve(space, problem, ctx);
    ASSERT_TRUE(sol.ok()) << name;
    EXPECT_TRUE(ctx.exhausted()) << name;
    EXPECT_EQ(ctx.exhaustion(), BudgetExhaustion::kExpansions) << name;
    EXPECT_TRUE(sol->degraded) << name;
    CheckSolutionConsistent(space, problem, *sol, name);
  }
}

// ---------- eval cache parity ----------

TEST(EvalCacheParityTest, CachedSolutionsAreBitForBitIdentical) {
  // Running with a memoized evaluator must never change the answer: the
  // cache stores canonically-ordered full evaluations, so doi/cost/size
  // must match the uncached run exactly (==, not NEAR), cold AND warm.
  for (const char* name : {"C-Boundaries", "D-MaxDoi", "Exhaustive"}) {
    Rng rng(97);
    auto space = MakeRandomSpace(rng, 9);
    double supreme = space.MakeEvaluator().SupremeState().cost_ms;
    ProblemSpec problem = ProblemSpec::Problem2(0.6 * supreme);
    const Algorithm* algorithm = *GetAlgorithm(name);

    SearchContext plain_ctx;
    Solution plain = *algorithm->Solve(space, problem, plain_ctx);

    estimation::EvalCache cache;
    SearchContext cold_ctx;
    cold_ctx.eval_cache = &cache;
    Solution cold = *algorithm->Solve(space, problem, cold_ctx);

    SearchContext warm_ctx;
    warm_ctx.eval_cache = &cache;  // same (query, profile): reuse is legal
    Solution warm = *algorithm->Solve(space, problem, warm_ctx);

    for (const Solution* got : {&cold, &warm}) {
      EXPECT_EQ(got->feasible, plain.feasible) << name;
      EXPECT_EQ(got->chosen, plain.chosen) << name;
      EXPECT_EQ(got->params.doi, plain.params.doi) << name;
      EXPECT_EQ(got->params.cost_ms, plain.params.cost_ms) << name;
      EXPECT_EQ(got->params.size, plain.params.size) << name;
    }
    uint64_t cold_lookups = cold_ctx.metrics.eval_cache_hits +
                            cold_ctx.metrics.eval_cache_misses;
    EXPECT_GT(cold_lookups, 0u) << name;
    EXPECT_GT(warm_ctx.metrics.eval_cache_hits, 0u) << name;
    EXPECT_GT(cache.size(), 0u) << name;
  }
}

TEST(EvalCacheParityTest, UncachedRunsReportNoCacheTraffic) {
  Rng rng(98);
  auto space = MakeRandomSpace(rng, 8);
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  SearchContext ctx;
  auto sol = (*GetAlgorithm("C-Boundaries"))
                 ->Solve(space, ProblemSpec::Problem2(0.5 * supreme), ctx);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(ctx.metrics.eval_cache_hits, 0u);
  EXPECT_EQ(ctx.metrics.eval_cache_misses, 0u);
}

TEST(BudgetTest, CancelTokenAbortsBeforeAnyExpansion) {
  Rng rng(45);
  auto space = MakeRandomSpace(rng, 10);
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  ProblemSpec problem = ProblemSpec::Problem2(0.5 * supreme);
  CancelToken cancel;
  cancel.Cancel();
  SearchBudget budget;
  budget.cancel = &cancel;
  SearchContext ctx(budget);
  auto sol = (*GetAlgorithm("C-Boundaries"))->Solve(space, problem, ctx);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->degraded);
  EXPECT_EQ(ctx.exhaustion(), BudgetExhaustion::kCancelled);
}

}  // namespace
}  // namespace cqp::cqp
