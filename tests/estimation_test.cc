#include <gtest/gtest.h>

#include "estimation/estimate.h"
#include "estimation/eval_cache.h"
#include "estimation/evaluator.h"
#include "sql/parser.h"
#include "test_util.h"

namespace cqp::estimation {
namespace {

using catalog::CompareOp;
using catalog::Value;
using prefs::AtomicJoin;
using prefs::AtomicSelection;
using prefs::ImplicitPreference;
using sql::ParseSelect;

class EstimateTest : public ::testing::Test {
 protected:
  EstimateTest()
      : db_(testing::MakeTinyMovieDb()), estimator_(&db_) {}

  QueryBaseEstimate Base(const std::string& sql) {
    auto q = *ParseSelect(sql);
    auto est = estimator_.EstimateBase(q);
    CQP_CHECK(est.ok()) << est.status().ToString();
    return *est;
  }

  storage::Database db_;
  ParameterEstimator estimator_;
};

TEST_F(EstimateTest, BaseCostIsBlockSum) {
  QueryBaseEstimate base = Base("SELECT title FROM MOVIE");
  const storage::Table* movie = *db_.GetTable("MOVIE");
  EXPECT_DOUBLE_EQ(base.cost_ms, static_cast<double>(movie->blocks()));
}

TEST_F(EstimateTest, BaseCostSumsJoinedRelations) {
  QueryBaseEstimate base =
      Base("SELECT M.title FROM MOVIE M, DIRECTOR D WHERE M.did = D.did");
  double expect = static_cast<double>((*db_.GetTable("MOVIE"))->blocks() +
                                      (*db_.GetTable("DIRECTOR"))->blocks());
  EXPECT_DOUBLE_EQ(base.cost_ms, expect);
}

TEST_F(EstimateTest, BaseSizeFullScanIsRowCount) {
  QueryBaseEstimate base = Base("SELECT title FROM MOVIE");
  EXPECT_DOUBLE_EQ(base.size, 6.0);
}

TEST_F(EstimateTest, BaseSizeSelectionsShrink) {
  QueryBaseEstimate all = Base("SELECT title FROM MOVIE");
  QueryBaseEstimate some =
      Base("SELECT title FROM MOVIE WHERE MOVIE.year >= 1980");
  EXPECT_LT(some.size, all.size);
  EXPECT_GT(some.size, 0.0);
}

TEST_F(EstimateTest, BaseSizeEquiJoinUsesNdv) {
  // |MOVIE| * |DIRECTOR| / max(ndv did) = 6 * 3 / 3 = 6.
  QueryBaseEstimate base =
      Base("SELECT M.title FROM MOVIE M, DIRECTOR D WHERE M.did = D.did");
  EXPECT_DOUBLE_EQ(base.size, 6.0);
}

TEST_F(EstimateTest, PreferenceCostAddsPathRelations) {
  QueryBaseEstimate base = Base("SELECT title FROM MOVIE");
  ImplicitPreference pref;
  pref.joins = {AtomicJoin{"MOVIE", "did", "DIRECTOR", "did", 1.0}};
  pref.selection = AtomicSelection{"DIRECTOR", "name", CompareOp::kEq,
                                   Value("W. Allen"), 0.8};
  PreferenceEstimate est = *estimator_.EstimatePreference(base, pref);
  double expect =
      base.cost_ms + static_cast<double>((*db_.GetTable("DIRECTOR"))->blocks());
  EXPECT_DOUBLE_EQ(est.cost_ms, expect);
}

TEST_F(EstimateTest, JoinFreePreferenceCostEqualsBase) {
  QueryBaseEstimate base = Base("SELECT title FROM MOVIE");
  ImplicitPreference pref;
  pref.selection = AtomicSelection{"MOVIE", "year", CompareOp::kGe,
                                   Value(int64_t{1980}), 0.6};
  PreferenceEstimate est = *estimator_.EstimatePreference(base, pref);
  EXPECT_DOUBLE_EQ(est.cost_ms, base.cost_ms);
  EXPECT_LT(est.selectivity, 1.0);
}

TEST_F(EstimateTest, PreferenceSelectivityCappedAtOne) {
  QueryBaseEstimate base = Base("SELECT title FROM MOVIE");
  // GENRE fans out (9 rows over 6 movies) but a selective genre keeps the
  // product small; an always-true-ish selection would cap at 1.
  ImplicitPreference pref;
  pref.joins = {AtomicJoin{"MOVIE", "mid", "GENRE", "mid", 0.9}};
  pref.selection = AtomicSelection{"GENRE", "genre", CompareOp::kNe,
                                   Value("nonexistent"), 0.5};
  PreferenceEstimate est = *estimator_.EstimatePreference(base, pref);
  EXPECT_LE(est.selectivity, 1.0);
  EXPECT_GT(est.selectivity, 0.0);
  EXPECT_LE(est.size, base.size);
}

TEST_F(EstimateTest, PathCostMonotoneInPathLength) {
  QueryBaseEstimate base = Base("SELECT title FROM MOVIE");
  std::vector<AtomicJoin> joins = {
      AtomicJoin{"MOVIE", "mid", "GENRE", "mid", 0.9}};
  double one = *estimator_.PathCost(base, joins);
  joins.push_back(AtomicJoin{"GENRE", "mid", "DIRECTOR", "did", 0.9});
  double two = *estimator_.PathCost(base, joins);
  EXPECT_GT(one, base.cost_ms);
  EXPECT_GT(two, one);
}

TEST_F(EstimateTest, SelectionSelectivityMatchesStats) {
  // 'horror' appears in 2 of 9 genre rows.
  double sel = *estimator_.SelectionSelectivity("GENRE", "genre",
                                                CompareOp::kEq,
                                                Value("horror"));
  EXPECT_NEAR(sel, 2.0 / 9.0, 1e-9);
}

TEST_F(EstimateTest, UnknownRelationFails) {
  EXPECT_FALSE(estimator_
                   .SelectionSelectivity("NOPE", "x", CompareOp::kEq,
                                         Value(int64_t{1}))
                   .ok());
}

// ---------- StateEvaluator ----------

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : rng_(42), space_(testing::MakeRandomSpace(rng_, 8)) {}

  Rng rng_;
  space::PreferenceSpaceResult space_;
};

TEST_F(EvaluatorTest, EmptyStateIsOriginalQuery) {
  StateEvaluator eval = space_.MakeEvaluator();
  StateParams empty = eval.EmptyState();
  EXPECT_DOUBLE_EQ(empty.doi, 0.0);
  EXPECT_DOUBLE_EQ(empty.cost_ms, space_.base.cost_ms);
  EXPECT_DOUBLE_EQ(empty.size, space_.base.size);
  EXPECT_EQ(empty.count, 0u);
}

TEST_F(EvaluatorTest, SingletonCostReplacesBaseCost) {
  StateEvaluator eval = space_.MakeEvaluator();
  StateParams s = eval.Evaluate(IndexSet{0});
  // Formula 6: one sub-query, whose cost already includes Q's relations.
  EXPECT_DOUBLE_EQ(s.cost_ms, space_.prefs[0].cost_ms);
}

TEST_F(EvaluatorTest, CostIsAdditive) {
  StateEvaluator eval = space_.MakeEvaluator();
  StateParams s = eval.Evaluate(IndexSet{1, 3, 5});
  double expect = space_.prefs[1].cost_ms + space_.prefs[3].cost_ms +
                  space_.prefs[5].cost_ms;
  EXPECT_NEAR(s.cost_ms, expect, 1e-9);
}

TEST_F(EvaluatorTest, SizeIsProductOfSelectivities) {
  StateEvaluator eval = space_.MakeEvaluator();
  StateParams s = eval.Evaluate(IndexSet{0, 2});
  double expect = space_.base.size * space_.prefs[0].selectivity *
                  space_.prefs[2].selectivity;
  EXPECT_NEAR(s.size, expect, 1e-9);
}

TEST_F(EvaluatorTest, DoiIsNoisyOr) {
  StateEvaluator eval = space_.MakeEvaluator();
  StateParams s = eval.Evaluate(IndexSet{0, 1});
  double expect =
      1.0 - (1.0 - space_.prefs[0].doi) * (1.0 - space_.prefs[1].doi);
  EXPECT_NEAR(s.doi, expect, 1e-12);
}

TEST_F(EvaluatorTest, IncrementalMatchesBatch) {
  StateEvaluator eval = space_.MakeEvaluator();
  StateParams inc = eval.EmptyState();
  std::vector<int32_t> members{0, 3, 4, 7};
  for (int32_t i : members) inc = eval.ExtendWith(inc, i);
  StateParams batch = eval.Evaluate(IndexSet::FromUnsorted(members));
  EXPECT_NEAR(inc.doi, batch.doi, 1e-12);
  EXPECT_NEAR(inc.cost_ms, batch.cost_ms, 1e-9);
  EXPECT_NEAR(inc.size, batch.size, 1e-9);
  EXPECT_EQ(inc.count, batch.count);
}

TEST_F(EvaluatorTest, MonotonicityFormulas478) {
  // Formulas 4 (doi), 7 (cost), 8 (size) under set inclusion.
  StateEvaluator eval = space_.MakeEvaluator();
  StateParams sub = eval.Evaluate(IndexSet{1, 4});
  StateParams super = eval.Evaluate(IndexSet{1, 2, 4});
  EXPECT_LE(sub.doi, super.doi);
  EXPECT_LE(sub.cost_ms, super.cost_ms);
  EXPECT_GE(sub.size, super.size);
}

TEST_F(EvaluatorTest, SupremeStateUsesAllPrefs) {
  StateEvaluator eval = space_.MakeEvaluator();
  StateParams supreme = eval.SupremeState();
  EXPECT_EQ(supreme.count, 8u);
  std::vector<int32_t> all;
  for (int i = 0; i < 8; ++i) all.push_back(i);
  StateParams direct = eval.Evaluate(IndexSet::FromUnsorted(all));
  EXPECT_NEAR(supreme.cost_ms, direct.cost_ms, 1e-9);
}

TEST_F(EvaluatorTest, SumCappedModelApplies) {
  StateEvaluator eval(space_.base, space_.prefs,
                      prefs::ConjunctionModel::kSumCapped);
  StateParams s = eval.Evaluate(IndexSet{0, 1});
  EXPECT_NEAR(s.doi,
              std::min(1.0, space_.prefs[0].doi + space_.prefs[1].doi),
              1e-12);
}

// ---------- EvalCache ----------

TEST(EvalCacheTest, FindMissThenInsertThenHit) {
  EvalCache cache;
  StateParams params;
  EXPECT_FALSE(cache.Find(0b101, &params));
  StateParams stored;
  stored.doi = 0.5;
  stored.cost_ms = 12.0;
  stored.size = 30.0;
  stored.count = 2;
  cache.Insert(0b101, stored);
  ASSERT_TRUE(cache.Find(0b101, &params));
  EXPECT_DOUBLE_EQ(params.doi, 0.5);
  EXPECT_DOUBLE_EQ(params.cost_ms, 12.0);
  EXPECT_DOUBLE_EQ(params.size, 30.0);
  EXPECT_EQ(params.count, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCacheTest, ClearEmptiesTheCache) {
  EvalCache cache;
  cache.Insert(1, StateParams{});
  cache.Insert(2, StateParams{});
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  StateParams params;
  EXPECT_FALSE(cache.Find(1, &params));
}

TEST(EvalCacheTest, InsertIsBoundedButUpdatesExistingKeys) {
  EvalCache cache(/*max_entries=*/2);
  EXPECT_EQ(cache.max_entries(), 2u);
  cache.Insert(1, StateParams{});
  cache.Insert(2, StateParams{});
  cache.Insert(3, StateParams{});  // at capacity: dropped
  EXPECT_EQ(cache.size(), 2u);
  StateParams params;
  EXPECT_FALSE(cache.Find(3, &params));
  // Overwriting a resident key is still allowed at capacity.
  StateParams updated;
  updated.doi = 0.9;
  cache.Insert(2, updated);
  ASSERT_TRUE(cache.Find(2, &params));
  EXPECT_DOUBLE_EQ(params.doi, 0.9);
}

TEST_F(EvaluatorTest, EvaluateBitsMatchesEvaluate) {
  StateEvaluator eval = space_.MakeEvaluator();
  Rng rng(7);
  for (int round = 0; round < 64; ++round) {
    uint64_t bits = rng.Next() & 0xffull;  // K = 8
    std::vector<int32_t> members;
    for (int32_t i = 0; i < 8; ++i) {
      if ((bits >> i) & 1) members.push_back(i);
    }
    StateParams via_bits = eval.EvaluateBits(bits);
    StateParams via_set = eval.Evaluate(IndexSet::FromUnsorted(members));
    EXPECT_EQ(via_bits.doi, via_set.doi);
    EXPECT_EQ(via_bits.cost_ms, via_set.cost_ms);
    EXPECT_EQ(via_bits.size, via_set.size);
    EXPECT_EQ(via_bits.count, via_set.count);
  }
}

TEST_F(EvaluatorTest, CachedEvaluateIsBitForBitIdentical) {
  StateEvaluator plain = space_.MakeEvaluator();
  EvalCache cache;
  StateEvaluator cached = space_.MakeEvaluator(&cache);
  ASSERT_EQ(cached.cache(), &cache);
  // Two passes over the same states: the second is served from the cache
  // and must reproduce the uncached params exactly (==, not NEAR).
  for (int pass = 0; pass < 2; ++pass) {
    Rng rng(11);
    for (int round = 0; round < 64; ++round) {
      uint64_t bits = rng.Next() & 0xffull;
      std::vector<int32_t> members;
      for (int32_t i = 0; i < 8; ++i) {
        if ((bits >> i) & 1) members.push_back(i);
      }
      IndexSet state = IndexSet::FromUnsorted(members);
      StateParams want = plain.Evaluate(state);
      StateParams got = cached.Evaluate(state);
      EXPECT_EQ(got.doi, want.doi);
      EXPECT_EQ(got.cost_ms, want.cost_ms);
      EXPECT_EQ(got.size, want.size);
      EXPECT_EQ(got.count, want.count);
    }
  }
  EXPECT_GT(cache.size(), 0u);
}

TEST_F(EvaluatorTest, EvaluateBitsCachedReportsHitsAndMisses) {
  EvalCache cache;
  StateEvaluator eval = space_.MakeEvaluator(&cache);
  bool hit = true;
  StateParams first = eval.EvaluateBitsCached(0b1010, &hit);
  EXPECT_FALSE(hit);
  StateParams second = eval.EvaluateBitsCached(0b1010, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.doi, second.doi);
  EXPECT_EQ(first.cost_ms, second.cost_ms);
  EXPECT_EQ(first.size, second.size);
}

// ---------- EvalCacheRegistry ----------

TEST(EvalCacheRegistryTest, GetOrCreateIsStablePerPair) {
  EvalCacheRegistry registry;
  auto a1 = registry.GetOrCreate("alice", "Q1");
  auto a2 = registry.GetOrCreate("alice", "Q1");
  EXPECT_EQ(a1.get(), a2.get());  // same pair, same cache
  auto b = registry.GetOrCreate("alice", "Q2");
  auto c = registry.GetOrCreate("bob", "Q1");
  EXPECT_NE(a1.get(), b.get());  // different query
  EXPECT_NE(a1.get(), c.get());  // different profile
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.ProfileIds(), (std::vector<std::string>{"alice", "bob"}));
}

TEST(EvalCacheRegistryTest, InvalidateProfileDropsOnlyThatProfile) {
  EvalCacheRegistry registry;
  StateParams params;
  params.doi = 0.5;
  registry.GetOrCreate("alice", "Q1")->Insert(0b01, params);
  registry.GetOrCreate("alice", "Q2")->Insert(0b10, params);
  registry.GetOrCreate("bob", "Q1")->Insert(0b01, params);

  EXPECT_EQ(registry.InvalidateProfile("alice"), 2u);  // both query keys
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.ProfileIds(), (std::vector<std::string>{"bob"}));
  EXPECT_EQ(registry.InvalidateProfile("alice"), 0u);  // already gone

  // Stale-hit absence: after invalidation, the pair's cache starts cold —
  // a lookup of the previously memoized state misses.
  StateParams out;
  EXPECT_FALSE(registry.GetOrCreate("alice", "Q1")->Find(0b01, &out));
  // The untouched profile still hits.
  EXPECT_TRUE(registry.GetOrCreate("bob", "Q1")->Find(0b01, &out));
  EXPECT_EQ(out.doi, 0.5);
}

TEST(EvalCacheRegistryTest, InFlightHoldersSurviveInvalidation) {
  EvalCacheRegistry registry;
  StateParams params;
  params.doi = 0.25;
  auto held = registry.GetOrCreate("alice", "Q1");
  held->Insert(0b11, params);
  registry.InvalidateProfile("alice");

  // A request that grabbed the cache before the invalidation keeps its
  // (internally consistent) memo until it finishes…
  StateParams out;
  EXPECT_TRUE(held->Find(0b11, &out));
  EXPECT_EQ(out.doi, 0.25);
  // …while new lookups get a fresh, unrelated cache.
  auto fresh = registry.GetOrCreate("alice", "Q1");
  EXPECT_NE(fresh.get(), held.get());
  EXPECT_FALSE(fresh->Find(0b11, &out));
}

TEST(EvalCacheRegistryTest, ClearDropsEverything) {
  EvalCacheRegistry registry;
  registry.GetOrCreate("alice", "Q1");
  registry.GetOrCreate("bob", "Q1");
  registry.Clear();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_TRUE(registry.ProfileIds().empty());
}

}  // namespace
}  // namespace cqp::estimation
