#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "common/rng.h"
#include "cqp/search_space.h"
#include "cqp/search_util.h"
#include "cqp/transitions.h"
#include "test_util.h"

namespace cqp::cqp {
namespace {

// ---------- Horizontal ----------

TEST(HorizontalTest, AddsSuccessorOfMax) {
  auto h = Horizontal(IndexSet{0, 2}, 5);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->ToString(), "{0,2,3}");
}

TEST(HorizontalTest, NoneAtLastPosition) {
  EXPECT_FALSE(Horizontal(IndexSet{1, 4}, 5).has_value());
}

TEST(HorizontalTest, PaperFigure4Example) {
  // Horizontal(c1c3) = c1c3c4 (paper's 1-based example, 0-based here).
  auto h = Horizontal(IndexSet{0, 2}, 4);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, (IndexSet{0, 2, 3}));
}

// ---------- Vertical ----------

TEST(VerticalTest, ReplacesEachMemberWithSuccessor) {
  // Vertical(c1c3) = {c1c4, c2c3} in the paper's Figure 4.
  auto vs = VerticalNeighbors(IndexSet{0, 2}, 4);
  ASSERT_EQ(vs.size(), 2u);
  std::set<std::string> got;
  for (const auto& v : vs) got.insert(v.ToString());
  EXPECT_TRUE(got.count("{1,2}"));  // c2c3
  EXPECT_TRUE(got.count("{0,3}"));  // c1c4
}

TEST(VerticalTest, SkipsOccupiedSuccessor) {
  auto vs = VerticalNeighbors(IndexSet{0, 1}, 4);
  // 0 -> 1 occupied; only 1 -> 2 remains.
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].ToString(), "{0,2}");
}

TEST(VerticalTest, EmptyAtBottom) {
  EXPECT_TRUE(VerticalNeighbors(IndexSet{2, 3}, 4).empty());
}

TEST(VerticalTest, KeepsGroupSize) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    size_t k = 8;
    std::vector<int32_t> members;
    for (int32_t i = 0; i < static_cast<int32_t>(k); ++i) {
      if (rng.Bernoulli(0.4)) members.push_back(i);
    }
    if (members.empty()) continue;
    IndexSet state = IndexSet::FromUnsorted(members);
    for (const IndexSet& v : VerticalNeighbors(state, k)) {
      EXPECT_EQ(v.size(), state.size());
      EXPECT_TRUE(state.Dominates(v));  // verticals move "down"
    }
  }
}

// ---------- Horizontal2 ----------

TEST(Horizontal2Test, ListsNonMembersInOrder) {
  auto cands = Horizontal2Candidates(IndexSet{1, 3}, 5);
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(cands[0], 0);
  EXPECT_EQ(cands[1], 2);
  EXPECT_EQ(cands[2], 4);
}

TEST(Horizontal2Test, EmptyStateListsAll) {
  EXPECT_EQ(Horizontal2Candidates(IndexSet(), 3).size(), 3u);
}

TEST(Horizontal2Test, FullStateListsNone) {
  EXPECT_TRUE(Horizontal2Candidates(IndexSet{0, 1, 2}, 3).empty());
}

TEST(Horizontal2Test, SingleElementStateListsComplement) {
  // A lone member at the bottom, middle, and top of the space: the
  // candidate list is exactly the other K-1 positions, in order.
  auto at = [](int32_t member) { return IndexSet{member}; };
  EXPECT_EQ(Horizontal2Candidates(at(0), 5),
            (std::vector<int32_t>{1, 2, 3, 4}));
  EXPECT_EQ(Horizontal2Candidates(at(2), 5),
            (std::vector<int32_t>{0, 1, 3, 4}));
  EXPECT_EQ(Horizontal2Candidates(at(4), 5),
            (std::vector<int32_t>{0, 1, 2, 3}));
  // K = 1: the single-element state is also the full state.
  EXPECT_TRUE(Horizontal2Candidates(at(0), 1).empty());
}

TEST(Horizontal2Test, FullStateAtBitmaskBoundary) {
  // 64 members {0..63}: the largest state that still fits the IndexSet
  // mask fast path. As the full state of K = 64 it has no candidates; in a
  // K = 65 space the only candidate is 64, the first non-mask position.
  std::vector<int32_t> all;
  for (int32_t i = 0; i < 64; ++i) all.push_back(i);
  IndexSet full = IndexSet::FromUnsorted(all);
  EXPECT_TRUE(Horizontal2Candidates(full, 64).empty());
  EXPECT_EQ(Horizontal2Candidates(full, 65), (std::vector<int32_t>{64}));
}

TEST(Horizontal2Test, CandidatesAreTheAscendingComplement) {
  // Differential check against the definition, over random states.
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    size_t k = static_cast<size_t>(rng.Uniform(1, 20));
    std::vector<int32_t> members;
    for (int32_t i = 0; i < static_cast<int32_t>(k); ++i) {
      if (rng.Bernoulli(0.4)) members.push_back(i);
    }
    IndexSet state = IndexSet::FromUnsorted(members);
    std::vector<int32_t> expected;
    for (int32_t i = 0; i < static_cast<int32_t>(k); ++i) {
      if (!state.Contains(i)) expected.push_back(i);
    }
    EXPECT_EQ(Horizontal2Candidates(state, k), expected)
        << state.ToString() << " k=" << k;
  }
}

// ---------- Proposition 1 & Table 4 directions ----------

class DirectionTest : public ::testing::Test {
 protected:
  DirectionTest()
      : rng_(7),
        space_(::cqp::testing::MakeRandomSpace(rng_, 10)),
        evaluator_(space_.MakeEvaluator()),
        problem_(ProblemSpec::Problem2(1e12)),
        view_(SpaceView::ForKind(&evaluator_, &problem_, SpaceKind::kCost,
                                 space_)) {}

  Rng rng_;
  SearchMetrics metrics_;
  space::PreferenceSpaceResult space_;
  estimation::StateEvaluator evaluator_;
  ProblemSpec problem_;
  SpaceView view_;
};

TEST_F(DirectionTest, HorizontalIncreasesCostAndDoi) {
  // Table 4: Horizontal moves to higher cost and higher doi.
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int32_t> members;
    for (int32_t i = 0; i < 9; ++i) {
      if (rng.Bernoulli(0.5)) members.push_back(i);
    }
    if (members.empty()) members.push_back(0);
    IndexSet state = IndexSet::FromUnsorted(members);
    auto h = Horizontal(state, view_.K());
    if (!h) continue;
    estimation::StateParams a = view_.Evaluate(state, metrics_);
    estimation::StateParams b = view_.Evaluate(*h, metrics_);
    EXPECT_GT(b.cost_ms, a.cost_ms);
    EXPECT_GE(b.doi, a.doi);
  }
}

TEST_F(DirectionTest, VerticalDecreasesCostInCostSpace) {
  // Table 4: Vertical moves to lower cost (doi unknown).
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int32_t> members;
    for (int32_t i = 0; i < 10; ++i) {
      if (rng.Bernoulli(0.4)) members.push_back(i);
    }
    if (members.empty()) continue;
    IndexSet state = IndexSet::FromUnsorted(members);
    estimation::StateParams a = view_.Evaluate(state, metrics_);
    for (const IndexSet& v : VerticalNeighbors(state, view_.K())) {
      estimation::StateParams b = view_.Evaluate(v, metrics_);
      EXPECT_LE(b.cost_ms, a.cost_ms)
          << state.ToString() << " -> " << v.ToString();
    }
  }
}

TEST_F(DirectionTest, ToPrefIndicesMapsThroughOrder) {
  IndexSet positions{0, 1};
  IndexSet prefs = view_.ToPrefIndices(positions);
  EXPECT_EQ(prefs.size(), 2u);
  EXPECT_TRUE(prefs.Contains(space_.C[0]));
  EXPECT_TRUE(prefs.Contains(space_.C[1]));
}

TEST_F(DirectionTest, BestExpectedDoiIsTopPrefixDoi) {
  double b2 = view_.BestExpectedDoi(2);
  double expect =
      1.0 - (1.0 - space_.prefs[0].doi) * (1.0 - space_.prefs[1].doi);
  EXPECT_NEAR(b2, expect, 1e-12);
  EXPECT_GE(view_.BestExpectedDoi(5), b2);
}

// ---------- GreedyMaxDoiBelow (C_FINDMAXDOI core) ----------

TEST_F(DirectionTest, GreedySwapDominatedAndOptimal) {
  // For every boundary, the greedy result must (a) be dominated by the
  // boundary, (b) match the best doi among ALL dominated states
  // (brute-forced here).
  Rng rng(11);
  const size_t k = view_.K();
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<int32_t> members;
    for (int32_t i = 0; i < static_cast<int32_t>(k); ++i) {
      if (rng.Bernoulli(0.3)) members.push_back(i);
    }
    if (members.empty() || members.size() > 4) continue;
    IndexSet boundary = IndexSet::FromUnsorted(members);

    IndexSet greedy = GreedyMaxDoiBelow(view_, boundary);
    EXPECT_TRUE(boundary.Dominates(greedy));

    // Brute force all dominated states of the same group size.
    double best = -1.0;
    std::vector<int32_t> stack;
    std::function<void(size_t)> rec = [&](size_t slot) {
      if (slot == boundary.size()) {
        IndexSet candidate = IndexSet::FromUnsorted(stack);
        if (candidate.size() != boundary.size()) return;
        if (!boundary.Dominates(candidate)) return;
        double doi = view_.Evaluate(candidate, metrics_).doi;
        if (doi > best) best = doi;
        return;
      }
      for (int32_t j = boundary[slot]; j < static_cast<int32_t>(k); ++j) {
        stack.push_back(j);
        rec(slot + 1);
        stack.pop_back();
      }
    };
    rec(0);
    double got = view_.Evaluate(greedy, metrics_).doi;
    EXPECT_NEAR(got, best, 1e-12) << "boundary " << boundary.ToString();
  }
}

}  // namespace
}  // namespace cqp::cqp
