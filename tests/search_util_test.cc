#include <gtest/gtest.h>

#include "common/rng.h"
#include "cqp/algorithms.h"
#include "cqp/search_util.h"
#include "cqp/transitions.h"
#include "test_util.h"

namespace cqp::cqp {
namespace {

using ::cqp::testing::MakeRandomSpace;

// ---------- VisitedSet ----------

TEST(VisitedSetTest, InsertThenHit) {
  SearchMetrics metrics;
  VisitedSet visited(metrics);
  EXPECT_FALSE(visited.CheckAndInsert(IndexSet{1, 2}));
  EXPECT_TRUE(visited.CheckAndInsert(IndexSet{1, 2}));
  EXPECT_FALSE(visited.CheckAndInsert(IndexSet{1, 3}));
  EXPECT_EQ(visited.size(), 2u);
}

TEST(VisitedSetTest, AccountsMemoryOnce) {
  SearchMetrics metrics;
  VisitedSet visited(metrics);
  IndexSet s{1, 2, 3};
  visited.CheckAndInsert(s);
  size_t after_first = metrics.memory.current_bytes();
  EXPECT_GT(after_first, 0u);
  visited.CheckAndInsert(s);  // duplicate: no extra accounting
  EXPECT_EQ(metrics.memory.current_bytes(), after_first);
}

// ---------- StateQueue ----------

TEST(StateQueueTest, FrontAndBackOrdering) {
  SearchMetrics metrics;
  StateQueue queue(metrics);
  queue.PushBack(IndexSet{0});
  queue.PushBack(IndexSet{1});
  queue.PushFront(IndexSet{2});
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.PopFront(), (IndexSet{2}));
  EXPECT_EQ(queue.PopFront(), (IndexSet{0}));
  EXPECT_EQ(queue.PopFront(), (IndexSet{1}));
  EXPECT_TRUE(queue.empty());
}

TEST(StateQueueTest, ReleasesMemoryOnPop) {
  SearchMetrics metrics;
  StateQueue queue(metrics);
  queue.PushBack(IndexSet{0, 1, 2});
  size_t held = metrics.memory.current_bytes();
  EXPECT_GT(held, 0u);
  queue.PopFront();
  EXPECT_EQ(metrics.memory.current_bytes(), 0u);
  EXPECT_EQ(metrics.memory.peak_bytes(), held);
}

// ---------- BoundaryStore ----------

TEST(BoundaryStoreTest, DominationIsPerGroup) {
  SearchMetrics metrics;
  BoundaryStore store(metrics);
  store.Add(IndexSet{0, 2});
  EXPECT_TRUE(store.DominatesAny(IndexSet{1, 3}));   // 0<=1, 2<=3
  EXPECT_FALSE(store.DominatesAny(IndexSet{0, 1}));  // 2 > 1
  EXPECT_FALSE(store.DominatesAny(IndexSet{1, 2, 3}));  // different group
  // A state never counts as dominated by itself.
  EXPECT_FALSE(store.DominatesAny(IndexSet{0, 2}));
}

TEST(BoundaryStoreTest, DescendingBySizeOrder) {
  SearchMetrics metrics;
  BoundaryStore store(metrics);
  store.Add(IndexSet{0});
  store.Add(IndexSet{0, 1, 2});
  store.Add(IndexSet{1, 2});
  auto ordered = store.DescendingBySize();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[0].size(), 3u);
  EXPECT_EQ(ordered[1].size(), 2u);
  EXPECT_EQ(ordered[2].size(), 1u);
  EXPECT_EQ(metrics.boundaries_found, 3u);
}

// ---------- GreedyFill ----------

class GreedyFillTest : public ::testing::Test {
 protected:
  GreedyFillTest()
      : rng_(13),
        space_(MakeRandomSpace(rng_, 8)),
        evaluator_(space_.MakeEvaluator()),
        problem_(ProblemSpec::Problem2(0.0)) {}

  void SetBound(double cmax) { problem_.cmax_ms = cmax; }

  SpaceView View() {
    return SpaceView::ForKind(&evaluator_, &problem_, SpaceKind::kCost,
                              space_);
  }

  Rng rng_;
  space::PreferenceSpaceResult space_;
  estimation::StateEvaluator evaluator_;
  ProblemSpec problem_;
  SearchContext ctx_;
};

TEST_F(GreedyFillTest, FillsEverythingUnderLooseBound) {
  SetBound(1e12);
  SpaceView view = View();
  FillResult fill = GreedyFill(view, IndexSet{3},
                               view.Evaluate(IndexSet{3}, ctx_.metrics),
                               nullptr, ctx_);
  EXPECT_EQ(fill.state.size(), 8u);
}

TEST_F(GreedyFillTest, AddsNothingUnderTightBound) {
  // Bound below any two-preference state: the seed stays alone.
  double min_pair = 1e18;
  for (size_t a = 0; a < 8; ++a) {
    for (size_t b = a + 1; b < 8; ++b) {
      min_pair = std::min(
          min_pair, space_.prefs[a].cost_ms + space_.prefs[b].cost_ms);
    }
  }
  SetBound(min_pair - 1.0);
  SpaceView view = View();
  IndexSet seed{0};  // most expensive preference (C order)
  FillResult fill = GreedyFill(view, seed,
                               view.Evaluate(seed, ctx_.metrics), nullptr,
                               ctx_);
  EXPECT_EQ(fill.state, seed);
}

TEST_F(GreedyFillTest, RespectsBannedPositions) {
  SetBound(1e12);
  SpaceView view = View();
  std::vector<bool> banned(8, false);
  banned[2] = true;
  banned[5] = true;
  FillResult fill = GreedyFill(view, IndexSet{0},
                               view.Evaluate(IndexSet{0}, ctx_.metrics),
                               &banned, ctx_);
  EXPECT_EQ(fill.state.size(), 6u);
  EXPECT_FALSE(fill.state.Contains(2));
  EXPECT_FALSE(fill.state.Contains(5));
}

TEST_F(GreedyFillTest, ResultAlwaysWithinBound) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    double supreme = evaluator_.SupremeState().cost_ms;
    SetBound(rng.UniformDouble(0.1, 1.0) * supreme);
    SpaceView view = View();
    IndexSet seed{static_cast<int32_t>(rng.Uniform(0, 7))};
    estimation::StateParams seed_params = view.Evaluate(seed, ctx_.metrics);
    if (!view.WithinBound(seed_params)) continue;
    FillResult fill = GreedyFill(view, seed, seed_params, nullptr, ctx_);
    EXPECT_TRUE(view.WithinBound(fill.params));
    // Maximality: no further candidate fits.
    for (int32_t j : Horizontal2Candidates(fill.state, view.K())) {
      estimation::StateParams extended =
          view.ExtendWith(fill.params, j, ctx_.metrics);
      EXPECT_FALSE(view.WithinBound(extended))
          << "fill was not maximal: could still add " << j;
    }
  }
}

// ---------- BoundSpaceKindFor ----------

TEST(BoundSpaceKindTest, PicksCostThenSize) {
  EXPECT_EQ(*BoundSpaceKindFor(ProblemSpec::Problem2(10)), SpaceKind::kCost);
  EXPECT_EQ(*BoundSpaceKindFor(ProblemSpec::Problem3(10, 1, 5)),
            SpaceKind::kCost);
  EXPECT_EQ(*BoundSpaceKindFor(ProblemSpec::Problem1(1, 5)),
            SpaceKind::kSize);
  EXPECT_FALSE(BoundSpaceKindFor(ProblemSpec::Problem4(0.5)).ok());
}

// ---------- budgets ----------

TEST(SearchContextTest, UnlimitedNeverStops) {
  SearchContext ctx;
  ctx.metrics.states_examined = 1000000;
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_FALSE(ctx.exhausted());
  EXPECT_EQ(ctx.exhaustion(), BudgetExhaustion::kNone);
}

TEST(SearchContextTest, ExpansionLimitIsSticky) {
  SearchBudget budget;
  budget.max_expansions = 10;
  SearchContext ctx(budget);
  ctx.metrics.states_examined = 9;
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.metrics.states_examined = 10;
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.metrics.truncated);
  EXPECT_EQ(ctx.exhaustion(), BudgetExhaustion::kExpansions);
  // Sticky: stays stopped even if the counter were rolled back.
  ctx.metrics.states_examined = 0;
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_FALSE(ctx.ExhaustionStatus().ok());
  EXPECT_EQ(ctx.ExhaustionStatus().code(), StatusCode::kResourceExhausted);
}

TEST(SearchContextTest, MemoryLimitFires) {
  SearchBudget budget;
  budget.max_memory_bytes = 100;
  SearchContext ctx(budget);
  ctx.metrics.memory.Allocate(99);
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.metrics.memory.Allocate(1);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.exhaustion(), BudgetExhaustion::kMemory);
}

TEST(SearchContextTest, CancelTokenStops) {
  CancelToken cancel;
  SearchBudget budget;
  budget.cancel = &cancel;
  SearchContext ctx(budget);
  EXPECT_FALSE(ctx.ShouldStop());
  cancel.Cancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.exhaustion(), BudgetExhaustion::kCancelled);
}

TEST(SearchContextTest, ExpiredDeadlineStopsWithinStride) {
  SearchContext ctx(SearchBudget::AfterMillis(0.0));
  bool stopped = false;
  // The deadline is only polled every kDeadlineStride ticks; a handful of
  // calls must be enough to observe it.
  for (int i = 0; i < 64 && !stopped; ++i) stopped = ctx.ShouldStop();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(ctx.exhaustion(), BudgetExhaustion::kDeadline);
  EXPECT_EQ(ctx.ExhaustionStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(SearchContextTest, ResetForRetryKeepsBudget) {
  SearchBudget budget;
  budget.max_expansions = 5;
  SearchContext ctx(budget);
  ctx.metrics.states_examined = 5;
  EXPECT_TRUE(ctx.ShouldStop());
  ctx.ResetForRetry();
  EXPECT_FALSE(ctx.exhausted());
  EXPECT_EQ(ctx.metrics.states_examined, 0u);
  ctx.metrics.states_examined = 5;
  EXPECT_TRUE(ctx.ShouldStop());  // the budget itself survives the reset
}

class TruncationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TruncationTest, LimitedRunStillReturnsSolution) {
  Rng rng(31);
  auto space = MakeRandomSpace(rng, 16);
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  ProblemSpec problem = ProblemSpec::Problem2(0.5 * supreme);

  const Algorithm* algorithm = *GetAlgorithm(GetParam());
  SearchContext unlimited;
  auto full = algorithm->Solve(space, problem, unlimited);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(unlimited.metrics.truncated);
  EXPECT_FALSE(full->degraded);

  SearchBudget budget;
  budget.max_expansions = 20;  // far below what the search needs
  SearchContext limited(budget);
  auto cut = algorithm->Solve(space, problem, limited);
  ASSERT_TRUE(cut.ok()) << GetParam();
  // The capped run is flagged if and only if it actually ran out.
  if (unlimited.metrics.states_examined > 20) {
    EXPECT_TRUE(limited.metrics.truncated) << GetParam();
    EXPECT_TRUE(limited.exhausted()) << GetParam();
    EXPECT_TRUE(cut->degraded) << GetParam();
  }
  // Whatever it returns is still a consistent, feasible-or-flagged answer.
  if (cut->feasible) {
    auto params = space.MakeEvaluator().Evaluate(cut->chosen);
    EXPECT_TRUE(problem.IsFeasible(params)) << GetParam();
    EXPECT_LE(cut->params.doi, full->params.doi + 1e-9) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, TruncationTest,
                         ::testing::Values("C-Boundaries", "C-MaxBounds",
                                           "D-MaxDoi", "D-MaxDoi+Prune",
                                           "D-SingleMaxDoi", "D-HeurDoi"));

}  // namespace
}  // namespace cqp::cqp
