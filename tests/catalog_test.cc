#include <gtest/gtest.h>

#include "catalog/compare.h"
#include "catalog/schema.h"
#include "catalog/stats.h"
#include "catalog/value.h"

namespace cqp::catalog {
namespace {

// ---------- Value ----------

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42});
  Value d(4.5);
  Value s("abc");
  EXPECT_EQ(i.type(), ValueType::kInt);
  EXPECT_EQ(d.type(), ValueType::kDouble);
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 4.5);
  EXPECT_EQ(s.AsString(), "abc");
  EXPECT_DOUBLE_EQ(i.AsNumeric(), 42.0);
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LE(Value(1.5), Value(1.5));
  EXPECT_GT(Value(int64_t{5}), Value(int64_t{3}));
}

TEST(ValueTest, EqualityAcrossTypesIsFalse) {
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
}

TEST(ValueTest, SqlLiteralEscapesQuotes) {
  EXPECT_EQ(Value("O'Hara").ToSqlLiteral(), "'O''Hara'");
  EXPECT_EQ(Value(int64_t{3}).ToSqlLiteral(), "3");
}

TEST(ValueTest, ByteSizeModel) {
  EXPECT_EQ(Value(int64_t{1}).ByteSize(), 8u);
  EXPECT_EQ(Value(1.0).ByteSize(), 8u);
  EXPECT_EQ(Value("abcd").ByteSize(), 8u);  // 4 + len
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_EQ(Value(int64_t{9}).Hash(), Value(int64_t{9}).Hash());
}

// ---------- CompareOp ----------

TEST(CompareTest, EvalAllOps) {
  Value a(int64_t{3}), b(int64_t{5});
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLt, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLe, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kNe, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kEq, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kGt, b));
  EXPECT_TRUE(EvalCompare(b, CompareOp::kGe, b));
}

TEST(CompareTest, SqlSpelling) {
  EXPECT_STREQ(CompareOpSql(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpSql(CompareOp::kNe), "<>");
  EXPECT_STREQ(CompareOpSql(CompareOp::kLe), "<=");
}

// ---------- Schema ----------

TEST(SchemaTest, AttributeLookupIsCaseInsensitive) {
  RelationDef rel("MOVIE", {{"mid", ValueType::kInt},
                            {"title", ValueType::kString}});
  ASSERT_TRUE(rel.AttributeIndex("TITLE").ok());
  EXPECT_EQ(*rel.AttributeIndex("TITLE"), 1);
  EXPECT_TRUE(rel.HasAttribute("mid"));
  EXPECT_FALSE(rel.HasAttribute("director"));
  EXPECT_FALSE(rel.AttributeIndex("nope").ok());
}

TEST(SchemaTest, ToStringListsColumns) {
  RelationDef rel("R", {{"a", ValueType::kInt}, {"b", ValueType::kDouble}});
  EXPECT_EQ(rel.ToString(), "R(a INT, b DOUBLE)");
}

// ---------- AttributeStats ----------

AttributeStats MakeStats() {
  // 100 rows, 10 distinct values; MCVs: 7 -> 40 rows, 3 -> 20 rows.
  return AttributeStats(
      100, 10, 0.0, 9.0,
      {{Value(int64_t{7}), 40}, {Value(int64_t{3}), 20}});
}

TEST(StatsTest, EqualityUsesMcv) {
  AttributeStats s = MakeStats();
  EXPECT_DOUBLE_EQ(s.EqualitySelectivity(Value(int64_t{7})), 0.4);
  EXPECT_DOUBLE_EQ(s.EqualitySelectivity(Value(int64_t{3})), 0.2);
}

TEST(StatsTest, EqualityUniformTail) {
  AttributeStats s = MakeStats();
  // Remaining mass 0.4 over 8 unseen distinct values.
  EXPECT_DOUBLE_EQ(s.EqualitySelectivity(Value(int64_t{1})), 0.4 / 8);
}

TEST(StatsTest, AllValuesInMcvMeansUnseenMatchesNothing) {
  AttributeStats s(60, 2, std::nullopt, std::nullopt,
                   {{Value("a"), 40}, {Value("b"), 20}});
  EXPECT_DOUBLE_EQ(s.EqualitySelectivity(Value("c")), 0.0);
  EXPECT_DOUBLE_EQ(s.EqualitySelectivity(Value("a")), 40.0 / 60.0);
}

TEST(StatsTest, RangeInterpolates) {
  AttributeStats s = MakeStats();
  // values span [0, 9]; x = 4.5 sits midway.
  EXPECT_NEAR(s.Selectivity(CompareOp::kLt, Value(4.5)), 0.5, 1e-9);
  EXPECT_NEAR(s.Selectivity(CompareOp::kGe, Value(4.5)), 0.5, 1e-9);
}

TEST(StatsTest, RangeClampsOutOfDomain) {
  AttributeStats s = MakeStats();
  EXPECT_DOUBLE_EQ(s.Selectivity(CompareOp::kLt, Value(-3.0)), 0.0);
  EXPECT_DOUBLE_EQ(s.Selectivity(CompareOp::kLt, Value(100.0)), 1.0);
}

TEST(StatsTest, NotEqualsIsComplement) {
  AttributeStats s = MakeStats();
  EXPECT_DOUBLE_EQ(s.Selectivity(CompareOp::kNe, Value(int64_t{7})), 0.6);
}

TEST(StatsTest, StringRangeFallsBackToMagicFraction) {
  AttributeStats s(100, 10, std::nullopt, std::nullopt, {});
  EXPECT_NEAR(s.Selectivity(CompareOp::kLt, Value("m")), 1.0 / 3.0, 1e-9);
}

TEST(StatsTest, EmptyRelationSelectsNothing) {
  AttributeStats s(0, 0, std::nullopt, std::nullopt, {});
  EXPECT_DOUBLE_EQ(s.EqualitySelectivity(Value(int64_t{1})), 0.0);
}

}  // namespace
}  // namespace cqp::catalog
