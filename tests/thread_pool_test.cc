#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/budget.h"

namespace cqp {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitAll();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitAllIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitAll();
  EXPECT_EQ(count.load(), 1);
  // An idle WaitAll returns immediately; the pool accepts new work after.
  pool.WaitAll();
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitAll();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No WaitAll: the destructor must still run every queued task.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that each wait for the other can only finish if two workers
  // run them at the same time.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&arrived] {
      arrived.fetch_add(1);
      while (arrived.load() < 2) std::this_thread::yield();
    });
  }
  pool.WaitAll();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(ThreadPoolTest, MidFlightCancelTokenStopsCooperativeTasks) {
  // The pool never kills tasks; cancellation is cooperative. Every task
  // polls the shared CancelToken exactly as budgeted searches do, so one
  // Cancel() while tasks are mid-flight must make all of them return
  // early — and WaitAll() must come back promptly, not after the full
  // (deliberately enormous) loop.
  ThreadPool pool(4);
  CancelToken cancel;
  std::atomic<int> started{0};
  std::atomic<int> cancelled_early{0};
  std::atomic<int> ran_to_completion{0};
  constexpr int kTasks = 16;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      started.fetch_add(1);
      // ~100 s of sleeping if never cancelled; the test would time out.
      for (int step = 0; step < 1'000'000; ++step) {
        if (cancel.cancelled()) {
          cancelled_early.fetch_add(1);
          return;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      ran_to_completion.fetch_add(1);
    });
  }
  // Wait until at least one task is genuinely mid-flight, then cancel.
  while (started.load() == 0) std::this_thread::yield();
  cancel.Cancel();
  pool.WaitAll();
  EXPECT_EQ(cancelled_early.load() + ran_to_completion.load(), kTasks);
  EXPECT_EQ(ran_to_completion.load(), 0);
  EXPECT_EQ(cancelled_early.load(), kTasks);
}

TEST(ThreadPoolTest, SubmitFromWithinATask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    count.fetch_add(1);
    pool.Submit([&count] { count.fetch_add(1); });
  });
  pool.WaitAll();
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace cqp
