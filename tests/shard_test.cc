// Tests of the sharded, demand-paged profile tier (src/server/shard/):
// paging LRU behavior under byte pressure, single-flight page-ins,
// pinning, eviction racing hot-reloads, hash routing + MANIFEST guards,
// per-shard cache slices, and migration from a PR 6 single-directory
// store.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/durable_profile_store.h"
#include "server/profile_store.h"
#include "server/shard/profile_shard.h"
#include "server/shard/sharded_profile_store.h"
#include "storage/database.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"

namespace cqp::server::shard {
namespace {

/// RAII temp directory for the on-disk tests.
class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/cqp_shard_test.XXXXXX";
    path_ = ::mkdtemp(buf);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class ShardTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::MovieDbConfig movie_config;
    movie_config.n_movies = 150;
    movie_config.n_directors = 15;
    movie_config.n_actors = 30;
    auto built = workload::BuildMovieDatabase(movie_config);
    ASSERT_TRUE(built.ok());
    db_ = new storage::Database(*std::move(built));

    profiles_ = new std::vector<prefs::Profile>();
    for (uint64_t seed : {21u, 22u, 23u, 24u}) {
      workload::ProfileGenConfig config;
      config.seed = seed;
      config.n_genre_prefs = 3;
      config.n_director_prefs = 2;
      config.n_actor_prefs = 2;
      config.n_year_prefs = 2;
      config.n_duration_prefs = 1;
      auto profile = workload::GenerateProfile(config, movie_config);
      ASSERT_TRUE(profile.ok());
      profiles_->push_back(*std::move(profile));
    }
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete profiles_;
    profiles_ = nullptr;
  }

  static storage::Database* db_;
  static std::vector<prefs::Profile>* profiles_;
};

storage::Database* ShardTest::db_ = nullptr;
std::vector<prefs::Profile>* ShardTest::profiles_ = nullptr;

// ------------------------------------------------------------ ProfileShard

TEST_F(ShardTest, RoundtripAndLazyReopen) {
  TempDir dir;
  ShardOptions options;
  options.dir = dir.path();
  {
    auto shard = ProfileShard::Open(db_, 0, options);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    ASSERT_TRUE((*shard)->Put("alice", (*profiles_)[0]).ok());
    ASSERT_TRUE((*shard)->Put("bob", (*profiles_)[1]).ok());
    ASSERT_TRUE((*shard)->Put("alice", (*profiles_)[2]).ok());  // replace
    ASSERT_TRUE((*shard)->Remove("bob").ok());
    EXPECT_EQ((*shard)->Remove("bob").code(), StatusCode::kNotFound);
    ProfileStore::Snapshot found = (*shard)->Find("alice");
    ASSERT_NE(found.graph, nullptr);
    EXPECT_EQ(found.version, 3u);
    EXPECT_EQ((*shard)->Find("nobody").graph, nullptr);
  }
  auto reopened = ProfileShard::Open(db_, 0, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Recovery indexed the journal without building any graph.
  EXPECT_EQ((*reopened)->num_profiles(), 1u);
  EXPECT_EQ((*reopened)->stats().resident_profiles, 0u);
  // The first Find pages the graph in from disk.
  ProfileStore::Snapshot found = (*reopened)->Find("alice");
  ASSERT_NE(found.graph, nullptr);
  EXPECT_EQ(found.version, 3u);
  EXPECT_EQ((*reopened)->stats().page_ins, 1u);
  // The second is a residency hit.
  EXPECT_EQ((*reopened)->Find("alice").graph, found.graph);
  EXPECT_EQ((*reopened)->stats().hits, 1u);
}

TEST_F(ShardTest, EvictionUnderBytePressure) {
  TempDir dir;
  ShardOptions options;
  options.dir = dir.path();
  options.resident_budget_bytes = 1;  // nothing stays resident once cold
  auto shard = ProfileShard::Open(db_, 0, options);
  ASSERT_TRUE(shard.ok());

  const size_t n = 8;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(
        (*shard)->Put("u" + std::to_string(i), (*profiles_)[i % 4]).ok());
  }
  ShardStats stats = (*shard)->stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, options.resident_budget_bytes);
  EXPECT_EQ(stats.profiles, n);

  // Evicted profiles are still there — they page back in on demand.
  for (size_t i = 0; i < n; ++i) {
    ProfileStore::Snapshot found = (*shard)->Find("u" + std::to_string(i));
    ASSERT_NE(found.graph, nullptr) << "u" << i;
  }
  EXPECT_GT((*shard)->stats().page_ins, 0u);
}

TEST_F(ShardTest, ConcurrentColdFindsShareOnePageIn) {
  TempDir dir;
  ShardOptions options;
  options.dir = dir.path();
  {
    auto shard = ProfileShard::Open(db_, 0, options);
    ASSERT_TRUE(shard.ok());
    ASSERT_TRUE((*shard)->Put("hot", (*profiles_)[0]).ok());
  }
  auto reopened = ProfileShard::Open(db_, 0, options);
  ASSERT_TRUE(reopened.ok());
  ProfileShard& shard = **reopened;

  constexpr size_t kThreads = 8;
  std::vector<ProfileStore::Snapshot> results(kThreads);
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&shard, &results, t] { results[t] = shard.Find("hot"); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  // Everyone sees the same graph, and the disk was read exactly once
  // (single-flight): the non-loading threads either waited on the loader
  // or arrived late enough to hit the resident graph.
  for (const ProfileStore::Snapshot& result : results) {
    ASSERT_NE(result.graph, nullptr);
    EXPECT_EQ(result.graph, results[0].graph);
    EXPECT_EQ(result.version, 1u);
  }
  ShardStats stats = shard.stats();
  EXPECT_EQ(stats.page_ins, 1u);
  EXPECT_EQ(stats.page_in_errors, 0u);
  EXPECT_EQ(stats.hits + stats.page_in_waits, kThreads - 1);
}

TEST_F(ShardTest, PinnedGraphIsNeverEvicted) {
  TempDir dir;
  ShardOptions options;
  options.dir = dir.path();
  options.resident_budget_bytes = 1;  // every put immediately over budget
  auto shard = ProfileShard::Open(db_, 0, options);
  ASSERT_TRUE(shard.ok());

  ASSERT_TRUE((*shard)->Put("held", (*profiles_)[0]).ok());
  // This snapshot's shared_ptr pins the graph: eviction must skip it no
  // matter how hard the budget squeezes.
  ProfileStore::Snapshot pinned = (*shard)->Find("held");
  ASSERT_NE(pinned.graph, nullptr);

  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        (*shard)->Put("filler" + std::to_string(i), (*profiles_)[1]).ok());
  }
  ShardStats stats = (*shard)->stats();
  EXPECT_GT(stats.pinned_skips, 0u);

  // Still resident: finding it again is a hit, not a page-in.
  uint64_t page_ins_before = stats.page_ins;
  ProfileStore::Snapshot again = (*shard)->Find("held");
  EXPECT_EQ(again.graph, pinned.graph);
  EXPECT_EQ((*shard)->stats().page_ins, page_ins_before);

  // Dropping the pin makes it evictable; the next put's eviction pass can
  // reclaim it, and a later Find pages it back in correctly.
  pinned.graph.reset();
  again.graph.reset();
  ASSERT_TRUE((*shard)->Put("filler9", (*profiles_)[2]).ok());
  ProfileStore::Snapshot back = (*shard)->Find("held");
  ASSERT_NE(back.graph, nullptr);
  EXPECT_EQ(back.version, 1u);
}

TEST_F(ShardTest, EvictionRacingHotReload) {
  TempDir dir;
  ShardOptions options;
  options.dir = dir.path();
  options.resident_budget_bytes = 1;       // evict on every mutation
  options.compact_threshold_bytes = 4096;  // compactions mid-race too
  auto opened = ProfileShard::Open(db_, 0, options);
  ASSERT_TRUE(opened.ok());
  ProfileShard& shard = **opened;

  // Two writers hot-reloading disjoint ids while readers page them in and
  // out under a 1-byte budget: every Find must observe a complete graph
  // (never a torn install), and the final versions must be the last acks.
  constexpr int kRounds = 30;
  std::atomic<bool> stop{false};
  std::atomic<int> bad_reads{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&shard, w] {
      const std::string id = "w" + std::to_string(w);
      for (int round = 0; round < kRounds; ++round) {
        EXPECT_TRUE(shard.Put(id, (*profiles_)[(w + round) % 4]).ok());
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&shard, &stop, &bad_reads, r] {
      while (!stop.load(std::memory_order_acquire)) {
        ProfileStore::Snapshot snap =
            shard.Find("w" + std::to_string(r % 2));
        // Absent is fine early on; a present graph must be fully built
        // (the generated profiles all carry selection edges).
        if (snap.graph != nullptr &&
            snap.graph->Counts().selection_edges == 0) {
          bad_reads.fetch_add(1);
        }
      }
    });
  }
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  threads[2].join();
  threads[3].join();

  EXPECT_EQ(bad_reads.load(), 0);
  // Each writer acked kRounds puts; interleaving fixes each id's final
  // version only up to ordering, so check via a fresh Find against the
  // version Find reports — and that both survive a reopen identically.
  uint64_t v0 = shard.Find("w0").version;
  uint64_t v1 = shard.Find("w1").version;
  EXPECT_GE(v0 + v1, 2u * kRounds);  // 60 acked mutations in one shard
  ASSERT_TRUE(shard.Flush().ok());

  auto reopened = ProfileShard::Open(db_, 0, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Find("w0").version, v0);
  EXPECT_EQ((*reopened)->Find("w1").version, v1);
}

// --------------------------------------------------- ShardedProfileStore

TEST_F(ShardTest, RoutingIsStableAndCoversShards) {
  // The hash is pinned (FNV-1a): a layout written today must route the
  // same in every future process.
  EXPECT_EQ(ShardedProfileStore::ShardIndexForId("alice", 4),
            ShardedProfileStore::ShardIndexForId("alice", 4));
  EXPECT_EQ(ShardedProfileStore::ShardDirName(7), "shard-007");
  std::vector<bool> seen(4, false);
  for (int i = 0; i < 64; ++i) {
    seen[ShardedProfileStore::ShardIndexForId("u" + std::to_string(i), 4)] =
        true;
  }
  for (bool shard_seen : seen) EXPECT_TRUE(shard_seen);
}

TEST_F(ShardTest, ShardedRoundtripReopenAndStats) {
  TempDir dir;
  ShardedStoreOptions options;
  options.dir = dir.path();
  options.num_shards = 3;
  std::vector<std::string> ids;
  for (int i = 0; i < 12; ++i) ids.push_back("user" + std::to_string(i));
  {
    auto store = ShardedProfileStore::Open(db_, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE((*store)->Put(ids[i], (*profiles_)[i % 4]).ok());
    }
    ASSERT_TRUE((*store)->Remove(ids.back()).ok());
    EXPECT_EQ((*store)->size(), ids.size() - 1);
  }
  auto reopened = ShardedProfileStore::Open(db_, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ShardedProfileStore& store = **reopened;
  EXPECT_EQ(store.size(), ids.size() - 1);
  std::vector<std::string> expected(ids.begin(), ids.end() - 1);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(store.Ids(), expected);
  for (const std::string& id : expected) {
    ProfileStore::Snapshot found = store.FindSnapshot(id);
    ASSERT_NE(found.graph, nullptr) << id;
    // Every id lives on the shard the public router predicts.
    size_t shard = ShardedProfileStore::ShardIndexForId(id, 3);
    EXPECT_NE(store.shard(shard).Find(id).graph, nullptr);
  }
  auto tier = store.shard_stats();
  ASSERT_TRUE(tier.has_value());
  EXPECT_EQ(tier->shards, 3u);
  EXPECT_EQ(tier->profiles, ids.size() - 1);
  EXPECT_EQ(tier->page_ins, ids.size() - 1);
  ASSERT_EQ(tier->per_shard.size(), 3u);
  size_t summed = 0;
  for (const ShardStats& s : tier->per_shard) summed += s.profiles;
  EXPECT_EQ(summed, tier->profiles);
}

TEST_F(ShardTest, ManifestRejectsShardCountMismatch) {
  TempDir dir;
  ShardedStoreOptions options;
  options.dir = dir.path();
  options.num_shards = 3;
  {
    auto store = ShardedProfileStore::Open(db_, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("alice", (*profiles_)[0]).ok());
  }
  // A different count must be a hard error — the hash routing would send
  // "alice" to the wrong shard.
  options.num_shards = 2;
  auto mismatched = ShardedProfileStore::Open(db_, options);
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
  // 0 adopts whatever the MANIFEST says.
  options.num_shards = 0;
  auto adopted = ShardedProfileStore::Open(db_, options);
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ((*adopted)->num_shards(), 3u);
  EXPECT_NE((*adopted)->FindSnapshot("alice").graph, nullptr);
}

TEST_F(ShardTest, CacheSlicesFollowTheRouting) {
  TempDir dir;
  ShardedStoreOptions options;
  options.dir = dir.path();
  options.num_shards = 4;
  auto store = ShardedProfileStore::Open(db_, options);
  ASSERT_TRUE(store.ok());

  // Find two ids that live on different shards.
  std::string a = "a0";
  std::string b;
  for (int i = 0; i < 64 && b.empty(); ++i) {
    std::string candidate = "b" + std::to_string(i);
    if (ShardedProfileStore::ShardIndexForId(candidate, 4) !=
        ShardedProfileStore::ShardIndexForId(a, 4)) {
      b = candidate;
    }
  }
  ASSERT_FALSE(b.empty());
  // Same id → same slice (stable); different shard → different slice.
  EXPECT_EQ(&(*store)->caches_for(a), &(*store)->caches_for(a));
  EXPECT_NE(&(*store)->caches_for(a), &(*store)->caches_for(b));
  EXPECT_EQ(&(*store)->plans_for(a), &(*store)->plans_for(a));
  EXPECT_NE(&(*store)->plans_for(a), &(*store)->plans_for(b));
}

TEST_F(ShardTest, VersionsStayMonotonicPerShardAcrossReopen) {
  TempDir dir;
  ShardedStoreOptions options;
  options.dir = dir.path();
  options.num_shards = 2;
  uint64_t last = 0;
  {
    auto store = ShardedProfileStore::Open(db_, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("alice", (*profiles_)[0]).ok());
    ASSERT_TRUE((*store)->Put("alice", (*profiles_)[1]).ok());
    last = (*store)->FindSnapshot("alice").version;
    EXPECT_EQ(last, 2u);
  }
  auto reopened = ShardedProfileStore::Open(db_, options);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->Put("alice", (*profiles_)[2]).ok());
  EXPECT_GT((*reopened)->FindSnapshot("alice").version, last);
}

TEST_F(ShardTest, SingleShardAdoptsAPr6Directory) {
  // The documented migration: a PR 6 DurableProfileStore directory becomes
  // shard-000 of a 1-shard tier (same journal + snapshot formats).
  TempDir dir;
  const std::string old_dir = dir.path() + "/old";
  {
    DurabilityOptions options;
    options.dir = old_dir;
    auto store = DurableProfileStore::Open(db_, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("alice", (*profiles_)[0]).ok());
    ASSERT_TRUE((*store)->Put("bob", (*profiles_)[1]).ok());
    ASSERT_TRUE((*store)->Remove("bob").ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  const std::string tier_dir = dir.path() + "/tier";
  const std::string shard_dir =
      tier_dir + "/" + ShardedProfileStore::ShardDirName(0);
  std::filesystem::create_directories(shard_dir);
  for (const char* file : {"journal", "snapshot"}) {
    if (std::filesystem::exists(old_dir + "/" + file)) {
      std::filesystem::rename(old_dir + "/" + file, shard_dir + "/" + file);
    }
  }
  ShardedStoreOptions options;
  options.dir = tier_dir;
  options.num_shards = 1;
  auto store = ShardedProfileStore::Open(db_, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->size(), 1u);
  ProfileStore::Snapshot found = (*store)->FindSnapshot("alice");
  ASSERT_NE(found.graph, nullptr);
  EXPECT_EQ(found.version, 1u);
  // New mutations keep versioning above the migrated history.
  ASSERT_TRUE((*store)->Put("carol", (*profiles_)[2]).ok());
  EXPECT_EQ((*store)->FindSnapshot("carol").version, 4u);
}

TEST_F(ShardTest, CompactionPreservesPagedOutProfiles) {
  TempDir dir;
  ShardOptions options;
  options.dir = dir.path();
  options.resident_budget_bytes = 1;  // everything pages out immediately
  auto shard = ProfileShard::Open(db_, 0, options);
  ASSERT_TRUE(shard.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        (*shard)->Put("u" + std::to_string(i), (*profiles_)[i % 4]).ok());
  }
  // Compact rewrites the files the cold disk refs point into; every ref
  // must be rewritten to the new snapshot.
  ASSERT_TRUE((*shard)->Compact().ok());
  EXPECT_GT((*shard)->stats().journal.compactions, 0u);
  for (int i = 0; i < 6; ++i) {
    ProfileStore::Snapshot found = (*shard)->Find("u" + std::to_string(i));
    ASSERT_NE(found.graph, nullptr) << "u" << i;
  }
  EXPECT_EQ((*shard)->stats().page_in_errors, 0u);
}

}  // namespace
}  // namespace cqp::server::shard
