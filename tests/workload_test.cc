#include <gtest/gtest.h>

#include "workload/experiment.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"
#include "workload/query_gen.h"
#include "workload/tourist_gen.h"

namespace cqp::workload {
namespace {

MovieDbConfig SmallDb() {
  MovieDbConfig config;
  config.n_movies = 800;
  config.n_directors = 60;
  config.n_actors = 150;
  return config;
}

TEST(MovieGenTest, SchemaAndCardinalities) {
  auto db = *BuildMovieDatabase(SmallDb());
  ASSERT_TRUE(db.HasTable("MOVIE"));
  ASSERT_TRUE(db.HasTable("DIRECTOR"));
  ASSERT_TRUE(db.HasTable("GENRE"));
  ASSERT_TRUE(db.HasTable("ACTOR"));
  ASSERT_TRUE(db.HasTable("CASTS"));
  EXPECT_EQ((*db.GetTable("MOVIE"))->row_count(), 800u);
  EXPECT_EQ((*db.GetTable("DIRECTOR"))->row_count(), 60u);
  EXPECT_EQ((*db.GetTable("CASTS"))->row_count(), 800u * 4);
  EXPECT_GE((*db.GetTable("GENRE"))->row_count(), 800u);
}

TEST(MovieGenTest, DeterministicInSeed) {
  auto a = *BuildMovieDatabase(SmallDb());
  auto b = *BuildMovieDatabase(SmallDb());
  const auto& ra = (*a.GetTable("MOVIE"))->rows();
  const auto& rb = (*b.GetTable("MOVIE"))->rows();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); i += 97) EXPECT_EQ(ra[i], rb[i]);
}

TEST(MovieGenTest, DifferentSeedsDiffer) {
  MovieDbConfig other = SmallDb();
  other.seed = 777;
  auto a = *BuildMovieDatabase(SmallDb());
  auto b = *BuildMovieDatabase(other);
  const auto& ra = (*a.GetTable("MOVIE"))->rows();
  const auto& rb = (*b.GetTable("MOVIE"))->rows();
  bool any_diff = false;
  for (size_t i = 0; i < ra.size(); ++i) any_diff = any_diff || ra[i] != rb[i];
  EXPECT_TRUE(any_diff);
}

TEST(MovieGenTest, StatsAnalyzed) {
  auto db = *BuildMovieDatabase(SmallDb());
  auto stats = db.GetStats("MOVIE");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*stats)->row_count, 800u);
  EXPECT_GT((*stats)->blocks, 0u);
}

TEST(MovieGenTest, ForeignKeysInRange) {
  auto db = *BuildMovieDatabase(SmallDb());
  const auto& movies = (*db.GetTable("MOVIE"))->rows();
  for (const auto& m : movies) {
    EXPECT_GE(m.at(4).AsInt(), 0);
    EXPECT_LT(m.at(4).AsInt(), 60);
  }
}

TEST(MovieGenTest, RejectsNonPositiveCounts) {
  MovieDbConfig bad = SmallDb();
  bad.n_movies = 0;
  EXPECT_FALSE(BuildMovieDatabase(bad).ok());
}

TEST(ProfileGenTest, GeneratesValidatableProfile) {
  auto db = *BuildMovieDatabase(SmallDb());
  ProfileGenConfig pc;
  auto profile = *GenerateProfile(pc, SmallDb());
  EXPECT_TRUE(profile.ValidateAgainst(db).ok());
  EXPECT_EQ(profile.joins().size(), 4u);
  EXPECT_GE(profile.selections().size(), 40u);
}

TEST(ProfileGenTest, DoisWithinConfiguredRange) {
  ProfileGenConfig pc;
  pc.doi_lo = 0.2;
  pc.doi_hi = 0.6;
  auto profile = *GenerateProfile(pc, SmallDb());
  for (const auto& sel : profile.selections()) {
    EXPECT_GE(sel.doi, 0.2);
    EXPECT_LE(sel.doi, 0.6);
  }
}

TEST(ProfileGenTest, DistinctSeedsGiveDistinctProfiles) {
  ProfileGenConfig a, b;
  b.seed = a.seed + 1;
  auto pa = *GenerateProfile(a, SmallDb());
  auto pb = *GenerateProfile(b, SmallDb());
  EXPECT_NE(pa.ToText(), pb.ToText());
}

TEST(QueryGenTest, AllQueriesParseAndAnchorOnMovie) {
  auto queries = *GenerateQueries(QueryGenConfig{}, SmallDb());
  EXPECT_EQ(queries.size(), 10u);
  for (const auto& q : queries) {
    bool has_movie = false;
    for (const auto& t : q.from) has_movie = has_movie || t.relation == "MOVIE";
    EXPECT_TRUE(has_movie) << q.ToSql();
  }
}

TEST(TouristGenTest, BuildsAndValidates) {
  auto db = *BuildTouristDatabase(TouristDbConfig{});
  ASSERT_TRUE(db.HasTable("CITY"));
  ASSERT_TRUE(db.HasTable("RESTAURANT"));
  ASSERT_TRUE(db.HasTable("ATTRACTION"));
  auto profile = *BuildAlProfile();
  EXPECT_TRUE(profile.ValidateAgainst(db).ok());
}

TEST(TouristGenTest, PisaExists) {
  auto db = *BuildTouristDatabase(TouristDbConfig{});
  const auto& cities = (*db.GetTable("CITY"))->rows();
  bool pisa = false;
  for (const auto& c : cities) pisa = pisa || c.at(1).AsString() == "Pisa";
  EXPECT_TRUE(pisa);
}

// ---------- experiment harness ----------

ExperimentConfig TinyExperiment() {
  ExperimentConfig config;
  config.db = SmallDb();
  config.n_profiles = 2;
  config.query.n_queries = 3;
  return config;
}

TEST(ExperimentTest, ContextBuilds) {
  auto ctx = *ExperimentContext::Create(TinyExperiment());
  EXPECT_EQ(ctx.graphs().size(), 2u);
  EXPECT_EQ(ctx.queries().size(), 3u);
}

TEST(ExperimentTest, InstancesHaveRequestedK) {
  auto ctx = *ExperimentContext::Create(TinyExperiment());
  auto instances = *BuildInstances(ctx, 10);
  ASSERT_FALSE(instances.empty());
  for (const auto& inst : instances) {
    EXPECT_EQ(inst.space.K(), 10u);
    EXPECT_GT(inst.supreme_cost_ms, 0.0);
    EXPECT_GE(inst.c_prefsel_ms, 0.0);
  }
}

TEST(ExperimentTest, RunAlgorithmsAggregates) {
  auto ctx = *ExperimentContext::Create(TinyExperiment());
  auto instances = *BuildInstances(ctx, 8);
  auto aggregates = *RunAlgorithmsAtFraction(
      instances, 0.4, {"C-Boundaries", "D-HeurDoi"}, "D-MaxDoi");
  ASSERT_EQ(aggregates.size(), 2u);
  const AlgoAggregate& exact = aggregates.at("C-Boundaries");
  EXPECT_EQ(exact.runs, instances.size());
  EXPECT_GT(exact.mean_states, 0.0);
  // C-Boundaries is exact: zero quality gap against the D-MaxDoi optimum.
  EXPECT_NEAR(exact.mean_quality_diff, 0.0, 1e-9);
  // The heuristic can only lose doi, never gain.
  EXPECT_GE(aggregates.at("D-HeurDoi").mean_quality_diff, -1e-9);
}

TEST(ExperimentTest, SupremeFractionOneIsAlwaysFeasible) {
  auto ctx = *ExperimentContext::Create(TinyExperiment());
  auto instances = *BuildInstances(ctx, 8);
  auto aggregates =
      *RunAlgorithmsAtFraction(instances, 1.0, {"C-Boundaries"}, "");
  EXPECT_EQ(aggregates.at("C-Boundaries").infeasible, 0u);
}

}  // namespace
}  // namespace cqp::workload
