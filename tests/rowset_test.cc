#include <gtest/gtest.h>

#include "exec/row_set.h"

namespace cqp::exec {
namespace {

using catalog::Value;
using storage::Tuple;

RowSet MakeRowSet() {
  RowSet rows({"M.title", "M.year", "D.name"}, {});
  rows.AddRow(Tuple({Value("Vertigo"), Value(int64_t{1958}),
                     Value("A. Hitchcock")}));
  rows.AddRow(Tuple({Value("Psycho"), Value(int64_t{1960}),
                     Value("A. Hitchcock")}));
  return rows;
}

TEST(RowSetTest, ResolveQualified) {
  RowSet rows = MakeRowSet();
  EXPECT_EQ(*rows.ResolveColumn({"M", "year"}), 1);
  EXPECT_EQ(*rows.ResolveColumn({"D", "name"}), 2);
  // Case-insensitive.
  EXPECT_EQ(*rows.ResolveColumn({"m", "YEAR"}), 1);
}

TEST(RowSetTest, ResolveUnqualifiedUnique) {
  RowSet rows = MakeRowSet();
  EXPECT_EQ(*rows.ResolveColumn({"", "title"}), 0);
  EXPECT_EQ(*rows.ResolveColumn({"", "name"}), 2);
}

TEST(RowSetTest, ResolveFailures) {
  RowSet rows({"A.x", "B.x"}, {});
  auto ambiguous = rows.ResolveColumn({"", "x"});
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_EQ(ambiguous.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(rows.ResolveColumn({"C", "x"}).ok());
  EXPECT_FALSE(rows.ResolveColumn({"", "y"}).ok());
}

TEST(RowSetTest, UnqualifiedNameWithoutDotMatchesWholeName) {
  RowSet rows({"title"}, {});
  EXPECT_EQ(*rows.ResolveColumn({"", "title"}), 0);
}

TEST(RowSetTest, ToStringTruncates) {
  RowSet rows({"v"}, {});
  for (int i = 0; i < 30; ++i) {
    rows.AddRow(Tuple({Value(static_cast<int64_t>(i))}));
  }
  std::string text = rows.ToString(/*max_rows=*/5);
  EXPECT_NE(text.find("v\n"), std::string::npos);
  EXPECT_NE(text.find("(25 more rows)"), std::string::npos);
}

TEST(RowSetTest, ToStringHeaderOnlyWhenEmpty) {
  RowSet rows({"a", "b"}, {});
  EXPECT_EQ(rows.ToString(), "a | b\n");
}

}  // namespace
}  // namespace cqp::exec
