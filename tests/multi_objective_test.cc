#include <gtest/gtest.h>

#include "common/rng.h"
#include "cqp/algorithms.h"
#include "cqp/multi_objective.h"
#include "test_util.h"

namespace cqp::cqp {
namespace {

using ::cqp::testing::MakeRandomSpace;

MultiObjectiveSpec BasicSpec(const space::PreferenceSpaceResult& space,
                             double wd, double wc, double ws) {
  MultiObjectiveSpec spec;
  spec.doi_weight = wd;
  spec.cost_weight = wc;
  spec.size_weight = ws;
  spec.cost_scale = space.MakeEvaluator().SupremeState().cost_ms;
  spec.size_scale = std::max(space.base.size, 1.0);
  return spec;
}

TEST(MultiObjectiveSpecTest, Validation) {
  Rng rng(1);
  auto space = MakeRandomSpace(rng, 4);
  MultiObjectiveSpec spec = BasicSpec(space, 1, 1, 0);
  EXPECT_TRUE(spec.Validate().ok());
  spec.doi_weight = -1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = BasicSpec(space, 0, 0, 0);
  EXPECT_FALSE(spec.Validate().ok());
  spec = BasicSpec(space, 1, 0, 0);
  spec.cost_scale = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = BasicSpec(space, 1, 0, 0);
  spec.smin = 10;
  spec.smax = 5;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(MultiObjectiveSpecTest, ScoreArithmetic) {
  Rng rng(2);
  auto space = MakeRandomSpace(rng, 4);
  MultiObjectiveSpec spec = BasicSpec(space, 2, 1, 1);
  estimation::StateParams p;
  p.doi = 0.5;
  p.cost_ms = spec.cost_scale / 2;
  p.size = spec.size_scale / 4;
  EXPECT_NEAR(spec.Score(p), 2 * 0.5 - 0.5 - 0.25, 1e-12);
}

// ---------- Pareto front ----------

class ParetoTest : public ::testing::TestWithParam<int> {};

TEST_P(ParetoTest, FrontIsUndominatedAndComplete) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  auto space = MakeRandomSpace(rng, 10);
  MultiObjectiveSpec spec = BasicSpec(space, 1, 1, 0);
  SearchContext ctx;
  auto front = *ParetoFront(space, spec, ctx);
  ASSERT_FALSE(front.empty());

  // Monotone: increasing cost and strictly increasing doi.
  for (size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].params.cost_ms, front[i - 1].params.cost_ms);
    EXPECT_GT(front[i].params.doi, front[i - 1].params.doi);
  }

  // No enumerated state dominates any front point (spot-checked against a
  // fresh exhaustive enumeration).
  estimation::StateEvaluator evaluator = space.MakeEvaluator();
  std::vector<estimation::StateParams> all;
  std::vector<int32_t> current;
  auto recurse = [&](auto&& self, size_t i,
                     const estimation::StateParams& params) -> void {
    if (i == evaluator.K()) {
      all.push_back(params);
      return;
    }
    self(self, i + 1, params);
    self(self, i + 1, evaluator.ExtendWith(params, static_cast<int32_t>(i)));
  };
  recurse(recurse, 0, evaluator.EmptyState());
  for (const ParetoPoint& p : front) {
    for (const auto& other : all) {
      bool dominates = other.doi > p.params.doi + 1e-12 &&
                       other.cost_ms < p.params.cost_ms - 1e-9;
      EXPECT_FALSE(dominates)
          << "front point doi=" << p.params.doi
          << " cost=" << p.params.cost_ms << " dominated by doi="
          << other.doi << " cost=" << other.cost_ms;
    }
  }
}

TEST_P(ParetoTest, ScalarizedOptimumTouchesTheFront) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  auto space = MakeRandomSpace(rng, 9);
  for (double wc : {0.1, 1.0, 5.0}) {
    MultiObjectiveSpec spec = BasicSpec(space, 1, wc, 0);
    SearchContext c1, c2;
    Solution best = *SolveScalarized(space, spec, c1);
    ASSERT_TRUE(best.feasible);
    auto front = *ParetoFront(space, spec, c2);
    // The scalarized optimum's score equals the best score over the front
    // (a positive weighted sum is always maximized on the Pareto front).
    double best_front = -1e18;
    for (const ParetoPoint& p : front) {
      best_front = std::max(best_front, spec.Score(p.params));
    }
    EXPECT_NEAR(spec.Score(best.params), best_front, 1e-9) << "wc=" << wc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(ParetoTest, ConstraintsFilterTheFront) {
  Rng rng(42);
  auto space = MakeRandomSpace(rng, 10);
  MultiObjectiveSpec spec = BasicSpec(space, 1, 1, 0);
  SearchContext c1, c2;
  auto unconstrained = *ParetoFront(space, spec, c1);
  spec.cmax_ms = space.MakeEvaluator().SupremeState().cost_ms * 0.4;
  auto constrained = *ParetoFront(space, spec, c2);
  EXPECT_LE(constrained.size(), unconstrained.size());
  for (const ParetoPoint& p : constrained) {
    EXPECT_LE(p.params.cost_ms, *spec.cmax_ms);
  }
}

TEST(ParetoTest, RefusesHugeK) {
  Rng rng(7);
  auto space = MakeRandomSpace(rng, 21);
  MultiObjectiveSpec spec = BasicSpec(space, 1, 1, 0);
  SearchContext ctx;
  EXPECT_FALSE(ParetoFront(space, spec, ctx).ok());
}

// ---------- Scalarized branch-and-bound ----------

class ScalarizedTest : public ::testing::TestWithParam<int> {};

TEST_P(ScalarizedTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  auto space = MakeRandomSpace(rng, 10);
  MultiObjectiveSpec spec =
      BasicSpec(space, rng.UniformDouble(0.5, 2), rng.UniformDouble(0, 2),
                rng.UniformDouble(0, 1));
  if (rng.Bernoulli(0.5)) {
    spec.cmax_ms = space.MakeEvaluator().SupremeState().cost_ms *
                   rng.UniformDouble(0.3, 1.0);
  }

  SearchContext ctx;
  Solution got = *SolveScalarized(space, spec, ctx);

  // Brute force.
  estimation::StateEvaluator evaluator = space.MakeEvaluator();
  double best = -1e18;
  bool any = false;
  auto recurse = [&](auto&& self, size_t i,
                     const estimation::StateParams& params) -> void {
    if (i == evaluator.K()) {
      if (spec.IsFeasible(params)) {
        any = true;
        best = std::max(best, spec.Score(params));
      }
      return;
    }
    self(self, i + 1, params);
    self(self, i + 1, evaluator.ExtendWith(params, static_cast<int32_t>(i)));
  };
  recurse(recurse, 0, evaluator.EmptyState());

  ASSERT_EQ(got.feasible, any);
  if (any) {
    EXPECT_NEAR(spec.Score(got.params), best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalarizedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(ScalarizedTest, PureDoiWeightReducesToProblem2) {
  Rng rng(11);
  auto space = MakeRandomSpace(rng, 10);
  double supreme = space.MakeEvaluator().SupremeState().cost_ms;
  MultiObjectiveSpec spec = BasicSpec(space, 1, 0, 0);
  spec.cmax_ms = 0.5 * supreme;
  SearchContext scalar_ctx;
  Solution scalarized = *SolveScalarized(space, spec, scalar_ctx);

  ProblemSpec p2 = ProblemSpec::Problem2(0.5 * supreme);
  SearchContext classic_ctx;
  Solution classic =
      *(*GetAlgorithm("Exhaustive"))->Solve(space, p2, classic_ctx);
  ASSERT_TRUE(scalarized.feasible);
  EXPECT_NEAR(scalarized.params.doi, classic.params.doi, 1e-9);
}

TEST(ScalarizedTest, SizeWeightPullsTowardSmallerAnswers) {
  Rng rng(13);
  auto space = MakeRandomSpace(rng, 10);
  MultiObjectiveSpec light = BasicSpec(space, 1, 0, 0.1);
  MultiObjectiveSpec heavy = BasicSpec(space, 1, 0, 10.0);
  SearchContext c1, c2;
  Solution a = *SolveScalarized(space, light, c1);
  Solution b = *SolveScalarized(space, heavy, c2);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_LE(b.params.size, a.params.size + 1e-9);
}

TEST(ScalarizedTest, HardConstraintsRespected) {
  Rng rng(14);
  auto space = MakeRandomSpace(rng, 10);
  MultiObjectiveSpec spec = BasicSpec(space, 1, 0.2, 0);
  spec.dmin = 0.8;
  spec.smax = space.base.size * 0.5;
  SearchContext ctx;
  Solution sol = *SolveScalarized(space, spec, ctx);
  if (sol.feasible) {
    EXPECT_GE(sol.params.doi, 0.8);
    EXPECT_LE(sol.params.size, *spec.smax + 1e-9);
  }
}

TEST(ScalarizedTest, CostWeightPullsTowardCheaperQueries) {
  Rng rng(12);
  auto space = MakeRandomSpace(rng, 10);
  MultiObjectiveSpec light = BasicSpec(space, 1, 0.1, 0);
  MultiObjectiveSpec heavy = BasicSpec(space, 1, 10.0, 0);
  SearchContext c1, c2;
  Solution a = *SolveScalarized(space, light, c1);
  Solution b = *SolveScalarized(space, heavy, c2);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_LE(b.params.cost_ms, a.params.cost_ms);
}

}  // namespace
}  // namespace cqp::cqp
