// Soak battery (ctest label: soak): ~1k concurrent connections multiplexed
// over the epoll server for CQP_SOAK_SECONDS (default 6, CI uses 30),
// mixing ping traffic with personalize requests against a sharded
// demand-paged profile tier whose budget is too small to keep the cold
// profiles resident. The invariant under load: every request gets exactly
// one response, in order, with the id it was sent under — zero lost, zero
// duplicated — while the tier pages graphs in and out underneath.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "server/io_util.h"
#include "server/profile_store.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/shard/sharded_profile_store.h"
#include "test_util.h"

namespace cqp::server {
namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kProfileText =
    "doi(GENRE.genre = 'musical') = 0.5\n"
    "doi(MOVIE.mid = GENRE.mid) = 0.9\n"
    "doi(DIRECTOR.name = 'W. Allen') = 0.8\n"
    "doi(MOVIE.did = DIRECTOR.did) = 1.0\n"
    "doi(MOVIE.year > 1990) = 0.6\n";

constexpr const char* kQuery = "SELECT title FROM MOVIE";

/// RAII temp directory for the sharded tier.
class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/cqp_soak_test.XXXXXX";
    path_ = ::mkdtemp(buf);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

int EnvSeconds() {
  const char* raw = std::getenv("CQP_SOAK_SECONDS");
  if (raw == nullptr) return 6;
  int parsed = std::atoi(raw);
  return parsed > 0 ? parsed : 6;
}

size_t EnvConns() {
  const char* raw = std::getenv("CQP_SOAK_CONNS");
  if (raw == nullptr) return 1000;
  long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<size_t>(parsed) : 1000;
}

/// One multiplexed soak connection: nonblocking fd, an outbox awaiting
/// POLLOUT, an inbox split on '\n', and the send/receive sequence counters
/// whose equality at drain time is the zero-lost/zero-dup invariant.
struct SoakConn {
  int fd = -1;
  std::string outbox;
  std::string inbox;
  uint64_t sent = 0;
  uint64_t received = 0;
  bool personalizer = false;
  bool saw_eof = false;
};

class SoakTest : public ::testing::Test {
 protected:
  SoakTest() : db_(::cqp::testing::MakeTinyMovieDb()) {}

  void TearDown() override {
    for (SoakConn& conn : conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    if (server_ != nullptr) server_->Stop();
  }

  storage::Database db_;
  std::unique_ptr<shard::ShardedProfileStore> profiles_;
  std::unique_ptr<Server> server_;
  std::vector<SoakConn> conns_;
};

TEST_F(SoakTest, ThousandConnectionsMixedHotColdZeroLostZeroDup) {
  // --- the paged-out tier: a budget far below 64 resident graphs.
  TempDir dir;
  shard::ShardedStoreOptions store_options;
  store_options.dir = dir.path();
  store_options.num_shards = 4;
  store_options.resident_budget_bytes = 64 << 10;  // forces eviction churn
  auto opened = shard::ShardedProfileStore::Open(&db_, store_options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  profiles_ = *std::move(opened);

  prefs::Profile profile = *prefs::Profile::Parse(kProfileText);
  std::vector<std::string> hot_ids, cold_ids;
  for (int i = 0; i < 4; ++i) {
    hot_ids.push_back("hot-" + std::to_string(i));
    ASSERT_TRUE(profiles_->Put(hot_ids.back(), profile).ok());
  }
  for (int i = 0; i < 60; ++i) {
    cold_ids.push_back("cold-" + std::to_string(i));
    ASSERT_TRUE(profiles_->Put(cold_ids.back(), profile).ok());
  }

  // --- the server under soak: two loops, a sliced admission budget wide
  // enough that shedding is the exception, not the norm.
  ServerOptions options;
  options.port = 0;
  options.io_threads = 2;
  options.num_threads = 2;
  options.admission.max_pending = 512;
  options.admission.soft_pending = 384;
  server_ = std::make_unique<Server>(&db_, profiles_.get(), options);
  ASSERT_TRUE(server_->Start().ok());

  // --- connect the fleet (blocking connect, then nonblocking I/O).
  const size_t kConns = EnvConns();
  conns_.resize(kConns);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  for (size_t i = 0; i < kConns; ++i) {
    SoakConn& conn = conns_[i];
    conn.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(conn.fd, 0);
    int one = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ASSERT_EQ(
        ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << "connect #" << i << ": " << std::strerror(errno);
    ASSERT_TRUE(SetNonBlocking(conn.fd, true));
    // Every 16th connection drives personalize; the rest ping. That keeps
    // ~60 personalize streams alive against 2 workers without starving
    // the ping latency floor.
    conn.personalizer = (i % 16 == 0);
  }

  uint64_t cold_cursor = 0;
  uint64_t personalize_ok = 0;
  auto enqueue_next = [&](size_t index) {
    SoakConn& conn = conns_[index];
    WireRequest request;
    request.id = "c" + std::to_string(index) + "-" + std::to_string(conn.sent);
    if (conn.personalizer) {
      request.op = RequestOp::kPersonalize;
      request.personalize.sql = kQuery;
      // Three hot hits, then one cold id round-robin: the cold set is
      // larger than the residency budget, so these personalizes force
      // page-ins and evictions while the hot set stays warm.
      if (conn.sent % 4 == 3) {
        request.personalize.profile_id = cold_ids[cold_cursor++ % cold_ids.size()];
      } else {
        request.personalize.profile_id = hot_ids[index % hot_ids.size()];
      }
    } else {
      request.op = RequestOp::kPing;
    }
    conn.outbox += SerializeRequest(request) + "\n";
    ++conn.sent;
  };

  // Prime one outstanding request per connection.
  for (size_t i = 0; i < kConns; ++i) enqueue_next(i);

  const Clock::time_point deadline =
      Clock::now() + std::chrono::seconds(EnvSeconds());
  const Clock::time_point drain_deadline =
      deadline + std::chrono::seconds(60);

  std::vector<pollfd> pfds(kConns);
  bool all_drained = false;
  while (!all_drained) {
    const bool sending = Clock::now() < deadline;
    if (!sending && Clock::now() > drain_deadline) break;

    all_drained = true;
    for (size_t i = 0; i < kConns; ++i) {
      pfds[i].fd = conns_[i].fd;
      pfds[i].events = static_cast<short>(
          POLLIN | (conns_[i].outbox.empty() ? 0 : POLLOUT));
      pfds[i].revents = 0;
      if (conns_[i].received < conns_[i].sent) all_drained = false;
    }
    if (all_drained && !sending) break;
    all_drained = false;

    int ready = ::poll(pfds.data(), pfds.size(), 100);
    ASSERT_GE(ready, 0) << std::strerror(errno);
    if (ready == 0) continue;

    for (size_t i = 0; i < kConns; ++i) {
      SoakConn& conn = conns_[i];
      if (pfds[i].revents == 0) continue;

      if ((pfds[i].revents & POLLOUT) != 0 && !conn.outbox.empty()) {
        ssize_t n = ::send(conn.fd, conn.outbox.data(), conn.outbox.size(),
                           MSG_NOSIGNAL);
        if (n > 0) conn.outbox.erase(0, static_cast<size_t>(n));
        ASSERT_FALSE(n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
            << "send on conn " << i << ": " << std::strerror(errno);
      }

      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        char chunk[16384];
        ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (n == 0) {
          conn.saw_eof = true;
          FAIL() << "server closed conn " << i << " mid-soak (sent "
                 << conn.sent << ", received " << conn.received << ")";
        }
        if (n < 0) {
          ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK)
              << "recv on conn " << i << ": " << std::strerror(errno);
          continue;
        }
        conn.inbox.append(chunk, static_cast<size_t>(n));
        size_t nl;
        while ((nl = conn.inbox.find('\n')) != std::string::npos) {
          std::string line = conn.inbox.substr(0, nl);
          conn.inbox.erase(0, nl + 1);
          auto response = ParseResponse(line);
          ASSERT_TRUE(response.ok()) << response.status().message();
          // In-order, exactly-once: the id must be the one this
          // connection is waiting for. A lost response stalls the
          // sequence (caught at drain); a duplicate or reordered one
          // fails right here.
          const std::string expected =
              "c" + std::to_string(i) + "-" + std::to_string(conn.received);
          ASSERT_EQ(response->id, expected)
              << "conn " << i << " expected seq " << conn.received;
          if (conn.personalizer && response->status.ok()) ++personalize_ok;
          ++conn.received;
          if (Clock::now() < deadline) enqueue_next(i);
        }
      }
    }
  }

  // --- the invariant: every request answered exactly once.
  uint64_t total_sent = 0, total_received = 0;
  for (size_t i = 0; i < kConns; ++i) {
    EXPECT_FALSE(conns_[i].saw_eof) << "conn " << i;
    EXPECT_EQ(conns_[i].received, conns_[i].sent)
        << "conn " << i << " lost " << (conns_[i].sent - conns_[i].received)
        << " responses";
    total_sent += conns_[i].sent;
    total_received += conns_[i].received;
  }
  ASSERT_EQ(total_received, total_sent);
  ASSERT_GE(total_received, kConns);  // at least the primed round completed
  EXPECT_GE(personalize_ok, 1u);

  // The cold set really did churn through the paging tier.
  auto tier = profiles_->shard_stats();
  ASSERT_TRUE(tier.has_value());
  EXPECT_GE(tier->page_ins, 1u);
  EXPECT_GE(tier->evictions, 1u);
}

}  // namespace
}  // namespace cqp::server
