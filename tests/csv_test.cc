#include <gtest/gtest.h>

#include <cstdio>

#include "storage/csv.h"
#include "test_util.h"

namespace cqp::storage {
namespace {

using catalog::AttributeDef;
using catalog::RelationDef;
using catalog::Value;
using catalog::ValueType;

RelationDef PeopleSchema() {
  return RelationDef("PEOPLE", {AttributeDef{"id", ValueType::kInt},
                                AttributeDef{"name", ValueType::kString},
                                AttributeDef{"score", ValueType::kDouble}});
}

TEST(CsvTest, RoundTrip) {
  Database db;
  Table* t = *db.CreateTable(PeopleSchema());
  ASSERT_TRUE(
      t->Insert(Tuple({Value(int64_t{1}), Value("Ada"), Value(9.5)})).ok());
  ASSERT_TRUE(
      t->Insert(Tuple({Value(int64_t{2}), Value("Bob"), Value(7.25)})).ok());

  std::string csv = TableToCsv(*t);
  Database db2;
  Table* loaded = *LoadCsvTable(&db2, PeopleSchema(), csv);
  ASSERT_EQ(loaded->row_count(), 2u);
  EXPECT_EQ(loaded->rows()[0].at(1).AsString(), "Ada");
  EXPECT_DOUBLE_EQ(loaded->rows()[1].at(2).AsDouble(), 7.25);
}

TEST(CsvTest, QuotingRoundTrip) {
  Database db;
  Table* t = *db.CreateTable(PeopleSchema());
  ASSERT_TRUE(t->Insert(Tuple({Value(int64_t{1}), Value("O'Hara, \"Kit\""),
                               Value(1.0)}))
                  .ok());
  std::string csv = TableToCsv(*t);
  EXPECT_NE(csv.find("\"O'Hara, \"\"Kit\"\"\""), std::string::npos);
  Database db2;
  Table* loaded = *LoadCsvTable(&db2, PeopleSchema(), csv);
  EXPECT_EQ(loaded->rows()[0].at(1).AsString(), "O'Hara, \"Kit\"");
}

TEST(CsvTest, HeaderIsCaseInsensitive) {
  Database db;
  auto loaded = LoadCsvTable(&db, PeopleSchema(),
                             "ID,Name,SCORE\n3,Cyd,1.5\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->row_count(), 1u);
}

TEST(CsvTest, RejectsWrongHeader) {
  Database db;
  EXPECT_FALSE(LoadCsvTable(&db, PeopleSchema(),
                            "id,fullname,score\n1,A,1.0\n")
                   .ok());
  Database db2;
  EXPECT_FALSE(LoadCsvTable(&db2, PeopleSchema(), "id,name\n1,A\n").ok());
  Database db3;
  EXPECT_FALSE(LoadCsvTable(&db3, PeopleSchema(), "").ok());
}

TEST(CsvTest, RejectsBadCells) {
  Database db;
  EXPECT_FALSE(
      LoadCsvTable(&db, PeopleSchema(), "id,name,score\nx,A,1.0\n").ok());
  Database db2;
  EXPECT_FALSE(
      LoadCsvTable(&db2, PeopleSchema(), "id,name,score\n1,A,notnum\n").ok());
  Database db3;
  EXPECT_FALSE(
      LoadCsvTable(&db3, PeopleSchema(), "id,name,score\n1,A\n").ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  Database db;
  EXPECT_FALSE(
      LoadCsvTable(&db, PeopleSchema(), "id,name,score\n1,\"oops,1.0\n").ok());
}

TEST(CsvTest, SkipsBlankLinesAndToleratesCrlf) {
  Database db;
  auto loaded = LoadCsvTable(&db, PeopleSchema(),
                             "id,name,score\r\n1,A,1.0\r\n\n2,B,2.0\n\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->row_count(), 2u);
}

TEST(CsvTest, FileRoundTrip) {
  Database db;
  Table* t = *db.CreateTable(PeopleSchema());
  ASSERT_TRUE(
      t->Insert(Tuple({Value(int64_t{7}), Value("Eve"), Value(3.5)})).ok());
  std::string path = ::testing::TempDir() + "/cqp_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*t, path).ok());
  Database db2;
  auto loaded = LoadCsvFile(&db2, PeopleSchema(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->row_count(), 1u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  Database db;
  auto loaded = LoadCsvFile(&db, PeopleSchema(), "/nonexistent/x.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, LoadedTableIsQueryable) {
  Database db;
  ASSERT_TRUE(LoadCsvTable(&db, PeopleSchema(),
                           "id,name,score\n1,A,1.0\n2,B,2.0\n3,C,3.0\n")
                  .ok());
  db.Analyze();
  EXPECT_TRUE(db.GetStats("PEOPLE").ok());
  EXPECT_EQ((*db.GetStats("PEOPLE"))->row_count, 3u);
}

}  // namespace
}  // namespace cqp::storage
