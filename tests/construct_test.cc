#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/budget.h"
#include "common/failpoint.h"
#include "construct/personalizer.h"
#include "estimation/eval_cache.h"
#include "construct/query_builder.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "test_util.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"

namespace cqp::construct {
namespace {

using catalog::CompareOp;
using catalog::Value;
using prefs::AtomicJoin;
using prefs::AtomicSelection;
using prefs::ImplicitPreference;
using sql::ParseSelect;

class QueryBuilderTest : public ::testing::Test {
 protected:
  QueryBuilderTest() : db_(::cqp::testing::MakeTinyMovieDb()) {}

  ImplicitPreference AllenPref() {
    ImplicitPreference p;
    p.joins = {AtomicJoin{"MOVIE", "did", "DIRECTOR", "did", 1.0}};
    p.selection = AtomicSelection{"DIRECTOR", "name", CompareOp::kEq,
                                  Value("W. Allen"), 0.8};
    p.doi = 0.8;
    return p;
  }

  ImplicitPreference MusicalPref() {
    ImplicitPreference p;
    p.joins = {AtomicJoin{"MOVIE", "mid", "GENRE", "mid", 0.9}};
    p.selection = AtomicSelection{"GENRE", "genre", CompareOp::kEq,
                                  Value("musical"), 0.5};
    p.doi = 0.45;
    return p;
  }

  ImplicitPreference YearPref() {
    ImplicitPreference p;
    p.selection = AtomicSelection{"MOVIE", "year", CompareOp::kGe,
                                  Value(int64_t{1970}), 0.6};
    p.doi = 0.6;
    return p;
  }

  storage::Database db_;
};

TEST_F(QueryBuilderTest, CanonicalizeQualifiesColumns) {
  auto base = *ParseSelect("SELECT title FROM MOVIE");
  auto canon = *CanonicalizeSelectList(db_, base);
  ASSERT_EQ(canon.select_list.size(), 1u);
  EXPECT_EQ(canon.select_list[0].qualifier, "MOVIE");
}

TEST_F(QueryBuilderTest, CanonicalizeExpandsStar) {
  auto base = *ParseSelect("SELECT * FROM DIRECTOR");
  auto canon = *CanonicalizeSelectList(db_, base);
  ASSERT_EQ(canon.select_list.size(), 2u);
  EXPECT_EQ(canon.select_list[0].attribute, "did");
  EXPECT_EQ(canon.select_list[1].attribute, "name");
}

TEST_F(QueryBuilderTest, CanonicalizeRejectsUnknownColumn) {
  auto base = *ParseSelect("SELECT rating FROM MOVIE");
  EXPECT_FALSE(CanonicalizeSelectList(db_, base).ok());
}

TEST_F(QueryBuilderTest, SubQueryAddsPathRelations) {
  auto base = *ParseSelect("SELECT title FROM MOVIE");
  auto sub = *BuildSubQuery(db_, base, AllenPref(), 1);
  ASSERT_EQ(sub.from.size(), 2u);
  EXPECT_EQ(sub.from[1].relation, "DIRECTOR");
  EXPECT_EQ(sub.from[1].alias, "p1_director");
  ASSERT_EQ(sub.where.size(), 2u);
  EXPECT_EQ(sub.where[0].kind, sql::Predicate::Kind::kJoin);
  EXPECT_EQ(sub.where[1].kind, sql::Predicate::Kind::kSelection);
  EXPECT_EQ(sub.where[1].literal.AsString(), "W. Allen");
}

TEST_F(QueryBuilderTest, SubQueryKeepsBaseConditions) {
  auto base = *ParseSelect("SELECT title FROM MOVIE WHERE MOVIE.year >= 1960");
  auto sub = *BuildSubQuery(db_, base, MusicalPref(), 2);
  // original selection + join + preference selection
  EXPECT_EQ(sub.where.size(), 3u);
  EXPECT_EQ(sub.from[1].alias, "p2_genre");
}

TEST_F(QueryBuilderTest, SubQueryFailsWhenAnchorMissing) {
  auto base = *ParseSelect("SELECT name FROM DIRECTOR");
  EXPECT_FALSE(BuildSubQuery(db_, base, MusicalPref(), 1).ok());
}

TEST_F(QueryBuilderTest, SubQueryIsExecutable) {
  exec::Executor executor(&db_);
  auto base = *ParseSelect("SELECT title FROM MOVIE");
  auto sub = *BuildSubQuery(db_, base, AllenPref(), 1);
  auto rows = executor.Execute(sub, nullptr);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->row_count(), 2u);  // two Allen movies
}

TEST_F(QueryBuilderTest, PersonalizedQueryMatchesPaperExample) {
  // §4.2: query on movies + Allen preference + musical preference.
  auto base = *ParseSelect("SELECT title FROM MOVIE");
  std::vector<estimation::ScoredPreference> prefs(2);
  prefs[0].pref = AllenPref();
  prefs[0].doi = 0.8;
  prefs[1].pref = MusicalPref();
  prefs[1].doi = 0.45;

  auto pq = *BuildPersonalizedQuery(db_, base, prefs, IndexSet{0, 1});
  EXPECT_EQ(pq.L(), 2u);
  std::string sql = pq.ToSql();
  EXPECT_NE(sql.find("UNION ALL"), std::string::npos);
  EXPECT_NE(sql.find("HAVING COUNT(*) = 2"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY title"), std::string::npos);
}

TEST_F(QueryBuilderTest, EmptyChoiceYieldsOriginalQuery) {
  auto base = *ParseSelect("SELECT title FROM MOVIE");
  std::vector<estimation::ScoredPreference> prefs;
  auto pq = *BuildPersonalizedQuery(db_, base, prefs, IndexSet());
  EXPECT_EQ(pq.L(), 0u);
  EXPECT_NE(pq.ToSql().find("SELECT"), std::string::npos);
  EXPECT_EQ(pq.ToSql().find("UNION"), std::string::npos);
}

TEST_F(QueryBuilderTest, MergeCompatibleCollapsesJoinFreePrefs) {
  auto base = *ParseSelect("SELECT title FROM MOVIE");
  std::vector<estimation::ScoredPreference> prefs(3);
  prefs[0].pref = YearPref();
  prefs[0].doi = 0.6;
  prefs[1].pref.selection = AtomicSelection{
      "MOVIE", "duration", CompareOp::kLe, Value(int64_t{130}), 0.3};
  prefs[1].doi = 0.3;
  prefs[2].pref = AllenPref();
  prefs[2].doi = 0.8;

  BuildOptions options;
  options.merge_compatible = true;
  auto pq = *BuildPersonalizedQuery(db_, base, prefs, IndexSet{0, 1, 2},
                                    options);
  // Allen stays alone; the two MOVIE selections merge.
  EXPECT_EQ(pq.L(), 2u);
  // Merged group doi combines both constituents.
  bool found_merged = false;
  for (size_t i = 0; i < pq.L(); ++i) {
    if (pq.subquery_prefs[i].size() == 2) {
      found_merged = true;
      EXPECT_NEAR(pq.dois[i], 1.0 - 0.4 * 0.7, 1e-12);
    }
  }
  EXPECT_TRUE(found_merged);
}

TEST_F(QueryBuilderTest, MergedExecutionEqualsUnmerged) {
  exec::Executor executor(&db_);
  auto base = *ParseSelect("SELECT title FROM MOVIE");
  std::vector<estimation::ScoredPreference> prefs(2);
  prefs[0].pref = YearPref();
  prefs[0].doi = 0.6;
  prefs[1].pref.selection = AtomicSelection{
      "MOVIE", "duration", CompareOp::kLe, Value(int64_t{130}), 0.3};
  prefs[1].doi = 0.3;

  auto plain = *BuildPersonalizedQuery(db_, base, prefs, IndexSet{0, 1});
  BuildOptions merged_opts;
  merged_opts.merge_compatible = true;
  auto merged =
      *BuildPersonalizedQuery(db_, base, prefs, IndexSet{0, 1}, merged_opts);

  auto run = [&](const PersonalizedQuery& pq) {
    auto result = *exec::ExecutePersonalized(
        executor, pq.subqueries, pq.dois, exec::CombineMode::kIntersection,
        nullptr);
    std::set<std::string> titles;
    for (const auto& row : result.rows) {
      titles.insert(row.row.at(0).AsString());
    }
    return titles;
  };
  EXPECT_EQ(run(plain), run(merged));
  EXPECT_EQ(merged.L(), 1u);
  EXPECT_EQ(plain.L(), 2u);
}

TEST_F(QueryBuilderTest, PersonalizedSqlRoundTripsThroughTheEngine) {
  // The printed SQL must parse back and execute to exactly the same rows
  // as the structured personalized execution.
  exec::Executor executor(&db_);
  auto base = *ParseSelect("SELECT title FROM MOVIE");
  std::vector<estimation::ScoredPreference> prefs(3);
  prefs[0].pref = AllenPref();
  prefs[0].doi = 0.8;
  prefs[1].pref = MusicalPref();
  prefs[1].doi = 0.45;
  prefs[2].pref = YearPref();
  prefs[2].doi = 0.6;

  for (const IndexSet& chosen :
       {IndexSet{0}, IndexSet{0, 1}, IndexSet{0, 2}, IndexSet{0, 1, 2}}) {
    auto pq = *BuildPersonalizedQuery(db_, base, prefs, chosen);

    // Structured execution.
    auto structured = *exec::ExecutePersonalized(
        executor, pq.subqueries, pq.dois, exec::CombineMode::kIntersection,
        nullptr);
    std::multiset<std::string> structured_rows;
    for (const auto& row : structured.rows) {
      structured_rows.insert(row.row.ToString());
    }

    // Text → parse → ExecuteUnionGroup.
    std::string sql_text = pq.ToSql();
    auto parsed = sql::ParseUnionGroup(sql_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n"
                             << sql_text;
    EXPECT_EQ(parsed->branches.size(), pq.L());
    auto executed = executor.ExecuteUnionGroup(*parsed, nullptr);
    ASSERT_TRUE(executed.ok()) << executed.status().ToString();
    std::multiset<std::string> sql_rows;
    for (const auto& row : executed->rows()) sql_rows.insert(row.ToString());

    EXPECT_EQ(sql_rows, structured_rows) << sql_text;
  }
}

// ---------- Personalizer facade ----------

class PersonalizerTest : public ::testing::Test {
 protected:
  PersonalizerTest() : db_(::cqp::testing::MakeTinyMovieDb()) {
    auto profile = *prefs::Profile::Parse(R"(
        doi(GENRE.genre = 'musical') = 0.5
        doi(GENRE.genre = 'comedy') = 0.4
        doi(MOVIE.mid = GENRE.mid) = 0.9
        doi(MOVIE.did = DIRECTOR.did) = 1.0
        doi(DIRECTOR.name = 'W. Allen') = 0.8
        doi(MOVIE.year >= 1970) = 0.6
    )");
    graph_ = std::make_unique<prefs::PersonalizationGraph>(
        *prefs::PersonalizationGraph::Build(std::move(profile), db_));
  }

  storage::Database db_;
  std::unique_ptr<prefs::PersonalizationGraph> graph_;
};

TEST_F(PersonalizerTest, EndToEndProblem2) {
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(1e9);
  request.algorithm = "C-Boundaries";
  auto result = personalizer.Personalize(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->solution.feasible);
  EXPECT_GT(result->solution.chosen.size(), 0u);
  EXPECT_GT(result->space->K(), 0u);
  EXPECT_NE(result->final_sql.find("SELECT"), std::string::npos);

  exec::ExecStats stats;
  auto rows = personalizer.Execute(*result, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GT(stats.blocks_read, 0u);
}

TEST_F(PersonalizerTest, InfeasibleFallsBackToOriginalQuery) {
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(1e-6);  // below cost(Q)
  auto result = personalizer.Personalize(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->solution.feasible);
  EXPECT_EQ(result->personalized.L(), 0u);
  exec::ExecStats stats;
  auto rows = personalizer.Execute(*result, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 6u);  // all movies, doi 0
}

TEST_F(PersonalizerTest, RejectsUnsupportedAlgorithmProblemPair) {
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem4(0.5);
  request.algorithm = "C-Boundaries";
  EXPECT_FALSE(personalizer.Personalize(request).ok());
}

TEST_F(PersonalizerTest, RejectsUnknownAlgorithm) {
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(1000);
  request.algorithm = "Quantum";
  EXPECT_FALSE(personalizer.Personalize(request).ok());
}

TEST_F(PersonalizerTest, RejectsBadSql) {
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request;
  request.sql = "SELEC title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(1000);
  EXPECT_FALSE(personalizer.Personalize(request).ok());
}

TEST_F(PersonalizerTest, AutoPicksExactSolverPerObjective) {
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.algorithm = "auto";
  request.problem = cqp::ProblemSpec::Problem2(1e9);
  auto max_doi = personalizer.Personalize(request);
  ASSERT_TRUE(max_doi.ok()) << max_doi.status().ToString();
  EXPECT_TRUE(max_doi->solution.feasible);

  request.problem = cqp::ProblemSpec::Problem4(0.5);
  auto min_cost = personalizer.Personalize(request);
  ASSERT_TRUE(min_cost.ok()) << min_cost.status().ToString();
  EXPECT_TRUE(min_cost->solution.feasible);
  EXPECT_GE(min_cost->solution.params.doi, 0.5);
}

TEST_F(PersonalizerTest, BaseLimitCapsRankedDelivery) {
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE LIMIT 1";
  request.problem = cqp::ProblemSpec::Problem2(1e9);
  request.algorithm = "C-Boundaries";
  auto result = *personalizer.Personalize(request);
  ASSERT_TRUE(result.solution.feasible);
  // Sub-queries must not inherit the LIMIT (it would break intersection).
  for (const auto& sub : result.personalized.subqueries) {
    EXPECT_FALSE(sub.limit.has_value());
  }
  exec::ExecStats stats;
  auto rows = *personalizer.Execute(result, &stats);
  EXPECT_LE(rows.rows.size(), 1u);
}

TEST_F(PersonalizerTest, ExecutedRowsSatisfyChosenPreferences) {
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(1e9);
  auto result = *personalizer.Personalize(request);
  ASSERT_TRUE(result.solution.feasible);

  exec::ExecStats stats;
  auto rows = *personalizer.Execute(result, &stats);
  // Every returned row satisfies every sub-query (intersection semantics).
  for (const auto& row : rows.rows) {
    EXPECT_EQ(row.satisfied.size(), result.personalized.L());
  }
}

// ---------- batch personalization ----------

TEST_F(PersonalizerTest, BatchMatchesSequentialBitForBit) {
  Personalizer personalizer(&db_, graph_.get());
  // A mixed batch: two distinct problems so slots cannot be confused.
  std::vector<PersonalizeRequest> requests(8);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].sql = "SELECT title FROM MOVIE";
    requests[i].problem = (i % 2 == 0) ? cqp::ProblemSpec::Problem2(1e9)
                                       : cqp::ProblemSpec::Problem2(1e-6);
    requests[i].algorithm = "C-Boundaries";
  }

  BatchOptions options;
  options.num_threads = 4;
  BatchResult batch = personalizer.PersonalizeBatch(requests, options);
  ASSERT_EQ(batch.results.size(), requests.size());
  ASSERT_EQ(batch.latencies_ms.size(), requests.size());
  EXPECT_EQ(batch.ok_count(), requests.size());
  EXPECT_GT(batch.states_examined, 0u);
  EXPECT_GE(batch.wall_ms, 0.0);

  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batch.results[i].ok()) << i;
    auto want = personalizer.Personalize(requests[i]);
    ASSERT_TRUE(want.ok()) << i;
    const PersonalizeResult& got = *batch.results[i];
    EXPECT_EQ(got.solution.feasible, want->solution.feasible) << i;
    EXPECT_EQ(got.solution.chosen, want->solution.chosen) << i;
    EXPECT_EQ(got.solution.params.doi, want->solution.params.doi) << i;
    EXPECT_EQ(got.solution.params.cost_ms, want->solution.params.cost_ms)
        << i;
    EXPECT_EQ(got.solution.params.size, want->solution.params.size) << i;
    EXPECT_EQ(got.final_sql, want->final_sql) << i;
    EXPECT_EQ(got.rung, want->rung) << i;
  }
}

TEST_F(PersonalizerTest, BatchSharedCacheReportsHitsWithoutChangingAnswers) {
  Personalizer personalizer(&db_, graph_.get());
  auto sequential_want = [&] {
    PersonalizeRequest request;
    request.sql = "SELECT title FROM MOVIE";
    request.problem = cqp::ProblemSpec::Problem2(1e9);
    request.algorithm = "C-Boundaries";
    return *personalizer.Personalize(request);
  }();

  // All requests share one (query, profile), so sharing one memo is legal.
  estimation::EvalCache cache;
  std::vector<PersonalizeRequest> requests(6);
  for (auto& request : requests) {
    request.sql = "SELECT title FROM MOVIE";
    request.problem = cqp::ProblemSpec::Problem2(1e9);
    request.algorithm = "C-Boundaries";
    request.eval_cache = &cache;
  }
  BatchOptions options;
  options.num_threads = 3;
  BatchResult batch = personalizer.PersonalizeBatch(requests, options);
  EXPECT_EQ(batch.ok_count(), requests.size());
  EXPECT_GT(batch.eval_cache_hits + batch.eval_cache_misses, 0u);
  EXPECT_GT(batch.eval_cache_hits, 0u);  // repeats must hit the shared memo
  for (const auto& result : batch.results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->solution.chosen, sequential_want.solution.chosen);
    EXPECT_EQ(result->solution.params.doi, sequential_want.solution.params.doi);
    EXPECT_EQ(result->solution.params.cost_ms,
              sequential_want.solution.params.cost_ms);
  }
}

TEST_F(PersonalizerTest, PreCancelledBatchAnswersEveryRequestViaLadder) {
  // A CancelToken cancelled before the batch starts exhausts the primary
  // rung instantly; every request must still come back OK (degraded) with
  // an executable query — never a torn or missing result.
  ::cqp::CancelToken cancel;
  cancel.Cancel();
  Personalizer personalizer(&db_, graph_.get());
  std::vector<PersonalizeRequest> requests(8);
  for (auto& request : requests) {
    request.sql = "SELECT title FROM MOVIE";
    request.problem = cqp::ProblemSpec::Problem2(1e9);
    request.algorithm = "C-Boundaries";
    request.budget.cancel = &cancel;
  }
  BatchOptions options;
  options.num_threads = 4;
  BatchResult batch = personalizer.PersonalizeBatch(requests, options);
  ASSERT_EQ(batch.results.size(), requests.size());
  EXPECT_EQ(batch.ok_count(), requests.size());
  EXPECT_EQ(batch.degraded, requests.size());
  for (const auto& result : batch.results) {
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->degraded());
    EXPECT_NE(result->final_sql.find("SELECT"), std::string::npos);
    // The answer is internally consistent: whatever rung answered, the
    // chosen set and the printed SQL agree on the number of sub-queries.
    EXPECT_EQ(result->personalized.L(), result->solution.feasible
                                            ? result->personalized.L()
                                            : 0u);
  }
}

TEST_F(PersonalizerTest, EmptyBatchIsANoOp) {
  Personalizer personalizer(&db_, graph_.get());
  BatchResult batch = personalizer.PersonalizeBatch({});
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.ok_count(), 0u);
  EXPECT_EQ(batch.degraded, 0u);
}

// ---------- degradation ladder ----------

/// Keeps every ladder test hermetic: no armed failpoint leaks in or out.
class FallbackTest : public PersonalizerTest {
 protected:
  void SetUp() override { failpoint::Reset(); }
  void TearDown() override {
    failpoint::Reset();
    unsetenv("CQP_FAILPOINTS");
  }

  PersonalizeRequest LooseDoiRequest() const {
    PersonalizeRequest request;
    request.sql = "SELECT title FROM MOVIE";
    request.problem = cqp::ProblemSpec::Problem2(1e9);
    request.algorithm = "C-Boundaries";
    return request;
  }
};

TEST_F(FallbackTest, HealthyRequestAnswersOnPrimaryRung) {
  Personalizer personalizer(&db_, graph_.get());
  auto result = personalizer.Personalize(LooseDoiRequest());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rung, FallbackRung::kPrimary);
  EXPECT_FALSE(result->degraded());
  ASSERT_EQ(result->attempts.size(), 1u);
  EXPECT_NE(result->attempts[0].find("C-Boundaries"), std::string::npos);
}

TEST_F(FallbackTest, SolverFaultDescendsToHeuristicRung) {
  ASSERT_TRUE(failpoint::Configure("cqp.solve=1.0:1").ok());
  Personalizer personalizer(&db_, graph_.get());
  auto result = personalizer.Personalize(LooseDoiRequest());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rung, FallbackRung::kHeuristic);
  EXPECT_TRUE(result->degraded());
  EXPECT_TRUE(result->solution.feasible);
  EXPECT_TRUE(result->solution.degraded);
  ASSERT_GE(result->attempts.size(), 2u);
  EXPECT_NE(result->attempts[0].find("injected fault"), std::string::npos);
  EXPECT_NE(result->attempts[1].find("D-HeurDoi"), std::string::npos);
}

TEST_F(FallbackTest, UnavailableHeuristicDescendsToTopK) {
  ASSERT_TRUE(failpoint::Configure("cqp.solve=1.0:1").ok());
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request = LooseDoiRequest();
  // A heuristic naming the primary algorithm is skipped, forcing rung 3.
  request.fallback.heuristic = "C-Boundaries";
  auto result = personalizer.Personalize(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rung, FallbackRung::kTopK);
  EXPECT_TRUE(result->degraded());
  EXPECT_TRUE(result->solution.feasible);
  ASSERT_GE(result->attempts.size(), 3u);
  EXPECT_NE(result->attempts[1].find("skipped"), std::string::npos);
}

TEST_F(FallbackTest, EveryRungExhaustedLandsOnOriginalQuery) {
  // Rung 1 faulted, rung 2 skipped, rung 3 infeasible (cmax below cost(Q)
  // rules out every non-empty prefix): the ladder bottoms out.
  ASSERT_TRUE(failpoint::Configure("cqp.solve=1.0:1").ok());
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request = LooseDoiRequest();
  request.problem = cqp::ProblemSpec::Problem2(1e-6);
  request.fallback.heuristic = "C-Boundaries";
  auto result = personalizer.Personalize(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rung, FallbackRung::kOriginal);
  EXPECT_TRUE(result->degraded());
  EXPECT_FALSE(result->solution.feasible);
  ASSERT_EQ(result->attempts.size(), 4u);
  EXPECT_NE(result->attempts[3].find("original"), std::string::npos);

  // The unpersonalized query still executes.
  exec::ExecStats stats;
  auto rows = personalizer.Execute(*result, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 6u);
}

TEST_F(FallbackTest, ExtractionFaultFromEnvFallsToOriginal) {
  // The acceptance scenario: CQP_FAILPOINTS=space.extract=1.0:42 in the
  // environment must degrade to the original query, not fail.
  setenv("CQP_FAILPOINTS", "space.extract=1.0:42", 1);
  ASSERT_TRUE(failpoint::ReloadFromEnv().ok());
  Personalizer personalizer(&db_, graph_.get());
  auto result = personalizer.Personalize(LooseDoiRequest());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rung, FallbackRung::kOriginal);
  EXPECT_TRUE(result->degraded());
  EXPECT_FALSE(result->solution.feasible);
  ASSERT_GE(result->attempts.size(), 1u);
  EXPECT_NE(result->attempts[0].find("extract"), std::string::npos);
  EXPECT_NE(result->final_sql.find("SELECT"), std::string::npos);
}

TEST_F(FallbackTest, DisabledFallbackPropagatesInjectedFault) {
  ASSERT_TRUE(failpoint::Configure("space.extract=1.0:1").ok());
  Personalizer personalizer(&db_, graph_.get());
  PersonalizeRequest request = LooseDoiRequest();
  request.fallback.enabled = false;
  auto result = personalizer.Personalize(request);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(FallbackTest, FaultedRetryIsDeterministic) {
  ASSERT_TRUE(failpoint::Configure("cqp.solve=1.0:9").ok());
  Personalizer personalizer(&db_, graph_.get());
  auto a = personalizer.Personalize(LooseDoiRequest());
  ASSERT_TRUE(failpoint::Configure("cqp.solve=1.0:9").ok());
  auto b = personalizer.Personalize(LooseDoiRequest());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rung, b->rung);
  EXPECT_EQ(a->attempts, b->attempts);
  EXPECT_EQ(a->final_sql, b->final_sql);
}

TEST_F(FallbackTest, OneMillisecondDeadlineOnLargestProfileStillAnswers) {
  // The acceptance scenario: a realistic (workload-generated) database and
  // the largest profile the generator produces, personalized under a 1 ms
  // deadline, must come back OK and feasible — degraded is fine.
  workload::MovieDbConfig db_config;
  db_config.n_movies = 800;
  db_config.n_directors = 60;
  db_config.n_actors = 150;
  auto big_db = *workload::BuildMovieDatabase(db_config);

  workload::ProfileGenConfig profile_config;
  profile_config.n_genre_prefs = 24;
  profile_config.n_director_prefs = 30;
  profile_config.n_actor_prefs = 30;
  profile_config.n_year_prefs = 16;
  profile_config.n_duration_prefs = 12;
  auto profile = *workload::GenerateProfile(profile_config, db_config);
  auto graph = *prefs::PersonalizationGraph::Build(std::move(profile), big_db);

  Personalizer personalizer(&big_db, &graph);
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(1e9);
  request.algorithm = "C-Boundaries";
  request.budget = ::cqp::SearchBudget::AfterMillis(1.0);
  auto result = personalizer.Personalize(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->solution.feasible);
  // Either the primary finished inside 1 ms or the answer is flagged.
  if (result->rung != FallbackRung::kPrimary || result->solution.degraded) {
    EXPECT_TRUE(result->degraded());
  }
}

}  // namespace
}  // namespace cqp::construct
