#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/budget.h"
#include "common/failpoint.h"
#include "common/index_set.h"
#include "common/memory_meter.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace cqp {
namespace {

// ---------- Status / StatusOr ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Infeasible("x").code(), StatusCode::kInfeasible);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFound("nothing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MacroPropagatesError) {
  auto inner = []() -> StatusOr<int> { return NotFound("inner"); };
  auto outer = [&]() -> StatusOr<int> {
    CQP_ASSIGN_OR_RETURN(int x, inner());
    return x + 1;
  };
  StatusOr<int> got = outer();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().message(), "inner");
}

TEST(StatusOrTest, MacroAssignsValue) {
  auto inner = []() -> StatusOr<int> { return 41; };
  auto outer = [&]() -> StatusOr<int> {
    CQP_ASSIGN_OR_RETURN(int x, inner());
    return x + 1;
  };
  StatusOr<int> got = outer();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 42);
}

// ---------- IndexSet ----------

TEST(IndexSetTest, BasicMembership) {
  IndexSet s{0, 2, 5};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.Min(), 0);
  EXPECT_EQ(s.Max(), 5);
  EXPECT_EQ(s.ToString(), "{0,2,5}");
}

TEST(IndexSetTest, FromUnsortedSortsAndDedupes) {
  IndexSet s = IndexSet::FromUnsorted({5, 1, 3, 1, 5});
  EXPECT_EQ(s.ToString(), "{1,3,5}");
}

TEST(IndexSetTest, WithAddedKeepsOrder) {
  IndexSet s{1, 4};
  EXPECT_EQ(s.WithAdded(2).ToString(), "{1,2,4}");
  EXPECT_EQ(s.WithAdded(0).ToString(), "{0,1,4}");
  EXPECT_EQ(s.WithAdded(9).ToString(), "{1,4,9}");
}

TEST(IndexSetTest, WithRemovedAndReplaced) {
  IndexSet s{1, 2, 4};
  EXPECT_EQ(s.WithRemoved(2).ToString(), "{1,4}");
  EXPECT_EQ(s.WithReplaced(2, 3).ToString(), "{1,3,4}");
}

TEST(IndexSetTest, PrefixTakesSmallest) {
  IndexSet s{1, 2, 4};
  EXPECT_EQ(s.Prefix(0).ToString(), "{}");
  EXPECT_EQ(s.Prefix(2).ToString(), "{1,2}");
}

TEST(IndexSetTest, SubsetOf) {
  IndexSet sub{1, 4};
  IndexSet super{0, 1, 4, 6};
  EXPECT_TRUE(sub.IsSubsetOf(super));
  EXPECT_FALSE(super.IsSubsetOf(sub));
  EXPECT_TRUE(IndexSet().IsSubsetOf(sub));
}

TEST(IndexSetTest, DominationIsComponentwise) {
  // {0,2} dominates {1,3}: 0<=1, 2<=3 — {1,3} is Vertical-reachable.
  EXPECT_TRUE((IndexSet{0, 2}).Dominates(IndexSet{1, 3}));
  EXPECT_TRUE((IndexSet{0, 2}).Dominates(IndexSet{0, 2}));
  // {0,3} vs {1,2}: 0<=1 but 3>2 — incomparable (the paper's two maximal
  // boundaries scenario).
  EXPECT_FALSE((IndexSet{0, 3}).Dominates(IndexSet{1, 2}));
  EXPECT_FALSE((IndexSet{1, 2}).Dominates(IndexSet{0, 3}));
  // Different group sizes never dominate.
  EXPECT_FALSE((IndexSet{0}).Dominates(IndexSet{0, 1}));
}

TEST(IndexSetTest, BitsMaskMatchesMembership) {
  IndexSet s{0, 2, 5, 63};
  uint64_t bits = s.Bits();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ((bits >> i) & 1, s.Contains(i) ? 1u : 0u) << i;
  }
  EXPECT_EQ(IndexSet().Bits(), 0u);
  // Subset test via masks agrees with IsSubsetOf.
  IndexSet sub{2, 5};
  EXPECT_EQ((sub.Bits() & ~s.Bits()), 0u);
  EXPECT_TRUE(sub.IsSubsetOf(s));
}

TEST(IndexSetTest, HashDistinguishesAndMatches) {
  IndexSet a{1, 2};
  IndexSet b = IndexSet::FromUnsorted({2, 1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, IndexSet({1, 3}));
}

TEST(IndexSetTest, SubsetShortCircuitsOnSize) {
  // A larger set is never a subset of a smaller one, whatever the members.
  IndexSet big{0, 1, 2};
  IndexSet small{0, 1};
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_TRUE(small.IsSubsetOf(small));
}

TEST(IndexSetTest, FastPathsMatchReferenceSemantics) {
  // Randomized equivalence: the bitmask fast paths (members < 64) must
  // agree with the definitional element-wise semantics for Contains,
  // IsSubsetOf and Dominates.
  Rng rng(2024);
  for (int round = 0; round < 500; ++round) {
    std::vector<int32_t> raw_a, raw_b;
    size_t len = static_cast<size_t>(rng.Uniform(0, 6));
    for (size_t i = 0; i < len; ++i) {
      raw_a.push_back(static_cast<int32_t>(rng.Uniform(0, 63)));
      raw_b.push_back(static_cast<int32_t>(rng.Uniform(0, 63)));
    }
    IndexSet a = IndexSet::FromUnsorted(raw_a);
    IndexSet b = IndexSet::FromUnsorted(raw_b);

    std::set<int32_t> set_a(a.begin(), a.end());
    std::set<int32_t> set_b(b.begin(), b.end());
    for (int32_t v = -1; v < 66; ++v) {
      EXPECT_EQ(a.Contains(v), set_a.count(v) > 0) << a.ToString() << " " << v;
    }
    EXPECT_EQ(a.IsSubsetOf(b),
              std::includes(b.begin(), b.end(), a.begin(), a.end()))
        << a.ToString() << " subset of " << b.ToString();
    bool dominates = a.size() == b.size();
    for (size_t i = 0; dominates && i < a.size(); ++i) {
      if (a[i] > b[i]) dominates = false;
    }
    EXPECT_EQ(a.Dominates(b), dominates)
        << a.ToString() << " dominates " << b.ToString();
    EXPECT_EQ(a == b, set_a == set_b);
  }
}

TEST(IndexSetTest, MembersBeyond64FallBackToElementLoops) {
  // FromUnsorted imposes no < 64 bound; such sets must keep working for
  // everything except Bits().
  IndexSet large = IndexSet::FromUnsorted({10, 100});
  EXPECT_TRUE(large.Contains(100));
  EXPECT_FALSE(large.Contains(64));
  IndexSet small{10};
  EXPECT_TRUE(small.IsSubsetOf(large));
  EXPECT_FALSE(large.IsSubsetOf(small));
  EXPECT_TRUE((IndexSet::FromUnsorted({9, 99})).Dominates(large));
  EXPECT_FALSE(large.Dominates(IndexSet::FromUnsorted({9, 99})));
  EXPECT_EQ(large, IndexSet::FromUnsorted({100, 10}));
  // Mutations crossing the 64 boundary keep the cached mask coherent.
  IndexSet back_small = large.WithRemoved(100);
  EXPECT_EQ(back_small.Bits(), uint64_t{1} << 10);
  EXPECT_EQ(large.WithReplaced(100, 20).ToString(), "{10,20}");
}

TEST(IndexSetTest, SixtyFourMemberBoundary) {
  // The mask representation is bounded by member VALUE, not set size: a
  // K = 64 space's full state {0..63} has 64 members yet every one fits a
  // 64-bit mask, so the fast path applies with an all-ones mask — this
  // exercises the t >= 63 guard in the Dominates threshold masks, where
  // `1 << (t + 1)` would be undefined behavior.
  std::vector<int32_t> all;
  for (int32_t i = 0; i < 64; ++i) all.push_back(i);
  IndexSet full = IndexSet::FromUnsorted(all);
  ASSERT_EQ(full.size(), 64u);
  EXPECT_EQ(full.Bits(), ~uint64_t{0});
  EXPECT_TRUE(full.Dominates(full));
  EXPECT_TRUE(full.Contains(63));
  EXPECT_FALSE(full.Contains(64));

  // Shift by one: member 64 appears (the last index of a K = 65 space) and
  // the set must leave the mask representation for the element loops.
  std::vector<int32_t> shifted;
  for (int32_t i = 1; i <= 64; ++i) shifted.push_back(i);
  IndexSet beyond = IndexSet::FromUnsorted(shifted);
  ASSERT_EQ(beyond.size(), 64u);
  EXPECT_TRUE(beyond.Contains(64));
  // Mixed-representation comparisons agree with the componentwise
  // definition: i <= i + 1 at every position.
  EXPECT_TRUE(full.Dominates(beyond));
  EXPECT_FALSE(beyond.Dominates(full));
  EXPECT_FALSE(full.IsSubsetOf(beyond));

  // Regression: Dominates on unequal sizes is false in both directions,
  // whatever representation either side uses — the popcount comparison
  // must never be consulted for mismatched sizes.
  IndexSet prefix = full.Prefix(63);
  EXPECT_FALSE(prefix.Dominates(full));
  EXPECT_FALSE(full.Dominates(prefix));
  EXPECT_FALSE(prefix.Dominates(beyond));
  EXPECT_FALSE(beyond.Dominates(prefix));
  EXPECT_FALSE(IndexSet().Dominates(full));
  EXPECT_FALSE(full.Dominates(IndexSet()));
  EXPECT_TRUE(IndexSet().Dominates(IndexSet()));
}

TEST(IndexSetTest, DominatesUnequalSizesAcrossBitmaskGate) {
  // Unequal sizes are never comparable, regardless of which side of the
  // 64-member value gate each representation falls on: small vs small,
  // large vs small, and large vs large must all agree with the size check
  // before any mask or element loop runs.
  IndexSet small2{0, 1};
  IndexSet small3{0, 1, 2};
  IndexSet large2 = IndexSet::FromUnsorted({9, 99});
  IndexSet large3 = IndexSet::FromUnsorted({9, 99, 200});
  EXPECT_FALSE(small2.Dominates(small3));
  EXPECT_FALSE(small3.Dominates(small2));
  EXPECT_FALSE(large2.Dominates(small3));
  EXPECT_FALSE(small3.Dominates(large2));
  EXPECT_FALSE(large2.Dominates(large3));
  EXPECT_FALSE(large3.Dominates(large2));

  // Equal sizes across the gate: {63} is the last mask-representable
  // singleton, {64} the first that is not. Componentwise 63 <= 64.
  EXPECT_TRUE((IndexSet{63}).Dominates(IndexSet::FromUnsorted({64})));
  EXPECT_FALSE((IndexSet::FromUnsorted({64})).Dominates(IndexSet{63}));
}

TEST(IndexSetTest, MutationsKeepBitsInSync) {
  IndexSet s{1, 5};
  EXPECT_EQ(s.WithAdded(3).Bits(), (uint64_t{1} << 1) | (uint64_t{1} << 3) |
                                       (uint64_t{1} << 5));
  EXPECT_EQ(s.WithRemoved(5).Bits(), uint64_t{1} << 1);
  EXPECT_EQ(s.WithReplaced(1, 2).Bits(),
            (uint64_t{1} << 2) | (uint64_t{1} << 5));
  EXPECT_EQ(s.Prefix(1).Bits(), uint64_t{1} << 1);
  EXPECT_EQ(IndexSet::FromUnsorted({5, 1}).Bits(), s.Bits());
}

// ---------- MemoryMeter ----------

TEST(MemoryMeterTest, TracksPeak) {
  MemoryMeter m;
  m.Allocate(100);
  m.Allocate(50);
  EXPECT_EQ(m.current_bytes(), 150u);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.Release(120);
  EXPECT_EQ(m.current_bytes(), 30u);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.Allocate(40);
  EXPECT_EQ(m.peak_bytes(), 150u);  // still below old peak
  m.Allocate(200);
  EXPECT_EQ(m.peak_bytes(), 270u);
}

TEST(MemoryMeterTest, ResetClears) {
  MemoryMeter m;
  m.Allocate(64);
  m.Reset();
  EXPECT_EQ(m.current_bytes(), 0u);
  EXPECT_EQ(m.peak_bytes(), 0u);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(99);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardsLowRanks) {
  Rng rng(17);
  int lows = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.0) < 10) ++lows;
  }
  // Under uniform, ~10% fall below rank 10; Zipf(s=1) should be far above.
  EXPECT_GT(lows, n / 4);
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng rng(18);
  int lows = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 0.0) < 10) ++lows;
  }
  EXPECT_NEAR(lows, n / 10, n / 20);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  rng.Shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 6u);
}

// ---------- String utilities ----------

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, CaseConversionsAndCompare) {
  EXPECT_EQ(ToUpper("MoViE"), "MOVIE");
  EXPECT_EQ(ToLower("MoViE"), "movie");
  EXPECT_TRUE(EqualsIgnoreCase("Movie", "MOVIE"));
  EXPECT_FALSE(EqualsIgnoreCase("Movie", "Movies"));
}

TEST(StrUtilTest, StripAndAffixes) {
  EXPECT_EQ(StripWhitespace("  x y \t"), "x y");
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_TRUE(EndsWith("query.sql", ".sql"));
  EXPECT_FALSE(StartsWith("x", "xy"));
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

// ---------- new status codes ----------

TEST(StatusTest, DeadlineAndResourceCodes) {
  Status d = DeadlineExceeded("too slow");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.message(), "too slow");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");

  Status r = ResourceExhausted("out of states");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), StatusCode::kResourceExhausted);
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

// ---------- SearchBudget ----------

TEST(SearchBudgetTest, DefaultIsUnlimited) {
  SearchBudget budget;
  EXPECT_TRUE(budget.IsUnlimited());
  EXPECT_EQ(budget.ToString(), "unlimited");
  EXPECT_GT(budget.RemainingMillis(), 1e18);  // infinity
}

TEST(SearchBudgetTest, AfterMillisSetsAbsoluteDeadline) {
  SearchBudget budget = SearchBudget::AfterMillis(1000.0);
  EXPECT_FALSE(budget.IsUnlimited());
  double remaining = budget.RemainingMillis();
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 1000.0 + 1e-6);
}

TEST(SearchBudgetTest, ExpiredDeadlineGoesNegative) {
  SearchBudget budget = SearchBudget::AfterMillis(-5.0);
  EXPECT_LT(budget.RemainingMillis(), 0.0);
}

TEST(SearchBudgetTest, AnySingleLimitMakesItLimited) {
  SearchBudget a;
  a.max_expansions = 1;
  EXPECT_FALSE(a.IsUnlimited());
  SearchBudget b;
  b.max_memory_bytes = 1;
  EXPECT_FALSE(b.IsUnlimited());
  CancelToken token;
  SearchBudget c;
  c.cancel = &token;
  EXPECT_FALSE(c.IsUnlimited());
}

TEST(SearchBudgetTest, ToStringMentionsEachLimit) {
  SearchBudget budget = SearchBudget::AfterMillis(50.0);
  budget.max_expansions = 123;
  budget.max_memory_bytes = 4096;
  std::string text = budget.ToString();
  EXPECT_NE(text.find("deadline="), std::string::npos) << text;
  EXPECT_NE(text.find("123"), std::string::npos) << text;
  EXPECT_NE(text.find("4096"), std::string::npos) << text;
}

TEST(CancelTokenTest, CancelAndReset) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(BudgetExhaustionTest, NamesAreStable) {
  EXPECT_STREQ(BudgetExhaustionName(BudgetExhaustion::kNone), "None");
  EXPECT_STREQ(BudgetExhaustionName(BudgetExhaustion::kDeadline), "Deadline");
  EXPECT_STREQ(BudgetExhaustionName(BudgetExhaustion::kExpansions),
               "Expansions");
  EXPECT_STREQ(BudgetExhaustionName(BudgetExhaustion::kMemory), "Memory");
  EXPECT_STREQ(BudgetExhaustionName(BudgetExhaustion::kCancelled),
               "Cancelled");
}

// ---------- failpoints ----------

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::Reset(); }
  void TearDown() override { failpoint::Reset(); }
};

TEST_F(FailpointTest, UnarmedNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(failpoint::Maybe("never.armed"));
  }
  EXPECT_TRUE(failpoint::List().empty());
}

TEST_F(FailpointTest, ProbabilityOneAlwaysFires) {
  ASSERT_TRUE(failpoint::Configure("always=1.0:42").ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(failpoint::Maybe("always"));
  }
  auto armed = failpoint::List();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0].name, "always");
  EXPECT_EQ(armed[0].hits, 20u);
  EXPECT_EQ(armed[0].triggers, 20u);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFires) {
  ASSERT_TRUE(failpoint::Configure("off=0.0:42").ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(failpoint::Maybe("off"));
  }
  auto armed = failpoint::List();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0].hits, 20u);
  EXPECT_EQ(armed[0].triggers, 0u);
}

TEST_F(FailpointTest, SameSeedSameSequence) {
  ASSERT_TRUE(failpoint::Configure("coin=0.5:7").ok());
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(failpoint::Maybe("coin"));
  ASSERT_TRUE(failpoint::Configure("coin=0.5:7").ok());  // re-arm: counters reset
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) second.push_back(failpoint::Maybe("coin"));
  EXPECT_EQ(first, second);
  // A fair-ish coin: both outcomes appear over 64 deterministic draws.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FailpointTest, DifferentSeedsDiverge) {
  ASSERT_TRUE(failpoint::Configure("coin=0.5:1").ok());
  std::vector<bool> a;
  for (int i = 0; i < 64; ++i) a.push_back(failpoint::Maybe("coin"));
  ASSERT_TRUE(failpoint::Configure("coin=0.5:2").ok());
  std::vector<bool> b;
  for (int i = 0; i < 64; ++i) b.push_back(failpoint::Maybe("coin"));
  EXPECT_NE(a, b);
}

TEST_F(FailpointTest, ConfigureRejectsMalformedSpecs) {
  EXPECT_FALSE(failpoint::Configure("noequals").ok());
  EXPECT_FALSE(failpoint::Configure("p=notanumber").ok());
  EXPECT_FALSE(failpoint::Configure("p=2.0").ok());   // prob > 1
  EXPECT_FALSE(failpoint::Configure("p=-0.5").ok());  // prob < 0
  EXPECT_FALSE(failpoint::Configure("p=0.5:badseed").ok());
  EXPECT_FALSE(failpoint::Configure("=0.5").ok());  // empty name
  // Valid specs still work after rejections.
  EXPECT_TRUE(failpoint::Configure("a=0.5,b=1.0:3").ok());
  EXPECT_EQ(failpoint::List().size(), 2u);
}

TEST_F(FailpointTest, EmptySpecDisarmsEverything) {
  ASSERT_TRUE(failpoint::Configure("a=1.0").ok());
  EXPECT_TRUE(failpoint::Maybe("a"));
  ASSERT_TRUE(failpoint::Configure("").ok());
  EXPECT_FALSE(failpoint::Maybe("a"));
  EXPECT_TRUE(failpoint::List().empty());
}

TEST_F(FailpointTest, ReloadFromEnvArmsAndClears) {
  setenv("CQP_FAILPOINTS", "env.point=1.0:9", 1);
  ASSERT_TRUE(failpoint::ReloadFromEnv().ok());
  EXPECT_TRUE(failpoint::Maybe("env.point"));
  unsetenv("CQP_FAILPOINTS");
  ASSERT_TRUE(failpoint::ReloadFromEnv().ok());
  EXPECT_FALSE(failpoint::Maybe("env.point"));
}

TEST_F(FailpointTest, MacroReturnsInternalError) {
  ASSERT_TRUE(failpoint::Configure("macro.test=1.0").ok());
  auto fallible = []() -> Status {
    CQP_FAILPOINT("macro.test");
    return Status::OK();
  };
  Status s = fallible();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("macro.test"), std::string::npos);
}

}  // namespace
}  // namespace cqp
