// Tier-1 coverage for the differential & metamorphic harness itself: the
// generator must be deterministic and cover every Table 1 problem class,
// reproducer files must round-trip bit-for-bit, a sweep of generated
// instances must pass every oracle/invariant/parity check, the checked-in
// regression corpus must replay clean, and the shrinker must minimize
// against an arbitrary predicate. The long-running entry point is
// tools/cqp_fuzz; this file keeps a fast slice of it in ctest.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "common/rng.h"
#include "testing/generator.h"
#include "testing/instance.h"
#include "testing/isolation.h"
#include "testing/oracle.h"
#include "testing/shrinker.h"

namespace cqp::testing {
namespace {

TEST(Generator, DeterministicInSeed) {
  GeneratorConfig config;
  for (uint64_t seed : {1u, 7u, 99u}) {
    Rng a(seed);
    Rng b(seed);
    EXPECT_EQ(GenerateInstance(a, config).Serialize(),
              GenerateInstance(b, config).Serialize());
  }
  Rng a(1);
  Rng b(2);
  EXPECT_NE(GenerateInstance(a, config).Serialize(),
            GenerateInstance(b, config).Serialize());
}

TEST(Generator, CoversAllSixProblemClasses) {
  GeneratorConfig config;
  std::set<int> classes;
  Rng rng(42);
  for (int i = 0; i < 60; ++i) {
    CqpInstance instance = GenerateInstance(rng, config);
    ASSERT_TRUE(instance.problem.Validate().ok()) << instance.Summary();
    classes.insert(instance.problem.ProblemNumber());
    EXPECT_GE(instance.K(), config.k_min);
    EXPECT_LE(instance.K(), config.k_max);
  }
  EXPECT_EQ(classes, (std::set<int>{1, 2, 3, 4, 5, 6}));
}

TEST(Generator, PinnedClassIsHonored) {
  for (int cls = 1; cls <= 6; ++cls) {
    GeneratorConfig config;
    config.problem_class = cls;
    Rng rng(static_cast<uint64_t>(cls) * 13);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(GenerateInstance(rng, config).problem.ProblemNumber(), cls);
    }
  }
}

TEST(Instance, SerializeRoundTripsBitForBit) {
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    CqpInstance instance = GenerateInstance(rng);
    std::string text = instance.Serialize();
    auto parsed = CqpInstance::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Serialize(), text);
    ASSERT_EQ(parsed->K(), instance.K());
    for (size_t p = 0; p < instance.K(); ++p) {
      EXPECT_EQ(parsed->space.prefs[p].doi, instance.space.prefs[p].doi);
      EXPECT_EQ(parsed->space.prefs[p].cost_ms,
                instance.space.prefs[p].cost_ms);
      EXPECT_EQ(parsed->space.prefs[p].selectivity,
                instance.space.prefs[p].selectivity);
    }
  }
}

TEST(Instance, ParseRejectsUnknownDirective) {
  EXPECT_FALSE(CqpInstance::Parse("cqp-repro v1\nobjective max_doi\n"
                                  "frobnicate 3\npref 0.5 120 0.5\n")
                   .ok());
  EXPECT_FALSE(CqpInstance::Parse("not a repro at all").ok());
}

TEST(Harness, GeneratedSweepIsViolationFree) {
  // A fast slice of the 10k-instance cqp_fuzz campaign: every problem
  // class, every check enabled.
  for (int cls = 1; cls <= 6; ++cls) {
    GeneratorConfig config;
    config.problem_class = cls;
    int checked = 0;
    for (uint64_t i = 0; i < 40; ++i) {
      Rng rng(static_cast<uint64_t>(cls) * 100000 + i);
      CqpInstance instance = GenerateInstance(rng, config);
      instance.seed = static_cast<uint64_t>(cls) * 100000 + i;
      CheckReport report = CheckInstance(instance);
      EXPECT_TRUE(report.ok()) << "class " << cls << " seed " << instance.seed
                               << "\n" << report.ToString() << "\n"
                               << instance.Serialize();
      checked += static_cast<int>(report.algorithms_checked);
    }
    EXPECT_GT(checked, 0) << "class " << cls;
  }
}

TEST(Harness, CorpusReplaysClean) {
  // Historical regressions checked in under tests/corpus (see the
  // "# regression:" note in each file). Every entry once failed a check or
  // crashed an algorithm; all must pass on current code.
  std::filesystem::path dir(CQP_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".cqprepro") continue;
    auto instance = CqpInstance::ReadFile(entry.path().string());
    ASSERT_TRUE(instance.ok()) << entry.path() << ": "
                               << instance.status().ToString();
    CheckReport report = CheckInstance(*instance);
    EXPECT_TRUE(report.ok()) << entry.path() << "\n" << report.ToString();
    ++replayed;
  }
  EXPECT_GE(replayed, 6);
}

TEST(Shrinker, MinimizesAgainstPredicate) {
  // No real bug needed: shrink against "keeps at least 3 preferences with
  // doi above 0.5". The minimum satisfying instance has exactly 3 prefs.
  Rng rng(11);
  GeneratorConfig config;
  config.k_min = 10;
  config.k_max = 12;
  config.doi_shape = static_cast<int>(DoiShape::kUniform);
  CqpInstance instance = GenerateInstance(rng, config);
  auto high_doi_count = [](const CqpInstance& candidate) {
    int n = 0;
    for (const auto& p : candidate.space.prefs) n += p.doi > 0.5 ? 1 : 0;
    return n;
  };
  ASSERT_GE(high_doi_count(instance), 3) << instance.Serialize();

  ShrinkResult shrunk = ShrinkInstanceWith(
      instance, [&](const CqpInstance& candidate, CheckReport*) {
        return high_doi_count(candidate) >= 3;
      });
  EXPECT_GE(shrunk.steps, 1);
  EXPECT_GT(shrunk.probes, shrunk.steps);
  EXPECT_EQ(shrunk.instance.K(), 3u) << shrunk.instance.Serialize();
  EXPECT_EQ(high_doi_count(shrunk.instance), 3);
  EXPECT_NE(shrunk.instance.note.find("shrunk from"), std::string::npos);
}

TEST(Shrinker, PassingInstanceIsLeftAlone) {
  Rng rng(3);
  CqpInstance instance = GenerateInstance(rng);
  ShrinkResult result = ShrinkInstanceWith(
      instance, [](const CqpInstance&, CheckReport*) { return false; });
  EXPECT_EQ(result.steps, 0);
  EXPECT_EQ(result.instance.K(), instance.K());
}

TEST(Isolation, SurvivesCrashingProbe) {
  IsolatedOutcome outcome = RunIsolated([](std::string*, int*) -> bool {
    std::abort();  // what a CHECK failure in the code under test does
  });
  EXPECT_TRUE(outcome.crashed);
  EXPECT_TRUE(outcome.failed);
  EXPECT_NE(outcome.report_text.find("signal"), std::string::npos);
}

TEST(Isolation, ForwardsVerdictAndReport) {
  IsolatedOutcome outcome = RunIsolated([](std::string* text, int* solves) {
    *text = "the-report";
    *solves = 17;
    return true;
  });
  EXPECT_FALSE(outcome.crashed);
  EXPECT_TRUE(outcome.failed);
  EXPECT_EQ(outcome.solves, 17);
  EXPECT_EQ(outcome.report_text, "the-report");

  outcome = RunIsolated([](std::string*, int*) { return false; });
  EXPECT_FALSE(outcome.failed);
}

TEST(Generator, CorruptFrameAndJunkAreDeterministic) {
  std::string frame = "{\"op\":\"personalize\",\"id\":\"x\"}";
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(CorruptFrame(a, frame), CorruptFrame(b, frame));
  }
  Rng c(6);
  Rng d(6);
  std::string junk = RandomJunk(c, 256);
  EXPECT_EQ(junk, RandomJunk(d, 256));
  EXPECT_EQ(junk.find('\n'), std::string::npos);
  EXPECT_EQ(junk.size(), 256u);
}

}  // namespace
}  // namespace cqp::testing
