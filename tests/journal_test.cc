// Tier-1 coverage for the durability layer (docs/durability.md): CRC32C
// known answers, record framing, torn-tail truncation at EVERY byte offset
// of the last record, checksum-corruption handling, snapshot round-trip
// and rejection, compaction equivalence, persisted snapshot-version
// monotonicity across reopen, the wedge-on-failure policy, and replay of
// the checked-in torn-tail corpus case. The long-running adversarial entry
// point is tools/cqp_crashfuzz; this file keeps the deterministic slice in
// ctest.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "server/durable_profile_store.h"
#include "storage/journal/coding.h"
#include "storage/journal/faulty_file.h"
#include "storage/journal/file.h"
#include "storage/journal/journal.h"
#include "storage/journal/snapshot.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"

namespace cqp {
namespace {

using storage::FaultyFileSystem;
using storage::FileSystem;
using storage::PosixFileSystem;
using storage::journal::DropTornTail;
using storage::journal::FrameRecord;
using storage::journal::kRecordHeaderBytes;
using storage::journal::ReadSnapshot;
using storage::journal::Replay;
using storage::journal::ReplayBuffer;
using storage::journal::ReplayResult;
using storage::journal::SnapshotData;
using storage::journal::SnapshotEntry;
using storage::journal::Writer;

/// RAII temp directory for the on-disk tests.
class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/cqp_journal_test.XXXXXX";
    path_ = ::mkdtemp(buf);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::string> Collect(std::string_view buffer,
                                 ReplayResult* result) {
  std::vector<std::string> payloads;
  auto replayed = ReplayBuffer(buffer, [&](std::string_view payload) {
    payloads.emplace_back(payload);
    return Status::OK();
  });
  EXPECT_TRUE(replayed.ok()) << replayed.status().ToString();
  if (replayed.ok()) *result = *replayed;
  return payloads;
}

// ---------------------------------------------------------------- crc32c

TEST(Crc32c, KnownAnswers) {
  // The canonical CRC-32C check value (RFC 3720 / iSCSI test vector).
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
  EXPECT_EQ(crc32c::Value("", 0), 0u);
  // Incremental Extend must equal one-shot Value.
  uint32_t split = crc32c::Extend(crc32c::Extend(0, "12345", 5), "6789", 4);
  EXPECT_EQ(split, crc32c::Value("123456789", 9));
}

TEST(Crc32c, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xe3069283u, 0xffffffffu}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);
  }
}

// ---------------------------------------------------------------- coding

TEST(Coding, FixedAndLengthPrefixedRoundTrip) {
  std::string buf;
  storage::PutFixed32(&buf, 0xdeadbeefu);
  storage::PutFixed64(&buf, 0x0123456789abcdefull);
  storage::PutLengthPrefixed(&buf, "hello");
  storage::PutLengthPrefixed(&buf, "");
  EXPECT_EQ(storage::GetFixed32(buf.data()), 0xdeadbeefu);
  EXPECT_EQ(storage::GetFixed64(buf.data() + 4), 0x0123456789abcdefull);
  size_t pos = 12;
  std::string_view s;
  ASSERT_TRUE(storage::GetLengthPrefixed(buf, &pos, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(storage::GetLengthPrefixed(buf, &pos, &s));
  EXPECT_EQ(s, "");
  EXPECT_EQ(pos, buf.size());
  EXPECT_FALSE(storage::GetLengthPrefixed(buf, &pos, &s));  // exhausted
}

// --------------------------------------------------------------- framing

TEST(Journal, RoundTripMultipleRecords) {
  std::string buffer;
  std::vector<std::string> want = {"alpha", "", "a longer third record",
                                   std::string(1000, 'x')};
  for (const std::string& payload : want) buffer += FrameRecord(payload);

  ReplayResult result;
  EXPECT_EQ(Collect(buffer, &result), want);
  EXPECT_EQ(result.records, want.size());
  EXPECT_EQ(result.valid_bytes, buffer.size());
  EXPECT_EQ(result.dropped_bytes, 0u);
  EXPECT_FALSE(result.torn_tail);
}

TEST(Journal, TornTailTruncationAtEveryByteOffsetOfLastRecord) {
  // The load-bearing recovery property: wherever a crash tears the last
  // record — inside the length field, the checksum, or the payload — the
  // clean prefix replays in full and the tail is identified exactly.
  const std::string first = FrameRecord("first record");
  const std::string second = FrameRecord("second record");
  const std::string last = FrameRecord("the record a crash tears");
  const std::string clean = first + second;

  for (size_t torn = 0; torn < last.size(); ++torn) {
    std::string buffer = clean + last.substr(0, torn);
    ReplayResult result;
    std::vector<std::string> payloads = Collect(buffer, &result);
    ASSERT_EQ(payloads.size(), 2u) << "torn at offset " << torn;
    EXPECT_EQ(result.valid_bytes, clean.size()) << "torn at offset " << torn;
    EXPECT_EQ(result.dropped_bytes, torn) << "torn at offset " << torn;
    EXPECT_EQ(result.torn_tail, torn > 0) << "torn at offset " << torn;
  }
  // And the whole last record present = clean replay of all three.
  ReplayResult result;
  EXPECT_EQ(Collect(clean + last, &result).size(), 3u);
  EXPECT_FALSE(result.torn_tail);
}

TEST(Journal, CorruptChecksumEndsTheLog) {
  const std::string first = FrameRecord("good");
  std::string bad = FrameRecord("about to be corrupted");
  bad[kRecordHeaderBytes + 3] ^= 0x40;  // flip one payload bit
  const std::string tail = FrameRecord("unreachable after corruption");

  ReplayResult result;
  std::vector<std::string> payloads = Collect(first + bad + tail, &result);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "good");
  EXPECT_EQ(result.valid_bytes, first.size());
  // Everything from the corrupt record on is indistinguishable from a torn
  // tail and is dropped — including records after it.
  EXPECT_EQ(result.dropped_bytes, bad.size() + tail.size());
  EXPECT_TRUE(result.torn_tail);
}

TEST(Journal, InsaneLengthFieldIsCorruptionNotAnAllocation) {
  std::string buffer;
  storage::PutFixed32(&buffer, 0xfffffff0u);  // ~4 GiB "record"
  storage::PutFixed32(&buffer, 0x12345678u);
  buffer += "some bytes";
  ReplayResult result;
  EXPECT_TRUE(Collect(buffer, &result).empty());
  EXPECT_EQ(result.valid_bytes, 0u);
  EXPECT_TRUE(result.torn_tail);
}

TEST(Journal, WriterReplayDropTornTailReopenCycle) {
  TempDir dir;
  FileSystem& fs = PosixFileSystem();
  const std::string path = dir.path() + "/journal";

  {
    auto writer = Writer::Open(fs, path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("one").ok());
    ASSERT_TRUE((*writer)->Append("two").ok());
    ASSERT_TRUE((*writer)->Sync().ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  // Tear the file mid-record, as a crash would.
  auto size = fs.FileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(fs.Truncate(path, *size - 2).ok());

  std::vector<std::string> payloads;
  auto replayed = Replay(fs, path, [&](std::string_view p) {
    payloads.emplace_back(p);
    return Status::OK();
  });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(payloads, std::vector<std::string>{"one"});
  EXPECT_TRUE(replayed->torn_tail);
  ASSERT_TRUE(DropTornTail(fs, path, *replayed).ok());

  // The truncated journal must be appendable again and replay clean.
  {
    auto writer = Writer::Open(fs, path);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ((*writer)->end_offset(), replayed->valid_bytes);
    ASSERT_TRUE((*writer)->Append("three").ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  payloads.clear();
  replayed = Replay(fs, path, [&](std::string_view p) {
    payloads.emplace_back(p);
    return Status::OK();
  });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(payloads, (std::vector<std::string>{"one", "three"}));
  EXPECT_FALSE(replayed->torn_tail);
}

TEST(Journal, CheckedInTornTailCorpusReplays) {
  // The minimized crash artifact from cqp_crashfuzz: two intact records,
  // then a third torn mid-payload. Pinned as bytes on disk so a framing or
  // checksum change that breaks old journals fails here, loudly.
  std::ifstream in(std::string(CQP_CORPUS_DIR) + "/journal_torn_tail.journal",
                   std::ios::binary);
  ASSERT_TRUE(in) << "corpus file missing";
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  ASSERT_EQ(buffer.size(), 89u);

  ReplayResult result;
  std::vector<std::string> payloads = Collect(buffer, &result);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "P profile-alpha v1");
  EXPECT_EQ(payloads[1], "R profile-alpha v2");
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.valid_bytes, 52u);
}

// -------------------------------------------------------------- snapshot

TEST(Snapshot, RoundTrip) {
  TempDir dir;
  FileSystem& fs = PosixFileSystem();
  const std::string path = dir.path() + "/snapshot";

  SnapshotData data;
  data.next_version = 42;
  data.entries.push_back(SnapshotEntry{"a", 7, "profile text a"});
  data.entries.push_back(SnapshotEntry{"b", 41, ""});
  ASSERT_TRUE(WriteSnapshot(fs, path, data).ok());

  auto read = ReadSnapshot(fs, path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->next_version, 42u);
  ASSERT_EQ(read->entries.size(), 2u);
  EXPECT_EQ(read->entries[0].key, "a");
  EXPECT_EQ(read->entries[0].version, 7u);
  EXPECT_EQ(read->entries[0].value, "profile text a");
  EXPECT_EQ(read->entries[1].key, "b");
  EXPECT_EQ(read->entries[1].value, "");
}

TEST(Snapshot, MissingIsNotFoundCorruptIsInternal) {
  TempDir dir;
  FileSystem& fs = PosixFileSystem();
  const std::string path = dir.path() + "/snapshot";
  EXPECT_EQ(ReadSnapshot(fs, path).status().code(), StatusCode::kNotFound);

  SnapshotData data;
  data.entries.push_back(SnapshotEntry{"a", 1, "text"});
  ASSERT_TRUE(WriteSnapshot(fs, path, data).ok());
  auto raw = fs.ReadFile(path);
  ASSERT_TRUE(raw.ok());

  // Flip a byte: snapshots are written atomically, so corruption is a real
  // error, never a recoverable crash artifact.
  std::string corrupt = *raw;
  corrupt[corrupt.size() / 2] ^= 0x01;
  std::ofstream(path, std::ios::binary).write(corrupt.data(), corrupt.size());
  EXPECT_EQ(ReadSnapshot(fs, path).status().code(), StatusCode::kInternal);

  // Truncation is equally fatal.
  std::ofstream(path, std::ios::binary).write(raw->data(), raw->size() / 2);
  EXPECT_EQ(ReadSnapshot(fs, path).status().code(), StatusCode::kInternal);
}

// -------------------------------------------- DurableProfileStore on disk

class DurableStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::MovieDbConfig movie_config;
    movie_config.n_movies = 150;
    movie_config.n_directors = 15;
    movie_config.n_actors = 30;
    auto built = workload::BuildMovieDatabase(movie_config);
    ASSERT_TRUE(built.ok());
    db_ = new storage::Database(*std::move(built));

    profiles_ = new std::vector<prefs::Profile>();
    for (uint64_t seed : {11u, 12u, 13u}) {
      workload::ProfileGenConfig config;
      config.seed = seed;
      config.n_genre_prefs = 3;
      config.n_director_prefs = 2;
      config.n_actor_prefs = 2;
      config.n_year_prefs = 2;
      config.n_duration_prefs = 1;
      auto profile = workload::GenerateProfile(config, movie_config);
      ASSERT_TRUE(profile.ok());
      profiles_->push_back(*std::move(profile));
    }
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete profiles_;
    profiles_ = nullptr;
  }
  void TearDown() override { failpoint::Reset(); }

  server::DurabilityOptions Options(const std::string& dir) {
    server::DurabilityOptions options;
    options.dir = dir;
    return options;
  }

  static storage::Database* db_;
  static std::vector<prefs::Profile>* profiles_;
};

storage::Database* DurableStoreTest::db_ = nullptr;
std::vector<prefs::Profile>* DurableStoreTest::profiles_ = nullptr;

TEST_F(DurableStoreTest, MutationsSurviveReopen) {
  TempDir dir;
  auto options = Options(dir.path());
  {
    auto store = server::DurableProfileStore::Open(db_, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Put("alice", (*profiles_)[0]).ok());
    ASSERT_TRUE((*store)->Put("bob", (*profiles_)[1]).ok());
    ASSERT_TRUE((*store)->Put("alice", (*profiles_)[2]).ok());  // replace
    ASSERT_TRUE((*store)->Remove("bob").ok());
  }
  auto reopened = server::DurableProfileStore::Open(db_, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Ids(), std::vector<std::string>{"alice"});
  // The replace won: version 3 (put, put, replace-put, remove consumed 4).
  EXPECT_EQ((*reopened)->FindSnapshot("alice").version, 3u);
  EXPECT_NE((*reopened)->Find("alice"), nullptr);
  EXPECT_EQ((*reopened)->recovery().replayed_records, 4u);
  EXPECT_FALSE((*reopened)->recovery().torn_tail);
}

TEST_F(DurableStoreTest, VersionsStayMonotonicAcrossReopen) {
  TempDir dir;
  auto options = Options(dir.path());
  uint64_t last = 0;
  {
    auto store = server::DurableProfileStore::Open(db_, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("a", (*profiles_)[0]).ok());
    ASSERT_TRUE((*store)->Remove("a").ok());  // removes consume versions too
    ASSERT_TRUE((*store)->Put("a", (*profiles_)[1]).ok());
    last = (*store)->FindSnapshot("a").version;
    EXPECT_EQ(last, 3u);
  }
  // Across restarts — including after compaction — a new Put must always
  // version above everything that ever existed, or version-keyed caches
  // (EvalCacheRegistry, PlanCache) could alias pre-restart entries.
  for (int round = 0; round < 3; ++round) {
    auto store = server::DurableProfileStore::Open(db_, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("a", (*profiles_)[round % 3]).ok());
    uint64_t version = (*store)->FindSnapshot("a").version;
    EXPECT_GT(version, last);
    last = version;
    if (round == 1) ASSERT_TRUE((*store)->Compact().ok());
  }
}

TEST_F(DurableStoreTest, CompactionPreservesContentsAndTruncatesJournal) {
  TempDir dir;
  auto options = Options(dir.path());
  auto store = server::DurableProfileStore::Open(db_, options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        (*store)->Put("u" + std::to_string(i % 3), (*profiles_)[i % 3]).ok());
  }
  ASSERT_TRUE((*store)->Remove("u2").ok());
  auto before = (*store)->Contents();

  ASSERT_TRUE((*store)->Compact().ok());
  auto stats = (*store)->durability_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->compactions, 1u);
  EXPECT_EQ(stats->journal_bytes, 0u);  // journal truncated
  EXPECT_GT(stats->snapshot_bytes, 0u);

  // Equivalence: compaction changes the representation, never the state —
  // neither live (post-compaction) nor recovered (reopen from snapshot).
  auto after = (*store)->Contents();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].key, before[i].key);
    EXPECT_EQ(after[i].version, before[i].version);
    EXPECT_EQ(after[i].value, before[i].value);
  }

  auto reopened = server::DurableProfileStore::Open(db_, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->recovery().snapshot_profiles, before.size());
  EXPECT_EQ((*reopened)->recovery().replayed_records, 0u);
  auto recovered = (*reopened)->Contents();
  ASSERT_EQ(recovered.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(recovered[i].key, before[i].key);
    EXPECT_EQ(recovered[i].version, before[i].version);
    EXPECT_EQ(recovered[i].value, before[i].value);
  }
}

TEST_F(DurableStoreTest, AutomaticCompactionTriggersOnThreshold) {
  TempDir dir;
  auto options = Options(dir.path());
  options.compact_threshold_bytes = 2000;
  auto store = server::DurableProfileStore::Open(db_, options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*store)->Put("u", (*profiles_)[i % 3]).ok());
  }
  auto stats = (*store)->durability_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->compactions, 0u);
  EXPECT_LE(stats->journal_bytes, 2000u + 2048u);  // bounded, not unbounded
}

TEST_F(DurableStoreTest, FsyncFailureWedgesTheStoreUntilReopen) {
  // Every fsync fails once the failpoint arms — fsyncgate: the store must
  // refuse further writes rather than acknowledge maybe-lost data. The
  // sync failpoint site lives in FaultyFile, so the store runs on a
  // FaultyFileSystem.
  TempDir faulty_dir;
  FaultyFileSystem fs(PosixFileSystem());
  auto faulty_options = Options(faulty_dir.path());
  faulty_options.fs = &fs;
  auto faulty = server::DurableProfileStore::Open(db_, faulty_options);
  ASSERT_TRUE(faulty.ok());
  ASSERT_TRUE((*faulty)->Put("a", (*profiles_)[0]).ok());

  ASSERT_TRUE(failpoint::Configure("storage.file.sync.fail=1.0:1").ok());
  Status failed = (*faulty)->Put("b", (*profiles_)[1]);
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE((*faulty)->wedged());
  // Inline mode: an error means NOT applied — 'b' must not serve.
  EXPECT_EQ((*faulty)->Find("b"), nullptr);
  // Wedged = read-only: further writes fail fast, reads keep working.
  EXPECT_FALSE((*faulty)->Put("c", (*profiles_)[2]).ok());
  EXPECT_NE((*faulty)->Find("a"), nullptr);

  // Reopen recovers everything acknowledged before the wedge. The failed
  // Put's record reached the file before its fsync failed, so it MAY also
  // reappear (the client was told "failed", which promises nothing either
  // way — same contract as a real torn fsync); what recovery must never do
  // is lose 'a' or corrupt anything.
  failpoint::Reset();
  auto reopened = server::DurableProfileStore::Open(db_, faulty_options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->wedged());
  EXPECT_NE((*reopened)->Find("a"), nullptr);
  ASSERT_TRUE((*reopened)->Put("c", (*profiles_)[2]).ok());
}

TEST_F(DurableStoreTest, GroupCommitModeIsDurableToo) {
  TempDir dir;
  auto options = Options(dir.path());
  options.group_commit_interval_ms = 0.2;
  {
    auto store = server::DurableProfileStore::Open(db_, options);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          (*store)->Put("u" + std::to_string(i), (*profiles_)[i % 3]).ok());
    }
    auto stats = (*store)->durability_stats();
    ASSERT_TRUE(stats.has_value());
    // Group commit exists to amortize fsync: strictly fewer syncs than
    // sequential inline mode would have issued is the whole point, but a
    // single-threaded writer may still sync once per op — just assert the
    // accounting is sane.
    EXPECT_GE(stats->fsyncs, 1u);
    EXPECT_EQ(stats->appends, 10u);
  }
  auto reopened = server::DurableProfileStore::Open(db_, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Ids().size(), 10u);
}

TEST_F(DurableStoreTest, TornJournalTailRecoversToAcknowledgedPrefix) {
  TempDir dir;
  auto options = Options(dir.path());
  {
    auto store = server::DurableProfileStore::Open(db_, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("keep", (*profiles_)[0]).ok());
    ASSERT_TRUE((*store)->Put("torn", (*profiles_)[1]).ok());
  }
  // Tear the last record on disk, as a crash mid-append would.
  FileSystem& fs = PosixFileSystem();
  const std::string journal = dir.path() + "/journal";
  auto size = fs.FileSize(journal);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(fs.Truncate(journal, *size - 5).ok());

  auto reopened = server::DurableProfileStore::Open(db_, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->recovery().torn_tail);
  EXPECT_GT((*reopened)->recovery().dropped_bytes, 0u);
  EXPECT_EQ((*reopened)->Ids(), std::vector<std::string>{"keep"});
  // And the durability stats surface the recovery.
  auto stats = (*reopened)->durability_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->torn_tail_recovered);
}

}  // namespace
}  // namespace cqp
