#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "shell/shell.h"

namespace cqp::shell {
namespace {

/// Runs one line and returns the output.
std::string RunLine(CqpShell& shell, const std::string& line) {
  std::ostringstream out;
  shell.ProcessLine(line, out);
  return out.str();
}

TEST(ShellTest, HelpListsCommands) {
  CqpShell shell;
  std::string out = RunLine(shell, ".help");
  EXPECT_NE(out.find(".gen"), std::string::npos);
  EXPECT_NE(out.find(".problem"), std::string::npos);
}

TEST(ShellTest, QuitReturnsFalse) {
  CqpShell shell;
  std::ostringstream out;
  EXPECT_FALSE(shell.ProcessLine(".quit", out));
  EXPECT_FALSE(shell.ProcessLine(".exit", out));
  EXPECT_TRUE(shell.ProcessLine("# comment", out));
  EXPECT_TRUE(shell.ProcessLine("   ", out));
}

TEST(ShellTest, UnknownCommandReportsError) {
  CqpShell shell;
  std::string out = RunLine(shell, ".bogus");
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(ShellTest, QueryWithoutDatabaseFails) {
  CqpShell shell;
  std::string out = RunLine(shell, "SELECT title FROM MOVIE");
  EXPECT_NE(out.find("no database"), std::string::npos);
}

class ShellWithDbTest : public ::testing::Test {
 protected:
  ShellWithDbTest() {
    std::ostringstream sink;
    // A small database keeps the test fast.
    CQP_CHECK(shell_.ProcessLine(".gen movies 500", sink));
    CQP_CHECK(shell_.has_database());
  }

  CqpShell shell_;
};

TEST_F(ShellWithDbTest, TablesAndSchema) {
  std::string out = RunLine(shell_, ".tables");
  EXPECT_NE(out.find("MOVIE"), std::string::npos);
  EXPECT_NE(out.find("GENRE"), std::string::npos);
  out = RunLine(shell_, ".schema MOVIE");
  EXPECT_NE(out.find("title STRING"), std::string::npos);
  out = RunLine(shell_, ".schema NOPE");
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST_F(ShellWithDbTest, RawSqlExecutes) {
  std::string out = RunLine(shell_, ".sql SELECT title FROM MOVIE WHERE MOVIE.mid < 3");
  EXPECT_NE(out.find("Movie 000000"), std::string::npos);
  EXPECT_NE(out.find("(3 rows"), std::string::npos);
}

TEST_F(ShellWithDbTest, EmptyProfileFallsBackToRawExecution) {
  std::string out = RunLine(shell_, "SELECT title FROM MOVIE WHERE MOVIE.mid = 1");
  EXPECT_NE(out.find("unpersonalized"), std::string::npos);
  EXPECT_NE(out.find("(1 rows"), std::string::npos);
}

TEST_F(ShellWithDbTest, FullPersonalizationFlow) {
  EXPECT_EQ(RunLine(shell_, ".profile add doi(GENRE.genre = 'drama') = 0.6"), "");
  EXPECT_EQ(RunLine(shell_, ".profile add doi(MOVIE.mid = GENRE.mid) = 0.9"), "");
  EXPECT_EQ(RunLine(shell_, ".profile add doi(MOVIE.year >= 1980) = 0.5"), "");
  EXPECT_EQ(RunLine(shell_, ".problem 2 cmax=100"), "");
  EXPECT_EQ(RunLine(shell_, ".algorithm C-Boundaries"), "");

  std::string out = RunLine(shell_, ".explain SELECT title FROM MOVIE");
  EXPECT_NE(out.find("preference space: K=2"), std::string::npos);
  EXPECT_NE(out.find("sql:"), std::string::npos);

  out = RunLine(shell_, "SELECT title FROM MOVIE");
  EXPECT_NE(out.find("rows"), std::string::npos);
}

TEST_F(ShellWithDbTest, ServeAndConnectRoundTrip) {
  EXPECT_EQ(RunLine(shell_, ".profile add doi(MOVIE.year >= 1990) = 0.7"), "");
  std::string out = RunLine(shell_, ".serve");  // no port = ephemeral
  ASSERT_NE(out.find("serving on 127.0.0.1:"), std::string::npos) << out;
  int port = std::atoi(out.c_str() + out.find(':', out.find("127.0.0.1")) + 1);
  ASSERT_GT(port, 0);

  // While the embedded server holds the database, swapping it is refused.
  EXPECT_NE(RunLine(shell_, ".gen movies 100").find("error:"),
            std::string::npos);
  // A second .serve is too.
  EXPECT_NE(RunLine(shell_, ".serve").find("error:"), std::string::npos);

  // A second shell acts as the client: its queries run remotely.
  CqpShell client;
  std::string connected =
      RunLine(client, ".connect 127.0.0.1:" + std::to_string(port));
  ASSERT_NE(connected.find("connected to"), std::string::npos) << connected;
  std::string answer = RunLine(client, "SELECT title FROM MOVIE");
  EXPECT_NE(answer.find("sql:"), std::string::npos) << answer;
  EXPECT_NE(answer.find("SELECT"), std::string::npos) << answer;
  EXPECT_NE(RunLine(client, ".disconnect").find("disconnected"),
            std::string::npos);

  std::string stopped = RunLine(shell_, ".serve stop");
  EXPECT_NE(stopped.find("server stopped"), std::string::npos) << stopped;
  // With the server gone, .gen works again.
  EXPECT_EQ(RunLine(shell_, ".gen movies 100"), "");
}

TEST_F(ShellWithDbTest, ServeRequiresProfile) {
  EXPECT_NE(RunLine(shell_, ".serve").find("empty profile"), std::string::npos);
  EXPECT_NE(RunLine(shell_, ".serve stop").find("no server running"),
            std::string::npos);
  EXPECT_NE(RunLine(shell_, ".serve 70000").find("error:"), std::string::npos);
}

TEST(ShellTest, ConnectRejectsBadTargets) {
  CqpShell shell;
  EXPECT_NE(RunLine(shell, ".connect nohost").find("error:"),
            std::string::npos);
  EXPECT_NE(RunLine(shell, ".connect 127.0.0.1:notaport").find("error:"),
            std::string::npos);
  EXPECT_NE(RunLine(shell, ".disconnect").find("error:"), std::string::npos);
}

TEST_F(ShellWithDbTest, SettingsReflectChanges) {
  RunLine(shell_, ".problem 4 dmin=0.7");
  RunLine(shell_, ".algorithm MinCost-BB");
  RunLine(shell_, ".k 12");
  std::string out = RunLine(shell_, ".settings");
  EXPECT_NE(out.find("MIN cost"), std::string::npos);
  EXPECT_NE(out.find("MinCost-BB"), std::string::npos);
  EXPECT_NE(out.find("12"), std::string::npos);
}

TEST_F(ShellWithDbTest, RejectsBadProblemAndAlgorithm) {
  EXPECT_NE(RunLine(shell_, ".problem 9").find("error:"), std::string::npos);
  EXPECT_NE(RunLine(shell_, ".problem x").find("error:"), std::string::npos);
  EXPECT_NE(RunLine(shell_, ".algorithm Quantum").find("error:"),
            std::string::npos);
  EXPECT_NE(RunLine(shell_, ".k banana").find("error:"), std::string::npos);
  EXPECT_NE(RunLine(shell_, ".k 99").find("error:"), std::string::npos);
}

TEST_F(ShellWithDbTest, ProfileShowAndClear) {
  RunLine(shell_, ".profile add doi(MOVIE.year >= 1980) = 0.5");
  std::string out = RunLine(shell_, ".profile show");
  EXPECT_NE(out.find("MOVIE.year >= 1980"), std::string::npos);
  RunLine(shell_, ".profile clear");
  EXPECT_EQ(RunLine(shell_, ".profile show"), "");
}

TEST_F(ShellWithDbTest, ProfileRejectsGarbage) {
  std::string out = RunLine(shell_, ".profile add doi(MOVIE.year) = 0.5");
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(ShellCsvTest, LoadCsvAndQuery) {
  std::string path = ::testing::TempDir() + "/cqp_shell_test.csv";
  {
    std::ofstream f(path);
    f << "pid,name,price\n1,Widget,9\n2,Gadget,12\n";
  }
  CqpShell shell;
  std::string out =
      RunLine(shell, ".load ITEM(pid INT, name STRING, price INT) " + path);
  EXPECT_EQ(out, "") << out;
  out = RunLine(shell, ".sql SELECT name FROM ITEM WHERE ITEM.price >= 10");
  EXPECT_NE(out.find("Gadget"), std::string::npos);
  EXPECT_NE(out.find("(1 rows"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ShellCsvTest, LoadRejectsBadSchemaSpec) {
  CqpShell shell;
  EXPECT_NE(RunLine(shell, ".load ITEM pid INT x.csv").find("error:"),
            std::string::npos);
  EXPECT_NE(RunLine(shell, ".load ITEM(pid WEIRD) x.csv").find("error:"),
            std::string::npos);
  EXPECT_NE(RunLine(shell, ".load ITEM(pid INT)").find("error:"),
            std::string::npos);
}

TEST_F(ShellWithDbTest, RawSqlAcceptsUnionGroupStatements) {
  std::string out = RunLine(
      shell_,
      ".sql SELECT title FROM ("
      "SELECT DISTINCT title FROM MOVIE WHERE MOVIE.mid < 2 "
      "UNION ALL "
      "SELECT DISTINCT title FROM MOVIE WHERE MOVIE.year >= 1900"
      ") GROUP BY title HAVING COUNT(*) = 2");
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
  EXPECT_NE(out.find("(2 rows"), std::string::npos) << out;
}

TEST(ShellTouristTest, GenTourist) {
  CqpShell shell;
  std::ostringstream sink;
  ASSERT_TRUE(shell.ProcessLine(".gen tourist", sink));
  std::string out = RunLine(shell, ".tables");
  EXPECT_NE(out.find("RESTAURANT"), std::string::npos);
}

}  // namespace

// ---------- .budget / .failpoints ----------

TEST(ShellTest, BudgetShowsAndSetsLimits) {
  CqpShell shell;
  std::string out = RunLine(shell, ".budget");
  EXPECT_NE(out.find("unlimited"), std::string::npos);

  out = RunLine(shell, ".budget deadline=5 states=1000 memory=2");
  EXPECT_NE(out.find("deadline="), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);

  out = RunLine(shell, ".settings");
  EXPECT_NE(out.find("budget"), std::string::npos);

  out = RunLine(shell, ".budget off");
  out = RunLine(shell, ".budget");
  EXPECT_NE(out.find("unlimited"), std::string::npos);
}

TEST(ShellTest, BudgetRejectsBadInput) {
  CqpShell shell;
  EXPECT_NE(RunLine(shell, ".budget bogus=1").find("error:"),
            std::string::npos);
  EXPECT_NE(RunLine(shell, ".budget deadline=-1").find("error:"),
            std::string::npos);
}

TEST(ShellTest, FailpointsArmListAndDisarm) {
  failpoint::Reset();
  CqpShell shell;
  std::string out = RunLine(shell, ".failpoints");
  EXPECT_NE(out.find("no failpoints armed"), std::string::npos);

  out = RunLine(shell, ".failpoints space.extract=1.0:42");
  EXPECT_NE(out.find("space.extract"), std::string::npos);
  EXPECT_NE(out.find("seed=42"), std::string::npos);

  EXPECT_NE(RunLine(shell, ".failpoints nonsense").find("error:"),
            std::string::npos);

  out = RunLine(shell, ".failpoints off");
  out = RunLine(shell, ".failpoints");
  EXPECT_NE(out.find("no failpoints armed"), std::string::npos);
  failpoint::Reset();
}

TEST_F(ShellWithDbTest, BudgetedQueryReportsDegradation) {
  failpoint::Reset();
  EXPECT_EQ(RunLine(shell_, ".profile add doi(GENRE.genre = 'drama') = 0.6"),
            "");
  EXPECT_EQ(RunLine(shell_, ".problem 2 cmax=1e9"), "");
  // Fault the solver: the ladder answers on a lower rung and says so.
  RunLine(shell_, ".failpoints cqp.solve=1.0:7");
  std::string out = RunLine(shell_, "SELECT title FROM MOVIE");
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
  EXPECT_NE(out.find("degraded"), std::string::npos) << out;
  RunLine(shell_, ".failpoints off");
  failpoint::Reset();
}

}  // namespace cqp::shell
