#include <gtest/gtest.h>

#include <set>

#include "exec/executor.h"
#include "exec/personalized_exec.h"
#include "sql/parser.h"
#include "test_util.h"

namespace cqp::exec {
namespace {

using sql::ParseSelect;
using sql::SelectQuery;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : db_(testing::MakeTinyMovieDb()), executor_(&db_) {}

  RowSet Run(const std::string& sql, ExecStats* stats = nullptr) {
    SelectQuery q = *ParseSelect(sql);
    auto result = executor_.Execute(q, stats);
    CQP_CHECK(result.ok()) << result.status().ToString();
    return *std::move(result);
  }

  storage::Database db_;
  Executor executor_;
};

TEST_F(ExecutorTest, FullScan) {
  RowSet rows = Run("SELECT title FROM MOVIE");
  EXPECT_EQ(rows.row_count(), 6u);
  EXPECT_EQ(rows.column_names(), std::vector<std::string>{"title"});
}

TEST_F(ExecutorTest, SelectStarKeepsQualifiedNames) {
  RowSet rows = Run("SELECT * FROM DIRECTOR");
  EXPECT_EQ(rows.arity(), 2u);
  EXPECT_EQ(rows.column_names()[0], "DIRECTOR.did");
}

TEST_F(ExecutorTest, SelectionFilters) {
  RowSet rows = Run("SELECT title FROM MOVIE WHERE MOVIE.year >= 1980");
  EXPECT_EQ(rows.row_count(), 2u);  // Everyone Says (1996), Shining (1980)
}

TEST_F(ExecutorTest, SelectionOnStrings) {
  RowSet rows = Run("SELECT mid FROM GENRE WHERE GENRE.genre = 'horror'");
  EXPECT_EQ(rows.row_count(), 2u);
}

TEST_F(ExecutorTest, HashJoin) {
  RowSet rows = Run(
      "SELECT M.title, D.name FROM MOVIE M, DIRECTOR D WHERE M.did = D.did");
  EXPECT_EQ(rows.row_count(), 6u);
  // Every Allen movie pairs with "W. Allen".
  int allen = 0;
  for (const auto& row : rows.rows()) {
    if (row.at(1).AsString() == "W. Allen") ++allen;
  }
  EXPECT_EQ(allen, 2);
}

TEST_F(ExecutorTest, JoinWithSelection) {
  RowSet rows = Run(
      "SELECT M.title FROM MOVIE M, DIRECTOR D "
      "WHERE M.did = D.did AND D.name = 'S. Kubrick'");
  EXPECT_EQ(rows.row_count(), 2u);
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  RowSet rows = Run(
      "SELECT M.title, G.genre FROM MOVIE M, DIRECTOR D, GENRE G "
      "WHERE M.did = D.did AND M.mid = G.mid AND D.name = 'A. Hitchcock'");
  EXPECT_EQ(rows.row_count(), 3u);  // Psycho x2 genres + Vertigo x1
}

TEST_F(ExecutorTest, CartesianProductWhenNoJoinPredicate) {
  RowSet rows = Run("SELECT M.title, D.name FROM MOVIE M, DIRECTOR D");
  EXPECT_EQ(rows.row_count(), 18u);  // 6 x 3
}

TEST_F(ExecutorTest, ThetaJoinFilter) {
  // Movies strictly newer than some other movie by the same director.
  RowSet rows = Run(
      "SELECT A.title FROM MOVIE A, MOVIE B "
      "WHERE A.did = B.did AND A.year > B.year");
  // Within each director's two movies, exactly one is newer: 3 rows.
  EXPECT_EQ(rows.row_count(), 3u);
}

TEST_F(ExecutorTest, DistinctDedupes) {
  RowSet rows = Run("SELECT DISTINCT genre FROM GENRE");
  std::set<std::string> genres;
  for (const auto& row : rows.rows()) genres.insert(row.at(0).AsString());
  EXPECT_EQ(rows.row_count(), genres.size());
  EXPECT_EQ(genres.size(), 6u);
}

TEST_F(ExecutorTest, UnqualifiedColumnsResolveWhenUnambiguous) {
  RowSet rows = Run(
      "SELECT title FROM MOVIE M, GENRE G "
      "WHERE M.mid = G.mid AND genre = 'comedy'");
  EXPECT_EQ(rows.row_count(), 2u);
}

TEST_F(ExecutorTest, AmbiguousUnqualifiedColumnFails) {
  SelectQuery q = *ParseSelect(
      "SELECT title FROM MOVIE M, GENRE G WHERE mid = 1");
  EXPECT_FALSE(executor_.Execute(q, nullptr).ok());
}

TEST_F(ExecutorTest, UnknownTableFails) {
  SelectQuery q = *ParseSelect("SELECT x FROM NOPE");
  EXPECT_FALSE(executor_.Execute(q, nullptr).ok());
}

TEST_F(ExecutorTest, DuplicateAliasFails) {
  SelectQuery q = *ParseSelect("SELECT M.title FROM MOVIE M, GENRE M");
  EXPECT_FALSE(executor_.Execute(q, nullptr).ok());
}

TEST_F(ExecutorTest, TypeMismatchInPredicateFails) {
  SelectQuery q = *ParseSelect("SELECT title FROM MOVIE WHERE title = 3");
  EXPECT_FALSE(executor_.Execute(q, nullptr).ok());
}

TEST_F(ExecutorTest, OrderBySortsAscendingAndDescending) {
  RowSet rows = Run("SELECT title, year FROM MOVIE ORDER BY year");
  for (size_t i = 1; i < rows.row_count(); ++i) {
    EXPECT_LE(rows.rows()[i - 1].at(1).AsInt(), rows.rows()[i].at(1).AsInt());
  }
  rows = Run("SELECT title, year FROM MOVIE ORDER BY year DESC");
  EXPECT_EQ(rows.rows()[0].at(1).AsInt(), 1996);
}

TEST_F(ExecutorTest, OrderByMultipleKeysIsStable) {
  RowSet rows = Run(
      "SELECT M.did, M.title FROM MOVIE M ORDER BY M.did, M.title DESC");
  for (size_t i = 1; i < rows.row_count(); ++i) {
    int64_t prev = rows.rows()[i - 1].at(0).AsInt();
    int64_t cur = rows.rows()[i].at(0).AsInt();
    EXPECT_LE(prev, cur);
    if (prev == cur) {
      EXPECT_GE(rows.rows()[i - 1].at(1).AsString(),
                rows.rows()[i].at(1).AsString());
    }
  }
}

TEST_F(ExecutorTest, LimitTruncates) {
  RowSet rows = Run("SELECT title FROM MOVIE ORDER BY title LIMIT 2");
  ASSERT_EQ(rows.row_count(), 2u);
  EXPECT_EQ(rows.rows()[0].at(0).AsString(), "2001: A Space Odyssey");
}

TEST_F(ExecutorTest, LimitZeroYieldsNothing) {
  RowSet rows = Run("SELECT title FROM MOVIE LIMIT 0");
  EXPECT_EQ(rows.row_count(), 0u);
}

TEST_F(ExecutorTest, LimitLargerThanResultIsNoop) {
  RowSet rows = Run("SELECT title FROM MOVIE LIMIT 100");
  EXPECT_EQ(rows.row_count(), 6u);
}

TEST_F(ExecutorTest, OrderByUnknownColumnFails) {
  SelectQuery q = *ParseSelect("SELECT title FROM MOVIE ORDER BY rating");
  EXPECT_FALSE(executor_.Execute(q, nullptr).ok());
}

TEST_F(ExecutorTest, StatsCountBlocksOncePerScan) {
  ExecStats stats;
  Run("SELECT title FROM MOVIE", &stats);
  const storage::Table* movie = *db_.GetTable("MOVIE");
  EXPECT_EQ(stats.blocks_read, movie->blocks());
  EXPECT_GE(stats.tuples_processed, movie->row_count());
}

TEST_F(ExecutorTest, StatsSumBlocksAcrossJoin) {
  ExecStats stats;
  Run("SELECT M.title FROM MOVIE M, DIRECTOR D WHERE M.did = D.did", &stats);
  uint64_t expect = (*db_.GetTable("MOVIE"))->blocks() +
                    (*db_.GetTable("DIRECTOR"))->blocks();
  EXPECT_EQ(stats.blocks_read, expect);
}

TEST_F(ExecutorTest, SimulatedMillisUsesCostParams) {
  ExecStats stats;
  stats.blocks_read = 10;
  stats.tuples_processed = 2000;
  CostModelParams params;  // 1 ms/block, 0.2 us/tuple
  EXPECT_DOUBLE_EQ(stats.SimulatedMillis(params), 10.0 + 0.4);
}

// ---------- ExecuteUnionGroup ----------

TEST_F(ExecutorTest, UnionGroupIntersects) {
  auto q = *sql::ParseUnionGroup(
      "SELECT title FROM ("
      "  SELECT DISTINCT M.title FROM MOVIE M, DIRECTOR D"
      "    WHERE M.did = D.did AND D.name = 'W. Allen'"
      "  UNION ALL"
      "  SELECT DISTINCT M.title FROM MOVIE M, GENRE G"
      "    WHERE M.mid = G.mid AND G.genre = 'musical'"
      ") GROUP BY title HAVING COUNT(*) = 2");
  ExecStats stats;
  auto rows = *executor_.ExecuteUnionGroup(q, &stats);
  ASSERT_EQ(rows.row_count(), 1u);
  EXPECT_EQ(rows.rows()[0].at(0).AsString(), "Everyone Says I Love You");
  EXPECT_GT(stats.blocks_read, 0u);
}

TEST_F(ExecutorTest, UnionGroupCountOneIsUnion) {
  auto q = *sql::ParseUnionGroup(
      "SELECT title FROM ("
      "  SELECT DISTINCT title FROM MOVIE WHERE MOVIE.year < 1965"
      "  UNION ALL"
      "  SELECT DISTINCT title FROM MOVIE WHERE MOVIE.year > 1990"
      ") GROUP BY title HAVING COUNT(*) = 1");
  auto rows = *executor_.ExecuteUnionGroup(q, nullptr);
  EXPECT_EQ(rows.row_count(), 3u);  // Psycho, Vertigo + Everyone Says
}

TEST_F(ExecutorTest, UnionGroupWithoutDistinctCountsDuplicates) {
  // SQL semantics: "Psycho" has two genre rows, so a non-DISTINCT branch
  // emits it twice and COUNT(*) = 2 is reached within one branch.
  auto q = *sql::ParseUnionGroup(
      "SELECT title FROM ("
      "  SELECT M.title FROM MOVIE M, GENRE G WHERE M.mid = G.mid"
      "    AND M.did = 3"
      "  UNION ALL"
      "  SELECT title FROM MOVIE WHERE MOVIE.year > 2030"
      ") GROUP BY title HAVING COUNT(*) = 2");
  auto rows = *executor_.ExecuteUnionGroup(q, nullptr);
  ASSERT_EQ(rows.row_count(), 1u);
  EXPECT_EQ(rows.rows()[0].at(0).AsString(), "Psycho");
}

TEST_F(ExecutorTest, UnionGroupRejectsBadHavingCount) {
  auto q = *sql::ParseUnionGroup(
      "SELECT title FROM (SELECT title FROM MOVIE) "
      "GROUP BY title HAVING COUNT(*) = 2");
  EXPECT_FALSE(executor_.ExecuteUnionGroup(q, nullptr).ok());
}

// ---------- Personalized execution ----------

class PersonalizedExecTest : public ExecutorTest {
 protected:
  SelectQuery Sub(const std::string& sql) { return *ParseSelect(sql); }
};

TEST_F(PersonalizedExecTest, IntersectionSemantics) {
  // Paper §4.2 example: Allen movies ∩ musical movies = one title.
  std::vector<SelectQuery> subs = {
      Sub("SELECT M.title FROM MOVIE M, DIRECTOR D "
          "WHERE M.did = D.did AND D.name = 'W. Allen'"),
      Sub("SELECT M.title FROM MOVIE M, GENRE G "
          "WHERE M.mid = G.mid AND G.genre = 'musical'"),
  };
  auto result = *ExecutePersonalized(executor_, subs, {0.8, 0.45},
                                     CombineMode::kIntersection, nullptr);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].row.at(0).AsString(), "Everyone Says I Love You");
  // doi of both preferences: 1 - 0.2*0.55
  EXPECT_NEAR(result.rows[0].doi, 1.0 - 0.2 * 0.55, 1e-12);
}

TEST_F(PersonalizedExecTest, RankedUnionOrdersByDoi) {
  std::vector<SelectQuery> subs = {
      Sub("SELECT M.title FROM MOVIE M, DIRECTOR D "
          "WHERE M.did = D.did AND D.name = 'W. Allen'"),
      Sub("SELECT M.title FROM MOVIE M, GENRE G "
          "WHERE M.mid = G.mid AND G.genre = 'comedy'"),
  };
  auto result = *ExecutePersonalized(executor_, subs, {0.8, 0.45},
                                     CombineMode::kRankedUnion, nullptr);
  ASSERT_GE(result.rows.size(), 2u);
  // Rows satisfying both preferences rank first.
  EXPECT_EQ(result.rows[0].satisfied.size(), 2u);
  for (size_t i = 1; i < result.rows.size(); ++i) {
    EXPECT_GE(result.rows[i - 1].doi, result.rows[i].doi);
  }
}

TEST_F(PersonalizedExecTest, DuplicateJoinRowsDoNotFakeIntersection) {
  // "Psycho" has two genres; a single sub-query joining GENRE twice could
  // produce duplicate titles. The per-sub-query DISTINCT must prevent one
  // preference from counting twice.
  std::vector<SelectQuery> subs = {
      Sub("SELECT M.title FROM MOVIE M, GENRE G WHERE M.mid = G.mid"),
      Sub("SELECT M.title FROM MOVIE M WHERE M.year < 1900"),
  };
  auto result = *ExecutePersonalized(executor_, subs, {0.5, 0.5},
                                     CombineMode::kIntersection, nullptr);
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(PersonalizedExecTest, MismatchedAritiesFail) {
  std::vector<SelectQuery> subs = {
      Sub("SELECT title FROM MOVIE"),
      Sub("SELECT title, year FROM MOVIE"),
  };
  EXPECT_FALSE(ExecutePersonalized(executor_, subs, {0.5, 0.5},
                                   CombineMode::kIntersection, nullptr)
                   .ok());
}

TEST_F(PersonalizedExecTest, EmptySubqueryListFails) {
  EXPECT_FALSE(ExecutePersonalized(executor_, {}, {},
                                   CombineMode::kIntersection, nullptr)
                   .ok());
}

TEST_F(PersonalizedExecTest, DoiVectorMustParallelSubqueries) {
  std::vector<SelectQuery> subs = {Sub("SELECT title FROM MOVIE")};
  EXPECT_FALSE(ExecutePersonalized(executor_, subs, {0.5, 0.1},
                                   CombineMode::kIntersection, nullptr)
                   .ok());
}

}  // namespace
}  // namespace cqp::exec
