#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "catalog/constraints.h"
#include "construct/personalizer.h"
#include "construct/query_builder.h"
#include "rewrite/ir.h"
#include "rewrite/passes.h"
#include "rewrite/range.h"
#include "space/preference_space.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "storage/constraints.h"
#include "test_util.h"

namespace cqp::rewrite {
namespace {

using catalog::CompareOp;
using catalog::ConstraintSet;
using catalog::DomainConstraint;
using catalog::ImplicationConstraint;
using catalog::Value;
using sql::ColumnRef;
using sql::ParseSelect;
using sql::Predicate;

// ---------------------------------------------------------------------------
// ValueRange
// ---------------------------------------------------------------------------

TEST(ValueRangeTest, DisjointBoundsAreEmpty) {
  ValueRange r;
  r.Intersect(CompareOp::kGt, Value(int64_t{5}));
  r.Intersect(CompareOp::kLt, Value(int64_t{3}));
  EXPECT_TRUE(r.Empty());
}

TEST(ValueRangeTest, TouchingStrictBoundsAreEmpty) {
  ValueRange r;
  r.Intersect(CompareOp::kGe, Value(int64_t{5}));
  r.Intersect(CompareOp::kLt, Value(int64_t{5}));
  EXPECT_TRUE(r.Empty());
}

TEST(ValueRangeTest, EqualityExcludedByNe) {
  ValueRange r;
  r.Intersect(CompareOp::kEq, Value("horror"));
  EXPECT_FALSE(r.Empty());
  r.Intersect(CompareOp::kNe, Value("horror"));
  EXPECT_TRUE(r.Empty());
}

TEST(ValueRangeTest, TighterBoundImpliesLooserConjunct) {
  ValueRange r;
  r.Intersect(CompareOp::kGe, Value(int64_t{1970}));
  EXPECT_TRUE(r.Implies(CompareOp::kGe, Value(int64_t{1960})));
  EXPECT_TRUE(r.Implies(CompareOp::kGt, Value(int64_t{1969})));
  EXPECT_FALSE(r.Implies(CompareOp::kGe, Value(int64_t{1980})));
  EXPECT_FALSE(r.Implies(CompareOp::kLe, Value(int64_t{2000})));
}

TEST(ValueRangeTest, EmptyRangeImpliesVacuously) {
  ValueRange r;
  r.Intersect(CompareOp::kGt, Value(int64_t{10}));
  r.Intersect(CompareOp::kLt, Value(int64_t{0}));
  ASSERT_TRUE(r.Empty());
  EXPECT_TRUE(r.Implies(CompareOp::kEq, Value("anything")));
}

TEST(ValueRangeTest, TypeConflictPoisonsConservatively) {
  ValueRange r;
  r.Intersect(CompareOp::kGt, Value(int64_t{5}));
  r.Intersect(CompareOp::kLt, Value("abc"));
  EXPECT_TRUE(r.unusable());
  // An unusable range proves nothing in either direction.
  EXPECT_FALSE(r.Empty());
  EXPECT_FALSE(r.Implies(CompareOp::kGt, Value(int64_t{0})));
  EXPECT_TRUE(r.MayContain(Value(int64_t{42})));
}

TEST(ValueRangeTest, MayContainRespectsBoundsAndExclusions) {
  ValueRange r;
  r.Intersect(CompareOp::kGe, Value(int64_t{1960}));
  r.Intersect(CompareOp::kLe, Value(int64_t{1990}));
  r.Intersect(CompareOp::kNe, Value(int64_t{1970}));
  EXPECT_TRUE(r.MayContain(Value(int64_t{1980})));
  EXPECT_FALSE(r.MayContain(Value(int64_t{1959})));
  EXPECT_FALSE(r.MayContain(Value(int64_t{1991})));
  EXPECT_FALSE(r.MayContain(Value(int64_t{1970})));
}

// ---------------------------------------------------------------------------
// Constraint language
// ---------------------------------------------------------------------------

TEST(ConstraintSetTest, ToTextRoundTrips) {
  ConstraintSet set;
  set.AddKey({"MOVIE", {"mid"}});
  set.AddKey({"GENRE", {"mid", "genre"}});
  set.AddDomain({"MOVIE", "year", Value(int64_t{1930}), Value(int64_t{2005})});
  set.AddDomain({"GENRE", "genre", Value("comedy"), std::nullopt});
  set.AddImplication({"GENRE", "genre", Value("horror"), "rating",
                      CompareOp::kGe, Value("R")});

  auto reparsed = catalog::ParseConstraintSet(set.ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToText(), set.ToText());
  EXPECT_EQ(reparsed->size(), set.size());
}

TEST(ConstraintSetTest, ParseRejectsCrossRelationImplication) {
  auto parsed = catalog::ParseConstraintSet(
      "imply GENRE.genre = 'horror' => MOVIE.year >= 1960");
  EXPECT_FALSE(parsed.ok());
}

TEST(ConstraintSetTest, ParseRejectsMalformedLine) {
  EXPECT_FALSE(catalog::ParseConstraintSet("domain MOVIE.year [1, 2]").ok());
  EXPECT_FALSE(catalog::ParseConstraintSet("frobnicate MOVIE").ok());
}

TEST(ConstraintSetTest, ParseAcceptsCommentsAndOpenBounds) {
  auto parsed = catalog::ParseConstraintSet(R"(
# mined 2005-01-01
domain MOVIE.year in [1930, *]

key MOVIE(mid)
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->domains().size(), 1u);
  EXPECT_FALSE(parsed->domains()[0].max.has_value());
  EXPECT_EQ(parsed->keys().size(), 1u);
}

TEST(ConstraintSetTest, LookupsAreCaseInsensitive) {
  ConstraintSet set;
  set.AddDomain({"MOVIE", "year", Value(int64_t{1930}), Value(int64_t{2005})});
  EXPECT_EQ(set.DomainsFor("movie", "YEAR").size(), 1u);
  EXPECT_EQ(set.DomainsFor("movie", "mid").size(), 0u);
}

// ---------------------------------------------------------------------------
// Satisfiability core
// ---------------------------------------------------------------------------

ConstraintSet HorrorConstraints() {
  ConstraintSet set;
  set.AddDomain({"MOVIE", "year", Value(int64_t{1958}), Value(int64_t{1996})});
  set.AddImplication({"GENRE", "genre", Value("horror"), "rating",
                      CompareOp::kGe, Value("R")});
  return set;
}

TEST(ConjunctsUnsatisfiableTest, DomainContradictionDetected) {
  AliasMap aliases{{"MOVIE", "MOVIE"}};
  std::vector<Predicate> conjuncts{Predicate::Selection(
      ColumnRef{"MOVIE", "year"}, CompareOp::kGe, Value(int64_t{2100}))};
  EXPECT_TRUE(ConjunctsUnsatisfiable(conjuncts, aliases, HorrorConstraints()));

  conjuncts[0] = Predicate::Selection(ColumnRef{"MOVIE", "year"},
                                      CompareOp::kGe, Value(int64_t{1970}));
  EXPECT_FALSE(ConjunctsUnsatisfiable(conjuncts, aliases, HorrorConstraints()));
}

TEST(ConjunctsUnsatisfiableTest, ImplicationContradictionDetected) {
  AliasMap aliases{{"G", "GENRE"}};
  std::vector<Predicate> conjuncts{
      Predicate::Selection(ColumnRef{"G", "genre"}, CompareOp::kEq,
                           Value("horror")),
      Predicate::Selection(ColumnRef{"G", "rating"}, CompareOp::kEq,
                           Value("G"))};
  // genre='horror' forces rating>='R', which contradicts rating='G'.
  EXPECT_TRUE(ConjunctsUnsatisfiable(conjuncts, aliases, HorrorConstraints()));

  conjuncts[1] = Predicate::Selection(ColumnRef{"G", "rating"}, CompareOp::kEq,
                                      Value("R"));
  EXPECT_FALSE(ConjunctsUnsatisfiable(conjuncts, aliases, HorrorConstraints()));
}

TEST(ConjunctsUnsatisfiableTest, SelfContradictionNeedsNoConstraints) {
  AliasMap aliases{{"MOVIE", "MOVIE"}};
  std::vector<Predicate> conjuncts{
      Predicate::Selection(ColumnRef{"MOVIE", "year"}, CompareOp::kGt,
                           Value(int64_t{1980})),
      Predicate::Selection(ColumnRef{"MOVIE", "year"}, CompareOp::kLt,
                           Value(int64_t{1970}))};
  EXPECT_TRUE(ConjunctsUnsatisfiable(conjuncts, aliases, ConstraintSet()));
}

TEST(ConjunctsUnsatisfiableTest, JoinConjunctsIgnored) {
  AliasMap aliases{{"MOVIE", "MOVIE"}, {"G", "GENRE"}};
  std::vector<Predicate> conjuncts{Predicate::Join(
      ColumnRef{"MOVIE", "mid"}, CompareOp::kEq, ColumnRef{"G", "mid"})};
  EXPECT_FALSE(ConjunctsUnsatisfiable(conjuncts, aliases, HorrorConstraints()));
}

// ---------------------------------------------------------------------------
// IR passes
// ---------------------------------------------------------------------------

BranchIR MakeBranch(const std::string& sql, std::vector<int32_t> prefs,
                    double doi) {
  BranchIR branch;
  branch.query = *ParseSelect(sql);
  branch.prefs = std::move(prefs);
  branch.doi = doi;
  return branch;
}

QueryIR MakeIR(const std::string& base_sql, std::vector<BranchIR> branches) {
  QueryIR ir;
  ir.base = *ParseSelect(base_sql);
  ir.branches = std::move(branches);
  return ir;
}

TEST(EliminateRedundantConjunctsTest, DropsDomainTautology) {
  // year >= 1900 is implied by the domain [1958, 1996]; year >= 1970 is not.
  QueryIR ir = MakeIR(
      "SELECT MOVIE.title FROM MOVIE",
      {MakeBranch("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.year >= 1900 "
                  "AND MOVIE.year >= 1970",
                  {0}, 0.6)});
  RewriteStats stats;
  ir = EliminateRedundantConjuncts(std::move(ir), HorrorConstraints(), &stats);
  ASSERT_EQ(ir.branches.size(), 1u);
  ASSERT_EQ(ir.branches[0].query.where.size(), 1u);
  EXPECT_EQ(ir.branches[0].query.where[0].literal.AsInt(), 1970);
  EXPECT_EQ(stats.conjuncts_dropped, 1u);
}

TEST(EliminateRedundantConjunctsTest, DropsDuplicateAndMirroredJoin) {
  QueryIR ir = MakeIR("SELECT MOVIE.title FROM MOVIE",
                      {MakeBranch("SELECT MOVIE.title FROM MOVIE, GENRE g "
                                  "WHERE MOVIE.mid = g.mid",
                                  {0}, 0.5)});
  // Append the mirrored spelling of the same join and an exact duplicate
  // selection.
  ir.branches[0].query.where.push_back(Predicate::Join(
      ColumnRef{"g", "mid"}, CompareOp::kEq, ColumnRef{"MOVIE", "mid"}));
  ir.branches[0].query.where.push_back(Predicate::Selection(
      ColumnRef{"g", "genre"}, CompareOp::kEq, Value("horror")));
  ir.branches[0].query.where.push_back(Predicate::Selection(
      ColumnRef{"g", "genre"}, CompareOp::kEq, Value("horror")));
  RewriteStats stats;
  ir = EliminateRedundantConjuncts(std::move(ir), ConstraintSet(), &stats);
  ASSERT_EQ(ir.branches.size(), 1u);
  EXPECT_EQ(ir.branches[0].query.where.size(), 2u);
  EXPECT_EQ(stats.conjuncts_dropped, 2u);
}

TEST(EliminateRedundantConjunctsTest, DropsImplicationRedundantConjunct) {
  // genre='horror' already forces rating >= 'R' >= 'PG'.
  QueryIR ir = MakeIR(
      "SELECT MOVIE.title FROM MOVIE",
      {MakeBranch("SELECT MOVIE.title FROM MOVIE, GENRE g WHERE "
                  "g.genre = 'horror' AND g.rating >= 'PG'",
                  {0}, 0.4)});
  RewriteStats stats;
  ir = EliminateRedundantConjuncts(std::move(ir), HorrorConstraints(), &stats);
  ASSERT_EQ(ir.branches.size(), 1u);
  EXPECT_EQ(ir.branches[0].query.where.size(), 1u);
  EXPECT_EQ(stats.conjuncts_dropped, 1u);
}

TEST(DropContradictedBranchesTest, DropsOnlyTheContradictedBranch) {
  QueryIR ir = MakeIR(
      "SELECT MOVIE.title FROM MOVIE",
      {MakeBranch("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.year >= 2100",
                  {0}, 0.7),
       MakeBranch("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.year >= 1970",
                  {1}, 0.6)});
  RewriteStats stats;
  ir = DropContradictedBranches(std::move(ir), HorrorConstraints(), &stats);
  ASSERT_EQ(ir.branches.size(), 1u);
  EXPECT_EQ(ir.branches[0].prefs, std::vector<int32_t>{1});
  EXPECT_EQ(stats.branches_contradicted, 1u);
}

TEST(DropContradictedBranchesTest, AllContradictedLeavesZeroBranches) {
  // Dropping every branch is legal: zero branches IS the original query,
  // never an empty union.
  QueryIR ir = MakeIR(
      "SELECT MOVIE.title FROM MOVIE",
      {MakeBranch("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.year >= 2100",
                  {0}, 0.7),
       MakeBranch("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.year <= 1900",
                  {1}, 0.6)});
  RewriteStats stats;
  ir = DropContradictedBranches(std::move(ir), HorrorConstraints(), &stats);
  EXPECT_TRUE(ir.branches.empty());
  EXPECT_EQ(stats.branches_contradicted, 2u);
}

TEST(MergeSubsumedBranchesTest, WeakerBranchFoldsIntoStronger) {
  // Branch 0's conjuncts are a strict subset of branch 1's, so branch 0 is
  // the weaker filter: it survives as merged preference indices and a
  // noisy-or doi on branch 1, and the HAVING count drops by one.
  QueryIR ir = MakeIR(
      "SELECT MOVIE.title FROM MOVIE",
      {MakeBranch("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.year >= 1970",
                  {0}, 0.6),
       MakeBranch("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.year >= 1970 "
                  "AND MOVIE.duration <= 120",
                  {1}, 0.5)});
  RewriteStats stats;
  ir = MergeSubsumedBranches(std::move(ir), &stats);
  ASSERT_EQ(ir.branches.size(), 1u);
  EXPECT_EQ(stats.branches_subsumed, 1u);
  EXPECT_EQ(ir.branches[0].query.where.size(), 2u);
  std::vector<int32_t> prefs = ir.branches[0].prefs;
  std::sort(prefs.begin(), prefs.end());
  EXPECT_EQ(prefs, (std::vector<int32_t>{0, 1}));
  EXPECT_NEAR(ir.branches[0].doi, 1.0 - (1.0 - 0.6) * (1.0 - 0.5), 1e-12);
}

TEST(MergeSubsumedBranchesTest, JoinMirroredDuplicatesKeepEarlierBranch) {
  BranchIR first = MakeBranch(
      "SELECT MOVIE.title FROM MOVIE, GENRE p1_genre WHERE "
      "MOVIE.mid = p1_genre.mid AND p1_genre.genre = 'horror'",
      {0}, 0.3);
  BranchIR second = MakeBranch(
      "SELECT MOVIE.title FROM MOVIE, GENRE p1_genre WHERE "
      "p1_genre.genre = 'horror'",
      {1}, 0.4);
  // Same join, mirrored spelling: the two branches are exact duplicates
  // modulo canonicalization.
  second.query.where.push_back(Predicate::Join(
      ColumnRef{"p1_genre", "mid"}, CompareOp::kEq, ColumnRef{"MOVIE", "mid"}));
  QueryIR ir = MakeIR("SELECT MOVIE.title FROM MOVIE", {first, second});
  RewriteStats stats;
  ir = MergeSubsumedBranches(std::move(ir), &stats);
  ASSERT_EQ(ir.branches.size(), 1u);
  EXPECT_EQ(stats.branches_subsumed, 1u);
  // The earlier branch's spelling wins.
  EXPECT_EQ(ir.branches[0].query.where[0].kind, Predicate::Kind::kJoin);
  EXPECT_EQ(ir.branches[0].query.where[0].lhs.qualifier, "MOVIE");
  EXPECT_NEAR(ir.branches[0].doi, 1.0 - (1.0 - 0.3) * (1.0 - 0.4), 1e-12);
}

TEST(MergeSubsumedBranchesTest, IncomparableBranchesUntouched) {
  QueryIR ir = MakeIR(
      "SELECT MOVIE.title FROM MOVIE",
      {MakeBranch("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.year >= 1970",
                  {0}, 0.6),
       MakeBranch("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.duration <= 120",
                  {1}, 0.2)});
  RewriteStats stats;
  ir = MergeSubsumedBranches(std::move(ir), &stats);
  EXPECT_EQ(ir.branches.size(), 2u);
  EXPECT_EQ(stats.branches_subsumed, 0u);
}

// ---------------------------------------------------------------------------
// Fingerprint canonicalization
// ---------------------------------------------------------------------------

TEST(UnionGroupFingerprintTest, BranchOrderInvariant) {
  sql::UnionGroupQuery a;
  a.select_list = {ColumnRef{"", "title"}};
  a.branches = {
      *ParseSelect("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.year >= 1970"),
      *ParseSelect("SELECT MOVIE.title FROM MOVIE, GENRE g WHERE "
                   "MOVIE.mid = g.mid AND g.genre = 'comedy'")};
  a.having_count = 2;

  sql::UnionGroupQuery b = a;
  std::swap(b.branches[0], b.branches[1]);

  EXPECT_EQ(sql::CanonicalQueryText(a), sql::CanonicalQueryText(b));
  EXPECT_EQ(sql::QueryFingerprint(a), sql::QueryFingerprint(b));
  EXPECT_NE(a.ToSql(), b.ToSql());  // the text itself is order-sensitive

  sql::UnionGroupQuery c = a;
  c.having_count = 1;
  EXPECT_NE(sql::QueryFingerprint(a), sql::QueryFingerprint(c));
}

// ---------------------------------------------------------------------------
// Constraint mining
// ---------------------------------------------------------------------------

TEST(DeriveConstraintsTest, MinedSetHoldsOnItsOwnData) {
  storage::Database db = ::cqp::testing::MakeTinyMovieDb();
  auto derived = storage::DeriveConstraints(db);
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  EXPECT_FALSE(derived->empty());
  EXPECT_TRUE(storage::CheckConstraints(db, *derived).ok());

  // MOVIE.mid is unique in the tiny db, so it must be mined as a key, and
  // the year domain must be the exact scan range.
  bool mid_key = false;
  for (const auto& key : derived->keys()) {
    if (key.relation == "MOVIE" && key.attributes.size() == 1 &&
        key.attributes[0] == "mid") {
      mid_key = true;
    }
  }
  EXPECT_TRUE(mid_key);
  auto year = derived->DomainsFor("MOVIE", "year");
  ASSERT_EQ(year.size(), 1u);
  EXPECT_EQ(year[0]->min->AsInt(), 1958);
  EXPECT_EQ(year[0]->max->AsInt(), 1996);
}

TEST(DeriveConstraintsTest, CheckRejectsViolatedDomain) {
  storage::Database db = ::cqp::testing::MakeTinyMovieDb();
  ConstraintSet set;
  set.AddDomain({"MOVIE", "year", Value(int64_t{1990}), std::nullopt});
  EXPECT_FALSE(storage::CheckConstraints(db, set).ok());
}

// ---------------------------------------------------------------------------
// Pipeline integration: pruning, degradation, plan-cache invalidation
// ---------------------------------------------------------------------------

class RewritePipelineTest : public ::testing::Test {
 protected:
  RewritePipelineTest() : db_(::cqp::testing::MakeTinyMovieDb()) {
    db_.SetConstraints(*storage::DeriveConstraints(db_));
  }

  std::unique_ptr<prefs::PersonalizationGraph> Graph(const std::string& text) {
    auto profile = *prefs::Profile::Parse(text);
    return std::make_unique<prefs::PersonalizationGraph>(
        *prefs::PersonalizationGraph::Build(std::move(profile), db_));
  }

  storage::Database db_;
};

TEST_F(RewritePipelineTest, ContradictedPreferencePrunedBeforeSearch) {
  // doi(year >= 2100) contradicts the mined domain [1958, 1996]; the valid
  // preferences must survive.
  auto graph = Graph(R"(
      doi(MOVIE.year >= 2100) = 0.7
      doi(MOVIE.year >= 1970) = 0.6
      doi(MOVIE.duration <= 120) = 0.2
  )");
  estimation::ParameterEstimator estimator(&db_);
  auto q = *ParseSelect("SELECT title FROM MOVIE");

  space::PreferenceSpaceOptions options;
  options.constraints = &db_.constraints();
  auto pruned = *space::ExtractPreferenceSpace(q, *graph, estimator, options);
  EXPECT_EQ(pruned.K(), 2u);
  EXPECT_EQ(pruned.constraint_pruned, 1u);

  options.constraint_prune = false;
  auto full = *space::ExtractPreferenceSpace(q, *graph, estimator, options);
  EXPECT_EQ(full.K(), 3u);
  EXPECT_EQ(full.constraint_pruned, 0u);
}

TEST_F(RewritePipelineTest, PreferenceContradictsQueryUsesBaseConjuncts) {
  auto q = *ParseSelect("SELECT title FROM MOVIE WHERE MOVIE.year <= 1965");
  prefs::ImplicitPreference pref;
  pref.selection = prefs::AtomicSelection{"MOVIE", "year", CompareOp::kGe,
                                          Value(int64_t{1970}), 0.6};
  // year <= 1965 (query) ∧ year >= 1970 (preference) is unsatisfiable even
  // without any constraint set.
  EXPECT_TRUE(
      space::PreferenceContradictsQuery(q, pref, catalog::ConstraintSet()));
  auto open = *ParseSelect("SELECT title FROM MOVIE");
  EXPECT_FALSE(
      space::PreferenceContradictsQuery(open, pref, db_.constraints()));
}

TEST_F(RewritePipelineTest, EmptyAfterPruningDegradesToOriginalQuery) {
  // Every profile preference is constraint-contradicted: the admitted space
  // is empty and the personalized query must BE the original query.
  auto graph = Graph("doi(MOVIE.year >= 2100) = 0.7");
  construct::Personalizer personalizer(&db_, graph.get());

  construct::PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(1e9);
  request.algorithm = "auto";
  auto r = personalizer.Personalize(request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->space->K(), 0u);
  EXPECT_EQ(r->space->constraint_pruned, 1u);
  EXPECT_EQ(r->personalized.L(), 0u);

  auto canon = *construct::CanonicalizeSelectList(
      db_, *ParseSelect(request.sql));
  EXPECT_EQ(r->final_sql, canon.ToSql());
}

TEST_F(RewritePipelineTest, DisableRewriteTogglesBothHalves) {
  auto graph = Graph(R"(
      doi(MOVIE.year >= 2100) = 0.7
      doi(MOVIE.year >= 1970) = 0.6
  )");
  construct::Personalizer personalizer(&db_, graph.get());

  construct::PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(1e9);
  request.algorithm = "auto";
  request.disable_rewrite = true;
  auto r = personalizer.Personalize(request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->space->constraint_pruned, 0u);
  EXPECT_EQ(r->space->K(), 2u);
  EXPECT_FALSE(r->personalized.rewrite.changed());
  EXPECT_TRUE(r->personalized.pre_rewrite_sql.empty());
}

TEST_F(RewritePipelineTest, ConstraintRevisionInvalidatesPlanCache) {
  auto graph = Graph(R"(
      doi(MOVIE.year >= 1970) = 0.6
      doi(MOVIE.duration <= 120) = 0.2
  )");
  construct::Personalizer personalizer(&db_, graph.get());
  construct::PlanCache plan_cache;

  construct::PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(1e9);
  request.algorithm = "auto";
  request.plan_cache = &plan_cache;
  request.profile_id = "u1";
  request.profile_version = 1;

  auto cold = personalizer.Personalize(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->plan_cache_hit);
  auto warm = personalizer.Personalize(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);

  // A value-identical constraint swap still bumps the revision: every
  // cached plan must become unreachable, and the fresh answer must match.
  uint64_t revision = db_.constraint_revision();
  db_.SetConstraints(catalog::ConstraintSet(db_.constraints()));
  EXPECT_GT(db_.constraint_revision(), revision);

  auto fresh = personalizer.Personalize(request);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->plan_cache_hit);
  EXPECT_EQ(fresh->final_sql, warm->final_sql);

  // And the new plan is cached under the new revision.
  auto rewarm = personalizer.Personalize(request);
  ASSERT_TRUE(rewarm.ok());
  EXPECT_TRUE(rewarm->plan_cache_hit);
}

TEST_F(RewritePipelineTest, AllBranchesContradictedEmitsBaseQuery) {
  // Defense in depth: hand the builder a chosen preference whose branch is
  // contradicted by the constraints. The contradiction pass drops it and
  // the emitter degrades to the original query — never an empty union.
  auto q = *ParseSelect("SELECT title FROM MOVIE");
  std::vector<estimation::ScoredPreference> prefs(1);
  prefs[0].pref.selection = prefs::AtomicSelection{
      "MOVIE", "year", CompareOp::kGe, Value(int64_t{2100}), 0.7};
  prefs[0].doi = 0.7;
  IndexSet chosen{0};

  auto built = construct::BuildPersonalizedQuery(db_, q, prefs, chosen);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->L(), 0u);
  EXPECT_EQ(built->rewrite.branches_contradicted, 1u);
  auto canon = *construct::CanonicalizeSelectList(db_, q);
  EXPECT_EQ(built->ToSql(), canon.ToSql());
  EXPECT_FALSE(built->pre_rewrite_sql.empty());
}

}  // namespace
}  // namespace cqp::rewrite
