// Property sweeps for the estimation module over randomized databases:
// every estimate must stay inside its mathematical range and respect the
// monotonicity the CQP partial orders (Formulas 4/7/8) depend on.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "estimation/estimate.h"
#include "estimation/evaluator.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "test_util.h"
#include "workload/movie_gen.h"
#include "workload/profile_gen.h"

namespace cqp::estimation {
namespace {

using catalog::CompareOp;
using catalog::Value;

class StatsSweep : public ::testing::TestWithParam<int> {
 protected:
  storage::Database MakeDb(Rng& rng) {
    storage::Database db;
    ::cqp::testing::AddRandomTable(
        rng, db, "R",
        {{"a", catalog::ValueType::kInt},
         {"b", catalog::ValueType::kDouble},
         {"c", catalog::ValueType::kString}},
        1, 300, [](Rng& r, const catalog::AttributeDef& attr) {
          switch (attr.type) {
            case catalog::ValueType::kInt:
              return Value(r.Uniform(-20, 20));
            case catalog::ValueType::kDouble:
              return Value(r.UniformDouble(-5, 5));
            default:
              return Value("s" + std::to_string(r.Uniform(0, 9)));
          }
        });
    db.Analyze(static_cast<size_t>(rng.Uniform(1, 20)));
    return db;
  }
};

TEST_P(StatsSweep, SelectivityAlwaysInUnitInterval) {
  Rng rng = ::cqp::testing::SeededRng(GetParam(), 101);
  storage::Database db = MakeDb(rng);
  ParameterEstimator estimator(&db);
  static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                   CompareOp::kLt, CompareOp::kLe,
                                   CompareOp::kGt, CompareOp::kGe};
  for (int trial = 0; trial < 200; ++trial) {
    CompareOp op = kOps[rng.Uniform(0, 5)];
    int which = static_cast<int>(rng.Uniform(0, 2));
    StatusOr<double> sel = InvalidArgument("unset");
    if (which == 0) {
      sel = estimator.SelectionSelectivity("R", "a", op,
                                           Value(rng.Uniform(-30, 30)));
    } else if (which == 1) {
      sel = estimator.SelectionSelectivity(
          "R", "b", op, Value(rng.UniformDouble(-10, 10)));
    } else {
      sel = estimator.SelectionSelectivity(
          "R", "c", op, Value("s" + std::to_string(rng.Uniform(0, 15))));
    }
    ASSERT_TRUE(sel.ok());
    EXPECT_GE(*sel, 0.0);
    EXPECT_LE(*sel, 1.0);
  }
}

TEST_P(StatsSweep, EqAndNeAreComplements) {
  Rng rng = ::cqp::testing::SeededRng(GetParam(), 211);
  storage::Database db = MakeDb(rng);
  ParameterEstimator estimator(&db);
  for (int trial = 0; trial < 100; ++trial) {
    Value v(rng.Uniform(-25, 25));
    double eq = *estimator.SelectionSelectivity("R", "a", CompareOp::kEq, v);
    double ne = *estimator.SelectionSelectivity("R", "a", CompareOp::kNe, v);
    EXPECT_NEAR(eq + ne, 1.0, 1e-9);
  }
}

TEST_P(StatsSweep, McvMassSumsToAtMostOne) {
  Rng rng = ::cqp::testing::SeededRng(GetParam(), 307);
  storage::Database db = MakeDb(rng);
  const catalog::RelationStats* stats = *db.GetStats("R");
  for (const catalog::AttributeStats& attr : stats->attributes) {
    double total = 0;
    for (const catalog::McvEntry& e : attr.mcvs()) {
      total += attr.EqualitySelectivity(e.value);
    }
    EXPECT_LE(total, 1.0 + 1e-9);
  }
}

TEST_P(StatsSweep, RangeSelectivityMonotoneInThreshold) {
  Rng rng = ::cqp::testing::SeededRng(GetParam(), 401);
  storage::Database db = MakeDb(rng);
  ParameterEstimator estimator(&db);
  double prev = -1;
  for (int x = -25; x <= 25; x += 2) {
    double sel = *estimator.SelectionSelectivity("R", "a", CompareOp::kLt,
                                                 Value(int64_t{x}));
    EXPECT_GE(sel, prev - 1e-12) << "kLt selectivity must grow with x";
    prev = sel;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------- estimation on the movie workload ----------

class MovieEstimates : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::MovieDbConfig config;
    config.n_movies = 1500;
    config.n_directors = 120;
    config.n_actors = 300;
    db_ = new storage::Database(*workload::BuildMovieDatabase(config));
  }
  static storage::Database* db_;
};
storage::Database* MovieEstimates::db_ = nullptr;

TEST_F(MovieEstimates, BaseEstimatesBoundedByCartesianProduct) {
  ParameterEstimator estimator(db_);
  const char* queries[] = {
      "SELECT title FROM MOVIE",
      "SELECT title FROM MOVIE WHERE MOVIE.year >= 1980",
      "SELECT M.title FROM MOVIE M, GENRE G WHERE M.mid = G.mid",
      "SELECT M.title FROM MOVIE M, DIRECTOR D, GENRE G "
      "WHERE M.did = D.did AND M.mid = G.mid",
  };
  for (const char* text : queries) {
    auto q = *sql::ParseSelect(text);
    auto est = *estimator.EstimateBase(q);
    EXPECT_GT(est.cost_ms, 0.0) << text;
    double cartesian = 1.0;
    for (const auto& t : q.from) {
      cartesian *= static_cast<double>((*db_->GetTable(t.relation))
                                           ->row_count());
    }
    EXPECT_GE(est.size, 0.0) << text;
    EXPECT_LE(est.size, cartesian + 1e-6) << text;
  }
}

TEST_F(MovieEstimates, PreferenceEstimatesRespectPartialOrders) {
  ParameterEstimator estimator(db_);
  workload::MovieDbConfig config;
  config.n_movies = 1500;
  config.n_directors = 120;
  config.n_actors = 300;
  auto profile = *workload::GenerateProfile({}, config);
  auto q = *sql::ParseSelect("SELECT title FROM MOVIE");
  auto base = *estimator.EstimateBase(q);

  // Every atomic-selection preference on MOVIE and every 1-join path.
  int checked = 0;
  for (const prefs::AtomicSelection& sel : profile.selections()) {
    prefs::ImplicitPreference pref;
    if (EqualsIgnoreCase(sel.relation, "MOVIE")) {
      pref.selection = sel;
    } else {
      // Find a join edge reaching the selection's relation.
      bool found = false;
      for (const prefs::AtomicJoin& join : profile.joins()) {
        if (EqualsIgnoreCase(join.to_relation, sel.relation) &&
            EqualsIgnoreCase(join.from_relation, "MOVIE")) {
          pref.joins = {join};
          pref.selection = sel;
          found = true;
          break;
        }
      }
      if (!found) continue;
    }
    auto est = estimator.EstimatePreference(base, pref);
    ASSERT_TRUE(est.ok()) << pref.ConditionString();
    EXPECT_GE(est->cost_ms, base.cost_ms) << pref.ConditionString();
    EXPECT_GE(est->selectivity, 0.0);
    EXPECT_LE(est->selectivity, 1.0);
    EXPECT_LE(est->size, base.size + 1e-9) << pref.ConditionString();
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

TEST_F(MovieEstimates, EvaluatorMonotoneOverRandomChains) {
  // Random inclusion chains ∅ ⊂ S1 ⊂ S2 ⊂ ... must have monotone
  // doi/cost/size per Formulas 4, 7, 8.
  Rng rng(99);
  auto space = ::cqp::testing::MakeRandomSpace(rng, 14);
  StateEvaluator eval = space.MakeEvaluator();
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int32_t> order;
    for (int32_t i = 0; i < 14; ++i) order.push_back(i);
    rng.Shuffle(order);
    StateParams prev = eval.EmptyState();
    for (int32_t i : order) {
      StateParams next = eval.ExtendWith(prev, i);
      EXPECT_GE(next.doi, prev.doi - 1e-12);
      EXPECT_GE(next.cost_ms, prev.cost_ms - 1e-9);
      EXPECT_LE(next.size, prev.size + 1e-9);
      prev = next;
    }
  }
}

}  // namespace
}  // namespace cqp::estimation
