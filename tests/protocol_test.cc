// Tests for the server's JSON library and the v1 wire protocol: round
// trips of every request/response variant, strict malformed-frame
// rejection, and the status-code mapping.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "server/json.h"
#include "server/protocol.h"
#include "testing/generator.h"

namespace cqp::server {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, ParsesScalars) {
  EXPECT_TRUE((*JsonValue::Parse("null")).is_null());
  EXPECT_TRUE((*JsonValue::Parse("true")).bool_value());
  EXPECT_FALSE((*JsonValue::Parse("false")).bool_value());
  EXPECT_DOUBLE_EQ((*JsonValue::Parse("-12.5e2")).number_value(), -1250.0);
  EXPECT_EQ((*JsonValue::Parse("\"hi\\n\\\"there\\\"\"")).string_value(),
            "hi\n\"there\"");
}

TEST(Json, ParsesUnicodeEscapes) {
  // é is é (U+00E9, two UTF-8 bytes).
  auto v = JsonValue::Parse("\"caf\\u00e9\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "caf\xc3\xa9");
}

TEST(Json, ParsesNestedStructures) {
  auto v = JsonValue::Parse(R"({"a": [1, 2, {"b": null}], "c": {"d": true}})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_TRUE(a->array_items()[2].Find("b")->is_null());
  EXPECT_TRUE(v->Find("c")->Find("d")->bool_value());
}

TEST(Json, DumpParseRoundTripIsIdentity) {
  JsonValue obj = JsonValue::Object();
  obj.Set("text", JsonValue::Str("line1\nline2\t\"quoted\" \\ slash"));
  obj.Set("n", JsonValue::Number(3.25));
  obj.Set("i", JsonValue::Number(1234567890.0));
  obj.Set("flag", JsonValue::Bool(true));
  obj.Set("nothing", JsonValue::Null());
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Number(-1));
  arr.Append(JsonValue::Str(""));
  obj.Set("arr", std::move(arr));

  std::string dumped = obj.Dump();
  // '\n' must be escaped: the wire framing depends on one-line frames.
  EXPECT_EQ(dumped.find('\n'), std::string::npos);
  auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, obj);
  // Sorted keys make Dump deterministic.
  EXPECT_EQ(parsed->Dump(), dumped);
}

TEST(Json, IntegersPrintWithoutExponent) {
  EXPECT_EQ(JsonValue::Number(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Number(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue::Number(2000000).Dump(), "2000000");
}

TEST(Json, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            "{",       "[1, 2",     "{\"a\": }", "tru",
      "\"unterminated", "{\"a\" 1}", "[1,]",  "{,}",       "nan",
      "1 2",         "{\"a\":1} garbage", "\"bad\\escape\"",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(JsonValue::Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

// ------------------------------------------------------------ requests

TEST(Protocol, PersonalizeRequestRoundTripAllFields) {
  WireRequest request;
  request.op = RequestOp::kPersonalize;
  request.id = "req-42";
  request.personalize.sql = "SELECT title FROM MOVIE";
  request.personalize.profile_id = "alice";
  request.personalize.algorithm = "C-Boundaries";
  request.personalize.deadline_ms = 12.5;
  request.personalize.max_expansions = 100000;
  request.personalize.max_memory_mb = 64.0;
  request.personalize.max_k = 12;
  request.personalize.problem = cqp::ProblemSpec::Problem3(400.0, 1.0, 50.0);

  auto parsed = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, kProtocolVersion);
  EXPECT_EQ(parsed->op, RequestOp::kPersonalize);
  EXPECT_EQ(parsed->id, "req-42");
  const PersonalizePayload& p = parsed->personalize;
  EXPECT_EQ(p.sql, request.personalize.sql);
  EXPECT_EQ(p.profile_id, "alice");
  EXPECT_EQ(p.algorithm, "C-Boundaries");
  EXPECT_DOUBLE_EQ(p.deadline_ms, 12.5);
  EXPECT_EQ(p.max_expansions, 100000u);
  EXPECT_DOUBLE_EQ(p.max_memory_mb, 64.0);
  EXPECT_EQ(p.max_k, 12u);
  ASSERT_TRUE(p.problem.has_value());
  EXPECT_EQ(p.problem->ProblemNumber(), 3);
  EXPECT_DOUBLE_EQ(*p.problem->cmax_ms, 400.0);
  EXPECT_DOUBLE_EQ(*p.problem->smin, 1.0);
  EXPECT_DOUBLE_EQ(*p.problem->smax, 50.0);
}

TEST(Protocol, PersonalizeRequestDefaultsApply) {
  auto parsed = ParseRequest(R"({"v":1,"op":"personalize","sql":"SELECT 1"})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->personalize.profile_id, "default");
  EXPECT_TRUE(parsed->personalize.algorithm.empty());
  EXPECT_DOUBLE_EQ(parsed->personalize.deadline_ms, 0.0);
  EXPECT_FALSE(parsed->personalize.problem.has_value());
}

TEST(Protocol, AdministrativeRequestsRoundTrip) {
  for (RequestOp op : {RequestOp::kPing, RequestOp::kStats,
                       RequestOp::kProfiles, RequestOp::kReload}) {
    WireRequest request;
    request.op = op;
    request.id = "x";
    auto parsed = ParseRequest(SerializeRequest(request));
    ASSERT_TRUE(parsed.ok()) << RequestOpName(op);
    EXPECT_EQ(parsed->op, op);
    EXPECT_EQ(parsed->id, "x");
  }
}

TEST(Protocol, MinCostProblemRoundTrips) {
  WireRequest request;
  request.op = RequestOp::kPersonalize;
  request.personalize.sql = "SELECT 1";
  request.personalize.problem = cqp::ProblemSpec::Problem6(1.0, 100.0);
  auto parsed = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->personalize.problem->objective,
            cqp::Objective::kMinimizeCost);
}

TEST(Protocol, RejectsMalformedRequests) {
  const char* bad[] = {
      // not JSON at all
      "hello",
      // not an object
      "[1,2,3]",
      // missing op
      R"({"v":1})",
      // unknown op
      R"({"v":1,"op":"frobnicate"})",
      // unsupported version
      R"({"v":2,"op":"ping"})",
      // wrong version type
      R"({"v":"one","op":"ping"})",
      // personalize without sql
      R"({"v":1,"op":"personalize"})",
      // empty sql
      R"({"v":1,"op":"personalize","sql":""})",
      // sql of the wrong type
      R"({"v":1,"op":"personalize","sql":17})",
      // empty profile id
      R"({"v":1,"op":"personalize","sql":"SELECT 1","profile":""})",
      // negative deadline
      R"({"v":1,"op":"personalize","sql":"SELECT 1","deadline_ms":-5})",
      // max_k beyond the IndexSet bitmask range
      R"({"v":1,"op":"personalize","sql":"SELECT 1","max_k":64})",
      // mistyped budget field
      R"({"v":1,"op":"personalize","sql":"SELECT 1","max_expansions":"lots"})",
      // bad problem objective
      R"({"v":1,"op":"personalize","sql":"SELECT 1","problem":{"objective":"max_fun"}})",
      // problem of the wrong type
      R"({"v":1,"op":"personalize","sql":"SELECT 1","problem":[1]})",
  };
  for (const char* frame : bad) {
    EXPECT_FALSE(ParseRequest(frame).ok()) << "accepted: " << frame;
  }
}

// ----------------------------------------------------------- responses

TEST(Protocol, PersonalizeResponseRoundTripAllFields) {
  WireResponse response;
  response.id = "req-42";
  PersonalizeResultPayload r;
  r.final_sql = "SELECT title FROM MOVIE WHERE year > 1990";
  r.rung = "Primary";
  r.degraded = false;
  r.feasible = true;
  r.chosen = {0, 3, 7};
  r.doi = 0.875;
  r.cost_ms = 123.5;
  r.size = 42.0;
  r.states_examined = 991;
  r.search_wall_ms = 1.75;
  r.eval_cache_hits = 10;
  r.eval_cache_misses = 5;
  r.server_ms = 2.5;
  r.attempts = {"C-MaxBounds: ok"};
  response.personalize = r;

  auto parsed = ParseResponse(SerializeResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ok());
  EXPECT_EQ(parsed->id, "req-42");
  ASSERT_TRUE(parsed->personalize.has_value());
  const PersonalizeResultPayload& q = *parsed->personalize;
  EXPECT_EQ(q.final_sql, r.final_sql);
  EXPECT_EQ(q.rung, "Primary");
  EXPECT_EQ(q.degraded, false);
  EXPECT_EQ(q.feasible, true);
  EXPECT_EQ(q.chosen, (std::vector<int32_t>{0, 3, 7}));
  EXPECT_DOUBLE_EQ(q.doi, 0.875);
  EXPECT_DOUBLE_EQ(q.cost_ms, 123.5);
  EXPECT_DOUBLE_EQ(q.size, 42.0);
  EXPECT_EQ(q.states_examined, 991u);
  EXPECT_DOUBLE_EQ(q.search_wall_ms, 1.75);
  EXPECT_EQ(q.eval_cache_hits, 10u);
  EXPECT_EQ(q.eval_cache_misses, 5u);
  EXPECT_DOUBLE_EQ(q.server_ms, 2.5);
  EXPECT_EQ(q.attempts, r.attempts);
}

TEST(Protocol, ErrorResponseRoundTripsEveryStatusCode) {
  const Status statuses[] = {
      InvalidArgument("bad frame"),   NotFound("no profile"),
      AlreadyExists("dup"),           OutOfRange("k"),
      FailedPrecondition("no dir"),   Unimplemented("nope"),
      Internal("bug"),                Infeasible("no solution"),
      DeadlineExceeded("too slow"),   ResourceExhausted("overloaded"),
  };
  for (const Status& status : statuses) {
    WireResponse response;
    response.id = "e";
    response.status = status;
    auto parsed = ParseResponse(SerializeResponse(response));
    ASSERT_TRUE(parsed.ok()) << status.ToString();
    EXPECT_FALSE(parsed->ok());
    EXPECT_EQ(parsed->status.code(), status.code()) << status.ToString();
    EXPECT_EQ(parsed->status.message(), status.message());
  }
}

TEST(Protocol, UnknownErrorCodeDegradesToInternal) {
  auto parsed = ParseResponse(
      R"({"v":1,"ok":false,"error":{"code":"FancyNewCode","message":"hi"}})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status.code(), StatusCode::kInternal);
  EXPECT_EQ(parsed->status.message(), "hi");
}

TEST(Protocol, ExtraPayloadResponseRoundTrips) {
  WireResponse response;
  response.id = "s";
  response.extra = JsonValue::Object();
  response.extra.Set("pong", JsonValue::Bool(true));
  auto parsed = ParseResponse(SerializeResponse(response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ok());
  EXPECT_FALSE(parsed->personalize.has_value());
  ASSERT_TRUE(parsed->extra.is_object());
  EXPECT_TRUE(parsed->extra.Find("pong")->bool_value());
}

TEST(Protocol, RejectsMalformedResponses) {
  const char* bad[] = {
      "junk",
      "[1]",
      // error response without an error payload
      R"({"v":1,"ok":false})",
      // error payload decoding to OK ("OK" is the kOk wire name; unknown
      // names like "Ok" degrade to kInternal instead — see StatusFromJson)
      R"({"v":1,"ok":false,"error":{"code":"OK","message":""}})",
      // wrong version
      R"({"v":9,"ok":true})",
      // result of the wrong type
      R"({"v":1,"ok":true,"result":[1,2]})",
      // personalize result with mistyped chosen
      R"({"v":1,"ok":true,"result":{"final_sql":"x","rung":"Primary","chosen":"nope"}})",
  };
  for (const char* frame : bad) {
    EXPECT_FALSE(ParseResponse(frame).ok()) << "accepted: " << frame;
  }
}

TEST(Protocol, OversizedFrameIsRejected) {
  std::string big = R"({"v":1,"op":"personalize","sql":")";
  big += std::string(kMaxFrameBytes, 'x');
  big += "\"}";
  EXPECT_FALSE(ParseRequest(big).ok());
  EXPECT_FALSE(ParseResponse(big).ok());
}

// ------------------------------------- generated malformed-frame corpus
//
// The seeded corruption helpers live in src/testing/generator.h and are
// shared with tools/cqp_fuzz. A corrupted frame is not guaranteed to be
// invalid (a byte flip inside a string literal can keep it well-formed),
// so the contract here is: the parsers always return a verdict — never
// crash — and anything they accept must survive a serialize/parse round
// trip.

/// Representative valid frames to corrupt: one of each direction.
std::vector<std::string> BaseFrames() {
  WireRequest request;
  request.op = RequestOp::kPersonalize;
  request.id = "corpus";
  request.personalize.sql = "SELECT title FROM MOVIE";
  request.personalize.problem = cqp::ProblemSpec::Problem3(400.0, 1.0, 50.0);

  WireResponse response;
  response.id = "corpus";
  PersonalizeResultPayload r;
  r.final_sql = "SELECT title FROM MOVIE WHERE year > 1990";
  r.rung = "Primary";
  r.feasible = true;
  r.chosen = {0, 2};
  r.doi = 0.5;
  response.personalize = r;

  WireResponse error;
  error.id = "corpus";
  error.status = Infeasible("no solution");

  return {SerializeRequest(request), SerializeResponse(response),
          SerializeResponse(error)};
}

TEST(ProtocolFuzz, CorruptedFramesNeverCrashAndAcceptedOnesRoundTrip) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    for (const std::string& base : BaseFrames()) {
      std::string frame = ::cqp::testing::CorruptFrame(rng, base);
      auto request = ParseRequest(frame);
      if (request.ok()) {
        EXPECT_TRUE(ParseRequest(SerializeRequest(*request)).ok())
            << "accepted but not round-trippable: " << frame;
      }
      auto response = ParseResponse(frame);
      if (response.ok()) {
        EXPECT_TRUE(ParseResponse(SerializeResponse(*response)).ok())
            << "accepted but not round-trippable: " << frame;
      }
    }
  }
}

TEST(ProtocolFuzz, RandomJunkFramesAreRejected) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 31);
    std::string junk =
        ::cqp::testing::RandomJunk(rng, rng.Uniform(1, 2048));
    EXPECT_FALSE(ParseRequest(junk).ok()) << "accepted: " << junk;
    EXPECT_FALSE(ParseResponse(junk).ok()) << "accepted: " << junk;
  }
}

TEST(ProtocolFuzz, EveryTruncatedPrefixIsRejected) {
  for (const std::string& base : BaseFrames()) {
    for (size_t len = 0; len < base.size(); ++len) {
      std::string prefix = base.substr(0, len);
      EXPECT_FALSE(ParseRequest(prefix).ok()) << "accepted: " << prefix;
      EXPECT_FALSE(ParseResponse(prefix).ok()) << "accepted: " << prefix;
    }
  }
}

TEST(ProtocolFuzz, FrameAtExactlyTheCapParsesAndOneByteOverIsRejected) {
  // Pad the sql payload until the serialized frame is exactly
  // kMaxFrameBytes: that must still parse (the cap is inclusive), and one
  // more byte must be rejected by the size check, not the JSON parser.
  WireRequest request;
  request.op = RequestOp::kPersonalize;
  request.personalize.sql = "S";
  std::string frame = SerializeRequest(request);
  ASSERT_LT(frame.size(), kMaxFrameBytes);
  request.personalize.sql += std::string(kMaxFrameBytes - frame.size(), 'x');
  frame = SerializeRequest(request);
  ASSERT_EQ(frame.size(), kMaxFrameBytes);
  EXPECT_TRUE(ParseRequest(frame).ok());

  request.personalize.sql += 'x';
  frame = SerializeRequest(request);
  ASSERT_EQ(frame.size(), kMaxFrameBytes + 1);
  EXPECT_FALSE(ParseRequest(frame).ok());
}

TEST(ProtocolFuzz, RawNulBytesInsideStringsAreRejected) {
  // A raw NUL is a control character; the JSON grammar requires \u0000 escaping.
  std::string frame = R"({"v":1,"op":"personalize","sql":"SEL)";
  frame += '\0';
  frame += R"(ECT 1"})";
  EXPECT_FALSE(ParseRequest(frame).ok());
  // The escaped form is legal and round-trips through the dumper.
  auto parsed =
      ParseRequest(R"({"v":1,"op":"personalize","sql":"a\u0000b"})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->personalize.sql, std::string("a\0b", 3));
  EXPECT_TRUE(ParseRequest(SerializeRequest(*parsed)).ok());
}

TEST(ProtocolFuzz, InvalidUtf8PassesThroughByteTransparently) {
  // The frame layer is deliberately byte-transparent above 0x7f: lone
  // continuation bytes, overlong encodings, and unpaired surrogates are
  // carried verbatim rather than rejected, so corrupting a profile string
  // can never wedge the connection. What matters is the round trip.
  const char* payloads[] = {"\x80", "\xc0\xaf", "\xed\xa0\x80", "\xff\xfe"};
  for (const char* bytes : payloads) {
    WireRequest request;
    request.op = RequestOp::kPersonalize;
    request.personalize.sql = std::string("SELECT ") + bytes;
    auto parsed = ParseRequest(SerializeRequest(request));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->personalize.sql, request.personalize.sql);
  }
}

TEST(Protocol, SerializedFramesAreSingleLines) {
  WireRequest request;
  request.op = RequestOp::kPersonalize;
  request.personalize.sql = "SELECT title\nFROM MOVIE";  // embedded newline
  std::string frame = SerializeRequest(request);
  EXPECT_EQ(frame.find('\n'), std::string::npos);
  auto parsed = ParseRequest(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->personalize.sql, "SELECT title\nFROM MOVIE");
}

}  // namespace
}  // namespace cqp::server
