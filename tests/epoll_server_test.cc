// Slow-client hardening battery for the epoll event-loop server: raw
// sockets driving the incremental frame decoder one byte at a time,
// frames split at arbitrary boundaries, coalesced requests, the 1 MiB
// frame-cap boundary, slow-loris idle connections, write-queue
// backpressure disconnects, a malformed-frame corpus replayed over the
// wire, and mid-solve connection drops on the event-loop teardown path.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "server/client.h"
#include "server/io_util.h"
#include "server/profile_store.h"
#include "server/server.h"
#include "server/server_stats.h"
#include "test_util.h"
#include "testing/generator.h"

namespace cqp::server {
namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kProfileText =
    "doi(GENRE.genre = 'musical') = 0.5\n"
    "doi(MOVIE.mid = GENRE.mid) = 0.9\n"
    "doi(DIRECTOR.name = 'W. Allen') = 0.8\n"
    "doi(MOVIE.did = DIRECTOR.did) = 1.0\n"
    "doi(MOVIE.year > 1990) = 0.6\n";

constexpr const char* kQuery = "SELECT title FROM MOVIE";

prefs::Profile TestProfile() { return *prefs::Profile::Parse(kProfileText); }

/// A raw client socket with line-oriented reads: the test's view of the
/// wire, with none of Client's conveniences in the way.
class RawConn {
 public:
  RawConn() = default;
  ~RawConn() { Close(); }

  bool Connect(int port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1) return false;
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool Send(const std::string& data) {
    return SendAll(fd_, data.data(), data.size());
  }

  /// Writes `data` one byte per send() call — the pathological slow
  /// client the decoder must tolerate.
  bool SendByByte(const std::string& data) {
    for (char c : data) {
      if (!SendAll(fd_, &c, 1)) return false;
    }
    return true;
  }

  /// Reads one '\n'-terminated line (stripped). Empty string on timeout,
  /// EOF or error; eof() distinguishes.
  std::string ReadLine(int timeout_ms = 10000) {
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      int remaining = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                Clock::now())
              .count());
      if (remaining <= 0) return "";
      pollfd pfd{fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, remaining);
      if (ready <= 0) return "";
      char chunk[4096];
      ssize_t n = ReadSome(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        eof_ = true;
        return "";
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True once the server closed its end (observed by ReadLine).
  bool eof() const { return eof_; }

  int fd() const { return fd_; }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
  bool eof_ = false;
};

class EpollServerTest : public ::testing::Test {
 protected:
  EpollServerTest() : db_(::cqp::testing::MakeTinyMovieDb()) {}

  void StartServer(ServerOptions options = ServerOptions()) {
    profiles_ = std::make_unique<ProfileStore>(&db_);
    ASSERT_TRUE(profiles_->Put("default", TestProfile()).ok());
    options.port = 0;  // ephemeral
    server_ = std::make_unique<Server>(&db_, profiles_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  WireRequest PersonalizeRequestFor(const std::string& sql,
                                    const std::string& id = "") {
    WireRequest request;
    request.op = RequestOp::kPersonalize;
    request.id = id;
    request.personalize.sql = sql;
    return request;
  }

  static WireRequest Ping(const std::string& id) {
    WireRequest ping;
    ping.op = RequestOp::kPing;
    ping.id = id;
    return ping;
  }

  storage::Database db_;
  std::unique_ptr<ProfileStore> profiles_;
  std::unique_ptr<Server> server_;
};

// ------------------------------------------- slow clients / partial frames

TEST_F(EpollServerTest, OneByteAtATimePingIsByteIdenticalToSingleSend) {
  StartServer();
  const std::string frame = SerializeRequest(Ping("drip")) + "\n";

  // Reference: the blocking path — the whole frame in one send.
  RawConn whole;
  ASSERT_TRUE(whole.Connect(server_->port()));
  ASSERT_TRUE(whole.Send(frame));
  std::string expected = whole.ReadLine();
  ASSERT_FALSE(expected.empty());

  // The same frame dribbled one byte per send must produce the exact
  // same response bytes.
  RawConn drip;
  ASSERT_TRUE(drip.Connect(server_->port()));
  ASSERT_TRUE(drip.SendByByte(frame));
  EXPECT_EQ(drip.ReadLine(), expected);
}

TEST_F(EpollServerTest, DribbledPersonalizeMatchesSingleSendAnswer) {
  StartServer();
  const std::string frame =
      SerializeRequest(PersonalizeRequestFor(kQuery, "drip")) + "\n";

  RawConn whole;
  ASSERT_TRUE(whole.Connect(server_->port()));
  ASSERT_TRUE(whole.Send(frame));
  auto expected = ParseResponse(whole.ReadLine());
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(expected->personalize.has_value());

  RawConn drip;
  ASSERT_TRUE(drip.Connect(server_->port()));
  ASSERT_TRUE(drip.SendByByte(frame));
  auto got = ParseResponse(drip.ReadLine());
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->ok()) << got->status.ToString();
  ASSERT_TRUE(got->personalize.has_value());
  // Identical answer (server_ms is wall time and legitimately differs).
  EXPECT_EQ(got->personalize->final_sql, expected->personalize->final_sql);
  EXPECT_EQ(got->personalize->chosen, expected->personalize->chosen);
  EXPECT_EQ(got->personalize->doi, expected->personalize->doi);
  EXPECT_EQ(got->personalize->cost_ms, expected->personalize->cost_ms);
  EXPECT_EQ(got->personalize->size, expected->personalize->size);
  EXPECT_EQ(got->personalize->feasible, expected->personalize->feasible);
  EXPECT_EQ(got->personalize->rung, expected->personalize->rung);
}

TEST_F(EpollServerTest, FramesSplitAtArbitraryBoundariesAllAnswer) {
  ServerOptions options;
  options.num_threads = 1;  // single worker: responses come back in order
  StartServer(options);
  const std::string two =
      SerializeRequest(PersonalizeRequestFor(kQuery, "a")) + "\n" +
      SerializeRequest(PersonalizeRequestFor(kQuery, "b")) + "\n";

  // Slice the two-request payload at a spread of boundaries, including
  // mid-frame and exactly on the newline.
  for (size_t split : {size_t{1}, two.size() / 3, two.size() / 2,
                       two.find('\n'), two.find('\n') + 1, two.size() - 1}) {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server_->port()));
    ASSERT_TRUE(conn.Send(two.substr(0, split)));
    // A pause between the halves so the server actually sees two reads.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(conn.Send(two.substr(split)));
    auto first = ParseResponse(conn.ReadLine());
    auto second = ParseResponse(conn.ReadLine());
    ASSERT_TRUE(first.ok()) << "split at " << split;
    ASSERT_TRUE(second.ok()) << "split at " << split;
    EXPECT_EQ(first->id, "a");
    EXPECT_EQ(second->id, "b");
    EXPECT_TRUE(first->ok());
    EXPECT_TRUE(second->ok());
  }
}

TEST_F(EpollServerTest, CoalescedRequestsInOneSendBothAnswerInOrder) {
  StartServer();
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  // Administrative ops answer inline on the loop, so ordering is exact.
  ASSERT_TRUE(conn.Send(SerializeRequest(Ping("one")) + "\n" +
                        SerializeRequest(Ping("two")) + "\n"));
  auto first = ParseResponse(conn.ReadLine());
  auto second = ParseResponse(conn.ReadLine());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->id, "one");
  EXPECT_EQ(second->id, "two");
}

// --------------------------------------------------- frame-cap boundary

/// A personalize request padded so the serialized frame is exactly
/// `bytes` long (the sql payload absorbs the padding).
std::string FrameOfExactly(size_t bytes, const std::string& id) {
  WireRequest request;
  request.op = RequestOp::kPersonalize;
  request.id = id;
  request.personalize.sql = "S";
  std::string frame = SerializeRequest(request);
  CQP_CHECK(frame.size() < bytes);
  request.personalize.sql += std::string(bytes - frame.size(), 'x');
  frame = SerializeRequest(request);
  CQP_CHECK(frame.size() == bytes);
  return frame;
}

TEST_F(EpollServerTest, FrameAtExactlyTheCapIsServed) {
  StartServer();
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  // The cap is inclusive: exactly kMaxFrameBytes must reach the engine
  // (the padded sql is nonsense, so the answer is a typed error — the
  // point is a response arrives and the connection survives).
  ASSERT_TRUE(conn.Send(FrameOfExactly(kMaxFrameBytes, "fat") + "\n"));
  auto response = ParseResponse(conn.ReadLine(30000));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->id, "fat");

  ASSERT_TRUE(conn.Send(SerializeRequest(Ping("alive")) + "\n"));
  auto pong = ParseResponse(conn.ReadLine());
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->id, "alive");
}

TEST_F(EpollServerTest, FrameOnePastTheCapGetsTypedErrorThenClose) {
  StartServer();
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));
  // One byte past the cap, no newline yet: the decoder must refuse to
  // buffer further, answer with a typed error and close.
  ASSERT_TRUE(conn.Send(std::string(kMaxFrameBytes + 1, 'x')));
  auto response = ParseResponse(conn.ReadLine(30000));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(response->status.message().find("frame exceeds"),
            std::string::npos);
  EXPECT_TRUE(conn.ReadLine(5000).empty());
  EXPECT_TRUE(conn.eof());
}

// ------------------------------------------- slow-loris and backpressure

TEST_F(EpollServerTest, IdleHalfOpenConnectionsDoNotConsumeWorkers) {
  ServerOptions options;
  options.num_threads = 1;  // one worker: any stuck thread would show
  options.io_threads = 2;
  StartServer(options);

  // A slow-loris swarm: connections that never complete a frame. Under
  // the old thread-per-connection design each held a reader thread; here
  // they must cost one epoll registration and nothing else.
  constexpr int kIdle = 64;
  std::vector<std::unique_ptr<RawConn>> idle;
  idle.reserve(kIdle);
  for (int i = 0; i < kIdle; ++i) {
    auto conn = std::make_unique<RawConn>();
    ASSERT_TRUE(conn->Connect(server_->port()));
    if (i % 2 == 0) {
      // Half of them dribble a partial frame and stall mid-line.
      ASSERT_TRUE(conn->Send(R"({"v":1,"op":)"));
    }
    idle.push_back(std::move(conn));
  }

  // With the swarm parked, real clients must still be served promptly.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 3; ++i) {
    auto response = client.Call(PersonalizeRequestFor(kQuery));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->ok()) << response->status.ToString();
  }
  EXPECT_EQ(server_->stats().errors_total(), 0u);
  EXPECT_GE(server_->stats().connections_opened(),
            static_cast<uint64_t>(kIdle + 1));
}

TEST_F(EpollServerTest, NeverDrainingReaderIsDisconnectedOthersStayLive) {
  ServerOptions options;
  options.io_threads = 2;
  // Tight budgets so the hoarder trips quickly: tiny server-side socket
  // buffer, low watermark, low hard cap.
  options.so_sndbuf = 4096;
  options.write_queue_watermark_bytes = 16 * 1024;
  options.write_queue_limit_bytes = 64 * 1024;
  StartServer(options);

  // Phase 1 — pause and resume: a client pipelines a ping burst whose
  // responses overflow the watermark (but not the hard cap), stalls, then
  // drains. The loop must pause reading, resume when the queue empties,
  // and deliver every single pong.
  {
    RawConn burst;
    ASSERT_TRUE(burst.Connect(server_->port(), /*rcvbuf=*/4096));
    constexpr int kPings = 2000;
    std::string pings;
    for (int i = 0; i < kPings; ++i) {
      pings += SerializeRequest(Ping("b")) + "\n";
    }
    ASSERT_TRUE(burst.Send(pings));
    // Stall long enough for the queue to cross the watermark and pause.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    int pongs = 0;
    while (pongs < kPings) {
      std::string line = burst.ReadLine(10000);
      ASSERT_FALSE(line.empty()) << "lost responses: got " << pongs << "/"
                                 << kPings;
      auto response = ParseResponse(line);
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response->id, "b");
      ++pongs;
    }
    EXPECT_EQ(pongs, kPings);  // zero lost, zero duplicated
    EXPECT_TRUE(burst.ReadLine(100).empty());
  }

  // Phase 2 — the hoarder: pipelines a flood of stats requests (fat
  // responses) in one send and never reads a byte. A small receive
  // buffer keeps the kernel from absorbing the backlog on its behalf.
  RawConn hoarder;
  ASSERT_TRUE(hoarder.Connect(server_->port(), /*rcvbuf=*/4096));
  std::string flood;
  const std::string stats_frame = SerializeRequest([] {
    WireRequest stats;
    stats.op = RequestOp::kStats;
    return stats;
  }()) + "\n";
  for (int i = 0; i < 2000; ++i) flood += stats_frame;
  // The server stops reading at the watermark, so only part of the flood
  // is ever consumed; the send itself may block or fail once buffers
  // fill. Either is fine — the flood only needs to reach the loop.
  ASSERT_TRUE(SetNonBlocking(hoarder.fd(), true));
  ssize_t sent = ::send(hoarder.fd(), flood.data(), flood.size(), MSG_NOSIGNAL);
  ASSERT_GT(sent, 0);

  // Meanwhile a well-behaved client's latency must stay flat: the loop is
  // not allowed to block on the hoarder's full pipe.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 10; ++i) {
    Clock::time_point start = Clock::now();
    auto pong = client.Call(Ping("live"));
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
    EXPECT_LT(ms, 2000.0) << "round trip " << i << " stalled behind hoarder";
  }

  // The hoarder must be forcibly disconnected once its queue passes the
  // hard cap. Detect the close without ever draining: poll for the reset
  // the server's teardown (shutdown + pending data) produces.
  bool disconnected = false;
  Clock::time_point deadline = Clock::now() + std::chrono::seconds(20);
  while (Clock::now() < deadline) {
    pollfd pfd{hoarder.fd(), POLLIN, 0};
    ::poll(&pfd, 1, 100);
    if (pfd.revents & (POLLERR | POLLHUP)) {
      disconnected = true;
      break;
    }
    // Keep nudging: a send into a reset connection reports EPIPE.
    ssize_t n = ::send(hoarder.fd(), "\n", 1, MSG_NOSIGNAL);
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      disconnected = true;
      break;
    }
  }
  EXPECT_TRUE(disconnected);

  // And the per-loop gauges must record it as a backpressure close.
  auto snapshot = client.Call([] {
    WireRequest stats;
    stats.op = RequestOp::kStats;
    return stats;
  }());
  ASSERT_TRUE(snapshot.ok());
  const JsonValue* loops = snapshot->extra.Find("loops");
  ASSERT_NE(loops, nullptr);
  double backpressure_closes = 0.0;
  double read_pauses = 0.0;
  for (const JsonValue& loop : loops->array_items()) {
    backpressure_closes += loop.Find("backpressure_closes")->number_value();
    read_pauses += loop.Find("read_pauses")->number_value();
  }
  EXPECT_GE(backpressure_closes, 1.0);
  EXPECT_GE(read_pauses, 1.0);
}

// ------------------------------------- malformed-frame corpus over the wire

TEST_F(EpollServerTest, MalformedFrameCorpusReplayConnectionSurvives) {
  StartServer();
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server_->port()));

  const std::string base =
      SerializeRequest(PersonalizeRequestFor(kQuery, "corpus"));
  int round = 0;
  auto replay = [&](const std::string& frame) {
    // Each corrupted frame is chased by a ping: whatever the server made
    // of the garbage (typed error, or a valid parse's answer), the pong
    // must come back on the SAME connection — malformed input never
    // kills the link, only oversized frames do.
    const std::string id = "probe-" + std::to_string(round++);
    ASSERT_TRUE(conn.Send(frame + "\n" + SerializeRequest(Ping(id)) + "\n"));
    for (;;) {
      auto response = ParseResponse(conn.ReadLine(20000));
      ASSERT_TRUE(response.ok())
          << "connection died after frame: " << frame.substr(0, 128);
      if (response->id == id) break;  // earlier lines answer the corruption
    }
  };

  // The PR 4 generated corpus, replayed through a socket instead of the
  // parser: seeded corruptions, printable junk, truncated prefixes of a
  // valid frame, and a raw NUL inside a string literal.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    replay(::cqp::testing::CorruptFrame(rng, base));
    replay(::cqp::testing::RandomJunk(
        rng, static_cast<size_t>(rng.Uniform(1, 2048))));
  }
  for (size_t len : {size_t{1}, base.size() / 2, base.size() - 1}) {
    replay(base.substr(0, len));
  }
  replay(std::string(R"({"v":1,"op":"personalize","sql":"SEL)") +
         std::string(1, '\0') + R"(ECT"})");

  EXPECT_FALSE(conn.eof());
  EXPECT_GT(server_->stats().ToJson().Find("protocol_errors")->number_value(),
            0.0);
}

// ---------------------------------------- teardown / cancellation (e2e)

TEST_F(EpollServerTest, ClientDropMidSolveCancelsInFlightAndQueuedWork) {
  ServerOptions options;
  options.num_threads = 1;  // force queueing behind one worker
  StartServer(options);

  // Pipeline several personalize frames and vanish without reading: the
  // event-loop teardown must cancel the connection token so the queued
  // requests short-circuit instead of burning the worker.
  {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server_->port()));
    std::string frames;
    for (int i = 0; i < 4; ++i) {
      frames += SerializeRequest(PersonalizeRequestFor(kQuery)) + "\n";
    }
    ASSERT_TRUE(conn.Send(frames));
  }  // ~RawConn closes: FIN arrives after the buffered frames

  Clock::time_point deadline = Clock::now() + std::chrono::seconds(20);
  while ((server_->admission().admitted_total() < 4 ||
          server_->admission().pending() != 0) &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->admission().admitted_total(), 4u);
  EXPECT_EQ(server_->admission().pending(), 0u);
  server_->Stop();  // must not hang with the connection gone
  EXPECT_FALSE(server_->running());
}

TEST_F(EpollServerTest, AdmissionSlicesAggregateAcrossLoops) {
  ServerOptions options;
  options.io_threads = 3;
  options.admission.max_pending = 7;  // ceil(7/3) = 3 per loop
  StartServer(options);
  EXPECT_EQ(server_->num_io_threads(), 3u);
  // The aggregate view reports the CONFIGURED budget, not the slices.
  EXPECT_EQ(server_->admission().options().max_pending, 7u);
  EXPECT_EQ(server_->admission().pending(), 0u);

  // Work spread over several connections lands on multiple slices; the
  // totals must still aggregate exactly.
  constexpr int kConns = 6;
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < kConns; ++c) {
    auto client = std::make_unique<Client>();
    ASSERT_TRUE(client->Connect("127.0.0.1", server_->port()).ok());
    auto response = client->Call(PersonalizeRequestFor(kQuery));
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok());
    clients.push_back(std::move(client));
  }
  EXPECT_EQ(server_->admission().admitted_total(), 6u);
  // The worker releases its slot just AFTER posting the response, so a
  // client that has its answer can briefly observe pending == 1: poll.
  Clock::time_point deadline = Clock::now() + std::chrono::seconds(5);
  while (server_->admission().pending() != 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server_->admission().pending(), 0u);
}

}  // namespace
}  // namespace cqp::server
