// Unit battery for the incremental non-blocking frame decoder: byte-wise
// arrival, arbitrary split boundaries, coalesced frames, CRLF handling,
// the 1 MiB cap (inclusive), and the kStop early-exit contract.

#include "server/frame_decoder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/protocol.h"

namespace cqp::server {
namespace {

/// Feeds `data` in chunks of `chunk` bytes, collecting delivered lines.
struct Harness {
  explicit Harness(size_t cap = kMaxFrameBytes) : decoder(cap) {}

  FrameDecoder::Result Feed(const std::string& data, size_t chunk) {
    FrameDecoder::Result last = FrameDecoder::Result::kOk;
    for (size_t i = 0; i < data.size(); i += chunk) {
      last = decoder.Feed(data.data() + i, std::min(chunk, data.size() - i),
                          [&](std::string&& line) {
                            lines.push_back(std::move(line));
                            return true;
                          });
      if (last != FrameDecoder::Result::kOk) return last;
    }
    return last;
  }

  FrameDecoder decoder;
  std::vector<std::string> lines;
};

TEST(FrameDecoder, OneByteAtATimeDeliversEveryFrameInOrder) {
  Harness h;
  EXPECT_EQ(h.Feed("alpha\nbeta\ngamma\n", 1), FrameDecoder::Result::kOk);
  EXPECT_EQ(h.lines, (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(h.decoder.buffered(), 0u);
}

TEST(FrameDecoder, EverySplitBoundaryYieldsIdenticalFrames) {
  const std::string payload = "first frame\r\nsecond\nthird one\n";
  for (size_t split = 1; split <= payload.size(); ++split) {
    Harness h;
    ASSERT_EQ(h.Feed(payload.substr(0, split), payload.size()),
              FrameDecoder::Result::kOk);
    ASSERT_EQ(h.Feed(payload.substr(split), payload.size()),
              FrameDecoder::Result::kOk);
    EXPECT_EQ(h.lines,
              (std::vector<std::string>{"first frame", "second", "third one"}))
        << "split at " << split;
  }
}

TEST(FrameDecoder, CoalescedFramesInOneFeedAllDeliver) {
  Harness h;
  EXPECT_EQ(h.Feed("a\nb\nc\npartial", 1 << 20), FrameDecoder::Result::kOk);
  EXPECT_EQ(h.lines, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(h.decoder.buffered(), 7u);  // "partial" awaits its newline
  EXPECT_EQ(h.Feed("\n", 1), FrameDecoder::Result::kOk);
  EXPECT_EQ(h.lines.back(), "partial");
}

TEST(FrameDecoder, CrlfIsStrippedAndBlankLinesAreSkipped) {
  Harness h;
  EXPECT_EQ(h.Feed("one\r\n\n\r\ntwo\n", 3), FrameDecoder::Result::kOk);
  // "\n" is empty, "\r\n" strips to empty: both are silent keepalives.
  EXPECT_EQ(h.lines, (std::vector<std::string>{"one", "two"}));
}

TEST(FrameDecoder, LineOfExactlyTheCapIsLegal) {
  Harness h(/*cap=*/64);
  std::string line(64, 'x');
  EXPECT_EQ(h.Feed(line + "\n", 7), FrameDecoder::Result::kOk);
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_EQ(h.lines[0].size(), 64u);
}

TEST(FrameDecoder, PartialFrameOnePastTheCapTrips) {
  Harness h(/*cap=*/64);
  EXPECT_EQ(h.Feed(std::string(64, 'x'), 16), FrameDecoder::Result::kOk);
  EXPECT_EQ(h.Feed("x", 1), FrameDecoder::Result::kFrameTooLong);
  EXPECT_TRUE(h.lines.empty());
}

TEST(FrameDecoder, CoalescedHalfCapFramesDoNotTripTheCap) {
  // Two complete 40-byte lines arrive in one 82-byte read against a
  // 64-byte cap: only a *partial* frame counts against the cap.
  Harness h(/*cap=*/64);
  std::string two = std::string(40, 'a') + "\n" + std::string(40, 'b') + "\n";
  EXPECT_EQ(h.Feed(two, two.size()), FrameDecoder::Result::kOk);
  EXPECT_EQ(h.lines.size(), 2u);
}

TEST(FrameDecoder, StopHaltsDeliveryAndPreservesTheTail) {
  FrameDecoder decoder(kMaxFrameBytes);
  std::vector<std::string> lines;
  std::string data = "one\ntwo\nthree\n";
  FrameDecoder::Result r =
      decoder.Feed(data.data(), data.size(), [&](std::string&& line) {
        lines.push_back(std::move(line));
        return lines.size() < 2;  // stop after "two"
      });
  EXPECT_EQ(r, FrameDecoder::Result::kStop);
  EXPECT_EQ(lines, (std::vector<std::string>{"one", "two"}));
  // The undelivered tail stays buffered; a later Feed resumes cleanly.
  r = decoder.Feed("", 0, [&](std::string&& line) {
    lines.push_back(std::move(line));
    return true;
  });
  EXPECT_EQ(r, FrameDecoder::Result::kOk);
  EXPECT_EQ(lines.back(), "three");
}

TEST(FrameDecoder, ByteWiseMegabyteFrameStaysLinear) {
  // A 1 MiB frame dribbled in small chunks must not re-scan the whole
  // buffer per chunk (the persistent scan position makes this O(n)).
  // 4 KiB chunks keep the test fast while still doing 256 Feed calls.
  Harness h;
  std::string big(kMaxFrameBytes - 1, 'q');
  big += "\n";
  EXPECT_EQ(h.Feed(big, 4096), FrameDecoder::Result::kOk);
  ASSERT_EQ(h.lines.size(), 1u);
  EXPECT_EQ(h.lines[0].size(), kMaxFrameBytes - 1);
}

}  // namespace
}  // namespace cqp::server
