#include <gtest/gtest.h>

#include <algorithm>

#include "prefs/doi.h"
#include "prefs/graph.h"
#include "prefs/preference.h"
#include "prefs/profile.h"
#include "test_util.h"

namespace cqp::prefs {
namespace {

using catalog::CompareOp;
using catalog::Value;

// ---------- doi composition ----------

TEST(DoiTest, Validity) {
  EXPECT_TRUE(IsValidDoi(0.0));
  EXPECT_TRUE(IsValidDoi(1.0));
  EXPECT_FALSE(IsValidDoi(-0.1));
  EXPECT_FALSE(IsValidDoi(1.1));
}

TEST(DoiTest, ProductComposition) {
  // Paper Formula 9: doi(p3 ∧ p4) = 1.0 * 0.8.
  EXPECT_DOUBLE_EQ(ComposePathDoi({1.0, 0.8}, PathComposition::kProduct), 0.8);
  EXPECT_DOUBLE_EQ(ComposePathDoi({0.5}, PathComposition::kProduct), 0.5);
}

TEST(DoiTest, MinComposition) {
  EXPECT_DOUBLE_EQ(ComposePathDoi({0.9, 0.3, 0.7}, PathComposition::kMin),
                   0.3);
}

TEST(DoiTest, CompositionNeverExceedsMin) {
  // Formula 2: f⊗(d1..dm) <= min(d1..dm), for both implementations.
  const std::vector<std::vector<double>> cases = {
      {0.5, 0.9}, {1.0, 1.0}, {0.2, 0.3, 0.4}, {0.0, 0.9}};
  for (const auto& dois : cases) {
    double min = *std::min_element(dois.begin(), dois.end());
    EXPECT_LE(ComposePathDoi(dois, PathComposition::kProduct), min);
    EXPECT_LE(ComposePathDoi(dois, PathComposition::kMin), min);
  }
}

TEST(DoiTest, NoisyOrConjunction) {
  // Formula 10: 1 - (1-0.5)(1-0.8) = 0.9.
  EXPECT_DOUBLE_EQ(CombineConjunctionDoi({0.5, 0.8},
                                         ConjunctionModel::kNoisyOr),
                   0.9);
  EXPECT_DOUBLE_EQ(CombineConjunctionDoi({}, ConjunctionModel::kNoisyOr), 0.0);
}

TEST(DoiTest, SumCappedConjunction) {
  EXPECT_DOUBLE_EQ(CombineConjunctionDoi({0.5, 0.3},
                                         ConjunctionModel::kSumCapped),
                   0.8);
  EXPECT_DOUBLE_EQ(CombineConjunctionDoi({0.7, 0.7},
                                         ConjunctionModel::kSumCapped),
                   1.0);
}

TEST(DoiTest, ConjunctionMonotoneUnderInclusion) {
  // Formula 4: adding preferences never lowers the conjunction doi.
  for (ConjunctionModel model :
       {ConjunctionModel::kNoisyOr, ConjunctionModel::kSumCapped}) {
    double smaller = CombineConjunctionDoi({0.4, 0.2}, model);
    double larger = CombineConjunctionDoi({0.4, 0.2, 0.05}, model);
    EXPECT_GE(larger, smaller);
  }
}

// ---------- preferences ----------

ImplicitPreference AllenPref() {
  ImplicitPreference p;
  p.joins = {AtomicJoin{"MOVIE", "did", "DIRECTOR", "did", 1.0}};
  p.selection =
      AtomicSelection{"DIRECTOR", "name", CompareOp::kEq, Value("W. Allen"),
                      0.8};
  p.doi = p.ComputeDoi(PathComposition::kProduct);
  return p;
}

TEST(PreferenceTest, ConditionStrings) {
  ImplicitPreference p = AllenPref();
  EXPECT_EQ(p.selection.ConditionString(), "DIRECTOR.name = 'W. Allen'");
  EXPECT_EQ(p.joins[0].ConditionString(), "MOVIE.did = DIRECTOR.did");
  EXPECT_EQ(p.ConditionString(),
            "MOVIE.did = DIRECTOR.did and DIRECTOR.name = 'W. Allen'");
}

TEST(PreferenceTest, ComputeDoiMatchesPaperExample) {
  // Figure 1: p3 (join, 1.0) composed with p4 (selection, 0.8) -> 0.8.
  EXPECT_DOUBLE_EQ(AllenPref().doi, 0.8);
}

TEST(PreferenceTest, AnchorAndPathRelations) {
  ImplicitPreference p = AllenPref();
  EXPECT_EQ(p.AnchorRelation(), "MOVIE");
  EXPECT_EQ(p.Length(), 2u);
  auto rels = p.PathRelations();
  ASSERT_EQ(rels.size(), 2u);
  EXPECT_EQ(rels[0], "MOVIE");
  EXPECT_EQ(rels[1], "DIRECTOR");
}

TEST(PreferenceTest, JoinFreePreference) {
  ImplicitPreference p;
  p.selection =
      AtomicSelection{"MOVIE", "year", CompareOp::kGe, Value(int64_t{1990}),
                      0.6};
  EXPECT_EQ(p.AnchorRelation(), "MOVIE");
  EXPECT_EQ(p.Length(), 1u);
}

TEST(PreferenceTest, CanExtendEnforcesConnectivityAndAcyclicity) {
  ImplicitPreference p = AllenPref();
  // Extension must leave DIRECTOR (the current tail).
  EXPECT_FALSE(
      p.CanExtendWith(AtomicJoin{"MOVIE", "mid", "GENRE", "mid", 0.9}));
  // Revisiting MOVIE would create a cycle.
  EXPECT_FALSE(
      p.CanExtendWith(AtomicJoin{"DIRECTOR", "did", "MOVIE", "did", 0.9}));
  // A fresh relation is fine.
  EXPECT_TRUE(
      p.CanExtendWith(AtomicJoin{"DIRECTOR", "did", "AWARD", "did", 0.9}));
}

// ---------- profile ----------

TEST(ProfileTest, AddRejectsInvalidDoi) {
  Profile p;
  EXPECT_FALSE(p.AddSelection(AtomicSelection{"R", "a", CompareOp::kEq,
                                              Value(int64_t{1}), 1.5})
                   .ok());
  EXPECT_FALSE(
      p.AddJoin(AtomicJoin{"R", "a", "S", "a", -0.1}).ok());
}

TEST(ProfileTest, AddRejectsDuplicates) {
  Profile p;
  AtomicSelection sel{"R", "a", CompareOp::kEq, Value(int64_t{1}), 0.5};
  ASSERT_TRUE(p.AddSelection(sel).ok());
  sel.doi = 0.7;  // same condition, different doi
  EXPECT_EQ(p.AddSelection(sel).code(), StatusCode::kAlreadyExists);
}

TEST(ProfileTest, AddRejectsSelfJoin) {
  Profile p;
  EXPECT_FALSE(p.AddJoin(AtomicJoin{"R", "a", "R", "b", 0.5}).ok());
}

TEST(ProfileTest, ParseFigureOneProfile) {
  // The paper's Figure 1.
  auto profile = Profile::Parse(R"(
      # Figure 1 example profile
      doi(GENRE.genre = 'musical') = 0.5
      doi(MOVIE.mid = GENRE.mid) = 0.9
      doi(MOVIE.did = DIRECTOR.did) = 1.0
      doi(DIRECTOR.name = 'W. Allen') = 0.8
  )");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->selections().size(), 2u);
  EXPECT_EQ(profile->joins().size(), 2u);
  EXPECT_DOUBLE_EQ(profile->joins()[1].doi, 1.0);
}

TEST(ProfileTest, ParseRangeOperators) {
  auto profile = Profile::Parse("doi(MOVIE.duration <= 120) = 0.4");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->selections()[0].op, CompareOp::kLe);
  EXPECT_EQ(profile->selections()[0].value.AsInt(), 120);
}

TEST(ProfileTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(Profile::Parse("doi(MOVIE.year) = 0.4").ok());
  EXPECT_FALSE(Profile::Parse("doi(MOVIE.year = 2000)").ok());
  EXPECT_FALSE(Profile::Parse("interest(MOVIE.year = 2000) = 0.4").ok());
  EXPECT_FALSE(Profile::Parse("doi(MOVIE.a < DIRECTOR.b) = 0.4").ok());
}

TEST(ProfileTest, RoundTripThroughText) {
  auto p1 = *Profile::Parse(
      "doi(MOVIE.mid = GENRE.mid) = 0.9\ndoi(GENRE.genre = 'drama') = 0.25");
  auto p2 = Profile::Parse(p1.ToText());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->selections().size(), 1u);
  EXPECT_EQ(p2->joins().size(), 1u);
  EXPECT_NEAR(p2->selections()[0].doi, 0.25, 1e-9);
}

TEST(ProfileTest, ValidateAgainstSchema) {
  storage::Database db = ::cqp::testing::MakeTinyMovieDb();
  auto good = *Profile::Parse("doi(MOVIE.year >= 1990) = 0.4");
  EXPECT_TRUE(good.ValidateAgainst(db).ok());
  auto bad_rel = *Profile::Parse("doi(NOPE.year >= 1990) = 0.4");
  EXPECT_FALSE(bad_rel.ValidateAgainst(db).ok());
  auto bad_attr = *Profile::Parse("doi(MOVIE.rating >= 5) = 0.4");
  EXPECT_FALSE(bad_attr.ValidateAgainst(db).ok());
  auto bad_type = *Profile::Parse("doi(MOVIE.year >= 'x') = 0.4");
  EXPECT_FALSE(bad_type.ValidateAgainst(db).ok());
}

// ---------- personalization graph ----------

TEST(GraphTest, BuildIndexesAdjacency) {
  storage::Database db = ::cqp::testing::MakeTinyMovieDb();
  auto profile = *Profile::Parse(R"(
      doi(GENRE.genre = 'musical') = 0.5
      doi(MOVIE.mid = GENRE.mid) = 0.9
      doi(MOVIE.did = DIRECTOR.did) = 1.0
      doi(DIRECTOR.name = 'W. Allen') = 0.8
  )");
  auto graph = PersonalizationGraph::Build(std::move(profile), db);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->JoinsFrom("MOVIE").size(), 2u);
  EXPECT_EQ(graph->JoinsFrom("GENRE").size(), 0u);
  EXPECT_EQ(graph->SelectionsFrom("GENRE").size(), 1u);
  EXPECT_EQ(graph->SelectionsFrom("movie").size(), 0u);

  auto rels = graph->Relations();
  EXPECT_EQ(rels.size(), 3u);

  GraphCounts counts = graph->Counts();
  EXPECT_EQ(counts.relation_nodes, 3u);
  EXPECT_EQ(counts.selection_edges, 2u);
  EXPECT_EQ(counts.join_edges, 2u);
  EXPECT_EQ(counts.value_nodes, 2u);
  EXPECT_EQ(counts.attribute_nodes, 6u);
}

TEST(GraphTest, CountsDistinguishValueNodesFromAttributeNodes) {
  storage::Database db = ::cqp::testing::MakeTinyMovieDb();
  // Two values on the same attribute: one attribute node, two value nodes.
  auto profile = *Profile::Parse(R"(
      doi(GENRE.genre = 'musical') = 0.5
      doi(GENRE.genre = 'comedy') = 0.4
  )");
  auto graph = *PersonalizationGraph::Build(std::move(profile), db);
  GraphCounts counts = graph.Counts();
  EXPECT_EQ(counts.relation_nodes, 1u);
  EXPECT_EQ(counts.attribute_nodes, 1u);
  EXPECT_EQ(counts.value_nodes, 2u);
  EXPECT_EQ(counts.selection_edges, 2u);
  EXPECT_EQ(counts.join_edges, 0u);
}

TEST(GraphTest, BuildRejectsInvalidProfile) {
  storage::Database db = ::cqp::testing::MakeTinyMovieDb();
  auto profile = *Profile::Parse("doi(NOPE.x = 1) = 0.2");
  EXPECT_FALSE(PersonalizationGraph::Build(std::move(profile), db).ok());
}

}  // namespace
}  // namespace cqp::prefs
