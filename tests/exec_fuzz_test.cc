// Differential testing of the executor: random SPJ queries over random
// small tables, checked against a naive reference evaluator (cartesian
// product + predicate filter + projection). Any divergence is a bug in the
// hash-join/filter pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "common/rng.h"
#include "common/str_util.h"
#include "exec/executor.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "test_util.h"

namespace cqp::exec {
namespace {

using catalog::AttributeDef;
using catalog::CompareOp;
using catalog::RelationDef;
using catalog::Value;
using catalog::ValueType;
using sql::ColumnRef;
using sql::Predicate;
using sql::SelectQuery;
using sql::TableRef;
using storage::Tuple;

/// Builds 2-3 random tables with small integer domains (so joins and
/// selections actually hit).
storage::Database MakeRandomDb(Rng& rng) {
  storage::Database db;
  int n_tables = static_cast<int>(rng.Uniform(2, 3));
  for (int t = 0; t < n_tables; ++t) {
    int n_cols = static_cast<int>(rng.Uniform(2, 4));
    std::vector<AttributeDef> attrs;
    for (int c = 0; c < n_cols; ++c) {
      attrs.push_back(AttributeDef{"c" + std::to_string(c), ValueType::kInt});
    }
    ::cqp::testing::AddRandomTable(
        rng, db, "T" + std::to_string(t), attrs, 0, 12,
        [](Rng& r, const AttributeDef&) {
          return Value(r.Uniform(0, 4));  // tiny domain: collisions
        });
  }
  db.Analyze();
  return db;
}

/// Builds a random query over 1-3 (possibly repeated) tables.
SelectQuery MakeRandomQuery(Rng& rng, const storage::Database& db) {
  SelectQuery q;
  auto names = db.TableNames();
  int n_from = static_cast<int>(rng.Uniform(1, 3));
  for (int i = 0; i < n_from; ++i) {
    TableRef ref;
    ref.relation = names[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(names.size()) - 1))];
    ref.alias = "a" + std::to_string(i);
    q.from.push_back(ref);
  }
  auto random_column = [&](int from_index) {
    const storage::Table* table =
        *db.GetTable(q.from[static_cast<size_t>(from_index)].relation);
    int col = static_cast<int>(
        rng.Uniform(0, static_cast<int64_t>(table->schema().arity()) - 1));
    return ColumnRef{q.from[static_cast<size_t>(from_index)].alias,
                     table->schema().attribute(static_cast<size_t>(col)).name};
  };
  static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                   CompareOp::kLt, CompareOp::kLe,
                                   CompareOp::kGt, CompareOp::kGe};
  int n_preds = static_cast<int>(rng.Uniform(0, 4));
  for (int p = 0; p < n_preds; ++p) {
    int lhs_table = static_cast<int>(rng.Uniform(0, n_from - 1));
    CompareOp op = kOps[rng.Uniform(0, 5)];
    if (rng.Bernoulli(0.5)) {
      q.where.push_back(Predicate::Selection(random_column(lhs_table), op,
                                             Value(rng.Uniform(0, 4))));
    } else {
      int rhs_table = static_cast<int>(rng.Uniform(0, n_from - 1));
      q.where.push_back(Predicate::Join(random_column(lhs_table), op,
                                        random_column(rhs_table)));
    }
  }
  // Projection: a couple of random columns (qualified, so never ambiguous).
  int n_proj = static_cast<int>(rng.Uniform(1, 3));
  for (int i = 0; i < n_proj; ++i) {
    q.select_list.push_back(
        random_column(static_cast<int>(rng.Uniform(0, n_from - 1))));
  }
  q.distinct = rng.Bernoulli(0.3);
  return q;
}

/// Naive reference: full cartesian product, filter, project, dedupe.
StatusOr<std::multiset<std::string>> ReferenceEval(
    const storage::Database& db, const SelectQuery& q) {
  // Build the product schema: qualified names per FROM entry.
  std::vector<std::string> columns;
  std::vector<const storage::Table*> tables;
  for (const TableRef& ref : q.from) {
    CQP_ASSIGN_OR_RETURN(const storage::Table* table,
                         db.GetTable(ref.relation));
    tables.push_back(table);
    for (size_t c = 0; c < table->schema().arity(); ++c) {
      columns.push_back(ref.EffectiveAlias() + "." +
                        table->schema().attribute(c).name);
    }
  }
  auto resolve = [&](const ColumnRef& col) -> StatusOr<size_t> {
    std::string wanted = col.qualifier + "." + col.attribute;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (EqualsIgnoreCase(columns[i], wanted)) return i;
    }
    return NotFound("column " + wanted);
  };

  std::multiset<std::string> out;
  // Odometer over the row indices of every table.
  std::vector<size_t> idx(tables.size(), 0);
  bool any_empty = false;
  for (const storage::Table* t : tables) any_empty |= t->row_count() == 0;
  std::set<std::string> distinct_seen;
  while (!any_empty) {
    // Materialize the concatenated row.
    std::vector<Value> row;
    for (size_t t = 0; t < tables.size(); ++t) {
      for (const Value& v : tables[t]->rows()[idx[t]].values()) {
        row.push_back(v);
      }
    }
    bool keep = true;
    for (const Predicate& p : q.where) {
      CQP_ASSIGN_OR_RETURN(size_t l, resolve(p.lhs));
      if (p.kind == Predicate::Kind::kSelection) {
        keep = keep && catalog::EvalCompare(row[l], p.op, p.literal);
      } else {
        CQP_ASSIGN_OR_RETURN(size_t r, resolve(p.rhs));
        keep = keep && catalog::EvalCompare(row[l], p.op, row[r]);
      }
      if (!keep) break;
    }
    if (keep) {
      std::string projected;
      for (const ColumnRef& col : q.select_list) {
        CQP_ASSIGN_OR_RETURN(size_t c, resolve(col));
        projected += row[c].ToString();
        projected += "|";
      }
      if (q.distinct) {
        if (distinct_seen.insert(projected).second) out.insert(projected);
      } else {
        out.insert(projected);
      }
    }
    // Advance the odometer.
    size_t t = 0;
    while (t < tables.size()) {
      if (++idx[t] < tables[t]->row_count()) break;
      idx[t] = 0;
      ++t;
    }
    if (t == tables.size()) break;
  }
  return out;
}

class ExecFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExecFuzz, MatchesNaiveReference) {
  Rng rng = ::cqp::testing::SeededRng(GetParam(), 7919);
  storage::Database db = MakeRandomDb(rng);
  Executor executor(&db);

  for (int trial = 0; trial < 40; ++trial) {
    SelectQuery q = MakeRandomQuery(rng, db);
    auto expected = ReferenceEval(db, q);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString() << "\n"
                               << q.ToSql();
    auto got = executor.Execute(q, nullptr);
    ASSERT_TRUE(got.ok()) << got.status().ToString() << "\n" << q.ToSql();

    std::multiset<std::string> got_rows;
    for (const Tuple& row : got->rows()) {
      std::string key;
      for (size_t c = 0; c < row.arity(); ++c) {
        key += row.at(c).ToString();
        key += "|";
      }
      got_rows.insert(key);
    }
    EXPECT_EQ(got_rows, *expected) << q.ToSql();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace cqp::exec
