#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "construct/personalizer.h"
#include "construct/plan_cache.h"
#include "server/profile_store.h"
#include "space/prepared_space.h"
#include "space/preference_space.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "test_util.h"

namespace cqp::construct {
namespace {

uint64_t Fp(const std::string& sql) {
  auto q = sql::ParseSelect(sql);
  CQP_CHECK(q.ok()) << q.status().ToString();
  return sql::QueryFingerprint(*q);
}

std::string Canon(const std::string& sql) {
  auto q = sql::ParseSelect(sql);
  CQP_CHECK(q.ok()) << q.status().ToString();
  return sql::CanonicalQueryText(*q);
}

// ---------- canonical query fingerprint ----------

TEST(QueryFingerprint, IgnoresWhitespaceAndCase) {
  EXPECT_EQ(Fp("SELECT title FROM MOVIE WHERE year > 1970"),
            Fp("select   title\n from movie\twhere year>1970"));
}

TEST(QueryFingerprint, IgnoresConjunctOrder) {
  EXPECT_EQ(Fp("SELECT title FROM MOVIE WHERE year > 1970 AND duration <= 120"),
            Fp("SELECT title FROM MOVIE WHERE duration <= 120 AND year > 1970"));
}

TEST(QueryFingerprint, CanonicalizesEquivalentNumericLiterals) {
  EXPECT_EQ(Fp("SELECT title FROM MOVIE WHERE year > 1970"),
            Fp("SELECT title FROM MOVIE WHERE year > 1970.0"));
}

TEST(QueryFingerprint, ResolvesUniqueAliasToRelation) {
  EXPECT_EQ(Fp("SELECT M.title FROM MOVIE M WHERE M.year > 1970"),
            Fp("SELECT MOVIE.title FROM MOVIE WHERE MOVIE.year > 1970"));
}

TEST(QueryFingerprint, OrdersJoinSidesCanonically) {
  EXPECT_EQ(Fp("SELECT title FROM MOVIE, DIRECTOR "
               "WHERE MOVIE.did = DIRECTOR.did"),
            Fp("SELECT title FROM MOVIE, DIRECTOR "
               "WHERE DIRECTOR.did = MOVIE.did"));
  // Inequality joins mirror the operator when the sides swap.
  EXPECT_EQ(Fp("SELECT title FROM MOVIE, DIRECTOR "
               "WHERE DIRECTOR.did < MOVIE.did"),
            Fp("SELECT title FROM MOVIE, DIRECTOR "
               "WHERE MOVIE.did > DIRECTOR.did"));
}

TEST(QueryFingerprint, SelfJoinKeepsAliasesButNormalizesSpelling) {
  EXPECT_EQ(Fp("SELECT a.title FROM MOVIE a, MOVIE b WHERE a.did = b.did"),
            Fp("SELECT A.title FROM MOVIE A, MOVIE B WHERE A.did = B.did"));
}

TEST(QueryFingerprint, DistinctQueriesGetDistinctFingerprints) {
  const std::vector<std::string> queries = {
      "SELECT title FROM MOVIE",
      "SELECT DISTINCT title FROM MOVIE",
      "SELECT year FROM MOVIE",
      "SELECT title FROM DIRECTOR",
      "SELECT title FROM MOVIE WHERE year > 1970",
      "SELECT title FROM MOVIE WHERE year > 1971",
      "SELECT title FROM MOVIE WHERE year >= 1970",
      "SELECT title FROM MOVIE ORDER BY title",
      "SELECT title FROM MOVIE ORDER BY title DESC",
      "SELECT title FROM MOVIE LIMIT 5",
  };
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = i + 1; j < queries.size(); ++j) {
      EXPECT_NE(Fp(queries[i]), Fp(queries[j]))
          << "'" << queries[i] << "' vs '" << queries[j] << "' both canonify "
          << "to " << Canon(queries[i]);
    }
  }
}

TEST(QueryFingerprint, OrderByOrderIsSemantic) {
  // ORDER BY keys are NOT commutative — their order must survive.
  EXPECT_NE(Fp("SELECT title, year FROM MOVIE ORDER BY year, title"),
            Fp("SELECT title, year FROM MOVIE ORDER BY title, year"));
}

// ---------- PlanCache (LRU, invalidation, stats) ----------

std::shared_ptr<const space::PreparedSpace> EmptyPrepared() {
  return space::PreparedSpace::Create(space::PreferenceSpaceResult());
}

PlanCache::Key MakeKey(uint64_t fp, const std::string& profile,
                       uint64_t version = 1) {
  PlanCache::Key key;
  key.query_fingerprint = fp;
  key.profile_id = profile;
  key.profile_version = version;
  key.config = "cfg";
  return key;
}

TEST(PlanCacheTest, FindMissThenHit) {
  PlanCache cache(4);
  PlanCache::Key key = MakeKey(1, "u");
  EXPECT_EQ(cache.Find(key), nullptr);
  auto prepared = EmptyPrepared();
  cache.Insert(key, prepared);
  EXPECT_EQ(cache.Find(key), prepared);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.Insert(MakeKey(1, "u"), EmptyPrepared());
  cache.Insert(MakeKey(2, "u"), EmptyPrepared());
  // Touch key 1 so key 2 becomes the LRU victim.
  EXPECT_NE(cache.Find(MakeKey(1, "u")), nullptr);
  cache.Insert(MakeKey(3, "u"), EmptyPrepared());
  EXPECT_NE(cache.Find(MakeKey(1, "u")), nullptr);
  EXPECT_EQ(cache.Find(MakeKey(2, "u")), nullptr);
  EXPECT_NE(cache.Find(MakeKey(3, "u")), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, ReplacingAKeyDoesNotGrowTheCache) {
  PlanCache cache(2);
  PlanCache::Key key = MakeKey(1, "u");
  cache.Insert(key, EmptyPrepared());
  auto replacement = EmptyPrepared();
  cache.Insert(key, replacement);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Find(key), replacement);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(PlanCacheTest, VersionIsPartOfTheKey) {
  PlanCache cache(4);
  cache.Insert(MakeKey(1, "u", 1), EmptyPrepared());
  EXPECT_EQ(cache.Find(MakeKey(1, "u", 2)), nullptr);
}

TEST(PlanCacheTest, InvalidateProfileDropsOnlyThatProfile) {
  PlanCache cache(8);
  cache.Insert(MakeKey(1, "alice", 1), EmptyPrepared());
  cache.Insert(MakeKey(1, "alice", 2), EmptyPrepared());
  cache.Insert(MakeKey(1, "bob"), EmptyPrepared());
  EXPECT_EQ(cache.InvalidateProfile("alice"), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Find(MakeKey(1, "bob")), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(PlanCacheTest, ClearCountsAsInvalidation) {
  PlanCache cache(8);
  cache.Insert(MakeKey(1, "u"), EmptyPrepared());
  cache.Insert(MakeKey(2, "u"), EmptyPrepared());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

// ---------- hot-reload invalidation through the ProfileStore ----------

TEST(ProfileStorePlans, PutInvalidatesThatProfilesPlans) {
  storage::Database db = ::cqp::testing::MakeTinyMovieDb();
  server::ProfileStore store(&db);
  auto profile = *prefs::Profile::Parse("doi(MOVIE.year >= 1970) = 0.6");
  ASSERT_TRUE(store.Put("u", profile).ok());

  store.plans().Insert(MakeKey(7, "u", store.FindSnapshot("u").version),
                       EmptyPrepared());
  store.plans().Insert(MakeKey(7, "other"), EmptyPrepared());
  ASSERT_EQ(store.plans().size(), 2u);

  // Hot reload of "u": its plans vanish, other profiles' plans survive.
  ASSERT_TRUE(store.Put("u", profile).ok());
  EXPECT_EQ(store.plans().size(), 1u);
  EXPECT_NE(store.plans().Find(MakeKey(7, "other")), nullptr);

  ASSERT_TRUE(store.Remove("u").ok());
  // Remove sweeps again (nothing left for "u" — counters still move).
  EXPECT_EQ(store.plans().size(), 1u);
}

// ---------- the prepared pipeline end to end ----------

class PreparedPipelineTest : public ::testing::Test {
 protected:
  PreparedPipelineTest()
      : db_(::cqp::testing::MakeTinyMovieDb()), estimator_(&db_) {
    auto profile = *prefs::Profile::Parse(R"(
        doi(GENRE.genre = 'musical') = 0.5
        doi(GENRE.genre = 'comedy') = 0.4
        doi(GENRE.genre = 'horror') = 0.1
        doi(MOVIE.mid = GENRE.mid) = 0.9
        doi(MOVIE.did = DIRECTOR.did) = 1.0
        doi(DIRECTOR.name = 'W. Allen') = 0.8
        doi(DIRECTOR.name = 'S. Kubrick') = 0.3
        doi(MOVIE.year >= 1970) = 0.6
        doi(MOVIE.duration <= 120) = 0.2
    )");
    graph_ = std::make_unique<prefs::PersonalizationGraph>(
        *prefs::PersonalizationGraph::Build(std::move(profile), db_));
  }

  /// Six Table-1 problems with bounds chosen from the actual extracted
  /// parameter ranges, so the cmax/smin bounds genuinely prune.
  std::vector<cqp::ProblemSpec> SixProblems(
      const space::PreferenceSpaceResult& space) {
    double max_cost = 0.0, max_size = 0.0;
    for (const auto& p : space.prefs) {
      max_cost = std::max(max_cost, p.cost_ms);
      max_size = std::max(max_size, p.size);
    }
    double cmax = max_cost * 0.99;  // prunes the most expensive pref(s)
    double smin = 1.0;
    double smax = max_size * 10.0;
    return {
        cqp::ProblemSpec::Problem1(smin, smax),
        cqp::ProblemSpec::Problem2(cmax),
        cqp::ProblemSpec::Problem3(cmax, smin, smax),
        cqp::ProblemSpec::Problem4(0.3),
        cqp::ProblemSpec::Problem5(0.3, smin, smax),
        cqp::ProblemSpec::Problem6(smin, smax),
    };
  }

  storage::Database db_;
  estimation::ParameterEstimator estimator_;
  std::unique_ptr<prefs::PersonalizationGraph> graph_;
};

TEST_F(PreparedPipelineTest, OneExtractionServesAllSixProblemClasses) {
  const std::string sql = "SELECT title FROM MOVIE";
  auto q = *sql::ParseSelect(sql);
  space::PreferenceSpaceOptions options;

  auto unpruned =
      space::ExtractPreferenceSpace(q, *graph_, estimator_, options);
  ASSERT_TRUE(unpruned.ok()) << unpruned.status().ToString();
  ASSERT_GT(unpruned->K(), 0u);
  auto prepared = space::PreparedSpace::Create(*unpruned);

  bool any_pruned = false;
  for (const cqp::ProblemSpec& problem : SixProblems(*unpruned)) {
    SCOPED_TRACE(problem.ToString());
    auto view = prepared->ForProblem(problem);
    auto legacy =
        space::ExtractPreferenceSpace(q, *graph_, estimator_, problem, options);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
    ASSERT_EQ(view->K(), legacy->K());
    for (size_t i = 0; i < view->K(); ++i) {
      EXPECT_EQ(view->prefs[i].doi, legacy->prefs[i].doi);
      EXPECT_EQ(view->prefs[i].cost_ms, legacy->prefs[i].cost_ms);
      EXPECT_EQ(view->prefs[i].selectivity, legacy->prefs[i].selectivity);
      EXPECT_EQ(view->prefs[i].size, legacy->prefs[i].size);
    }
    EXPECT_EQ(view->D.size(), legacy->D.size());
    EXPECT_EQ(view->C, legacy->C);
    EXPECT_EQ(view->S, legacy->S);
    if (view->K() < prepared->K()) any_pruned = true;
  }
  // The bounds were picked to bite: at least one class saw a strict view.
  EXPECT_TRUE(any_pruned);
}

TEST_F(PreparedPipelineTest, SolveFromOnePreparedQueryMatchesPersonalize) {
  Personalizer personalizer(&db_, graph_.get());
  const std::string sql = "SELECT title FROM MOVIE";

  PersonalizeRequest prepare_request;
  prepare_request.sql = sql;
  auto prepared = personalizer.Prepare(prepare_request);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_FALSE(prepared->cache_hit);
  EXPECT_EQ(prepared->fingerprint, Fp(sql));

  for (const cqp::ProblemSpec& problem :
       SixProblems(*prepared->space->unpruned())) {
    SCOPED_TRACE(problem.ToString());
    PersonalizeRequest request;
    request.sql = sql;
    request.problem = problem;
    request.algorithm = "auto";

    auto direct = personalizer.Personalize(request);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    auto split = personalizer.Solve(*prepared, request);
    ASSERT_TRUE(split.ok()) << split.status().ToString();

    EXPECT_EQ(split->final_sql, direct->final_sql);
    EXPECT_EQ(split->rung, direct->rung);
    EXPECT_EQ(split->solution.feasible, direct->solution.feasible);
    EXPECT_EQ(split->solution.chosen, direct->solution.chosen);
    EXPECT_EQ(split->solution.params.doi, direct->solution.params.doi);
    EXPECT_EQ(split->solution.params.cost_ms, direct->solution.params.cost_ms);
    EXPECT_EQ(split->solution.params.size, direct->solution.params.size);
  }
}

TEST_F(PreparedPipelineTest, PersonalizeHitsThePlanCacheAcrossSpellings) {
  Personalizer personalizer(&db_, graph_.get());
  PlanCache cache;

  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE WHERE year > 1970";
  request.problem = cqp::ProblemSpec::Problem2(1e9);
  request.plan_cache = &cache;
  request.profile_id = "u";
  request.profile_version = 1;

  auto cold = personalizer.Personalize(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->plan_cache_hit);

  // A different spelling of the same query still hits. The rendered SQL
  // keeps the caller's own spelling (construction works on the request's
  // parsed query); the ANSWER — chosen set and parameters — is shared.
  request.sql = "select  TITLE from movie where YEAR>1970.0";
  auto warm = personalizer.Personalize(request);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_EQ(warm->solution.chosen, cold->solution.chosen);
  EXPECT_EQ(warm->solution.params.doi, cold->solution.params.doi);
  EXPECT_EQ(warm->solution.params.cost_ms, cold->solution.params.cost_ms);

  // A profile-version bump makes every cached plan unreachable.
  request.profile_version = 2;
  auto reloaded = personalizer.Personalize(request);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_FALSE(reloaded->plan_cache_hit);

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST_F(PreparedPipelineTest, BatchCountsPlanCacheHits) {
  Personalizer personalizer(&db_, graph_.get());
  PlanCache cache;
  PersonalizeRequest request;
  request.sql = "SELECT title FROM MOVIE";
  request.problem = cqp::ProblemSpec::Problem2(1e9);
  request.plan_cache = &cache;
  request.profile_id = "u";
  request.profile_version = 1;
  std::vector<PersonalizeRequest> requests(6, request);

  BatchOptions options;
  options.num_threads = 3;
  BatchResult batch = personalizer.PersonalizeBatch(requests, options);
  EXPECT_EQ(batch.ok_count(), 6u);
  // At least the requests after the first finished Prepare() hit; with
  // racing workers the exact count is timing-dependent, but every result
  // must agree with the first.
  EXPECT_EQ(batch.plan_cache_hits + cache.stats().misses, 6u);
  const PersonalizeResult& first = *batch.results[0];
  for (const auto& r : batch.results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->final_sql, first.final_sql);
    EXPECT_EQ(r->solution.chosen, first.solution.chosen);
  }
}

}  // namespace
}  // namespace cqp::construct
